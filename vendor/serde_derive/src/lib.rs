//! No-op `Serialize`/`Deserialize` derives for the in-tree serde facade.
//!
//! Emits a marker-trait impl for the annotated type, ignoring generics-free
//! `#[serde(...)]` attributes. The workspace's data model has no generic
//! type parameters on serde-derived types, so the derive only needs to
//! recover the type's name.

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier following `struct` or `enum` in the item.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        // Anything that isn't an identifier (attribute/visibility
        // punctuation, groups) is skipped.
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
