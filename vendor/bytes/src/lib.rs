//! Minimal in-tree implementation of the `bytes` crate surface this
//! workspace uses: cheaply cloneable immutable [`Bytes`], growable
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian fixed-width accessors the SAPK/SDEX codecs rely on.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared backing storage for [`Bytes`]: either an owned heap allocation
/// or a caller-supplied owner (e.g. a memory-mapped file region) whose
/// `AsRef<[u8]>` view must stay stable for the owner's lifetime.
#[derive(Clone)]
enum Storage {
    Heap(Arc<[u8]>),
    Owner(Arc<dyn AsRef<[u8]> + Send + Sync>),
}

impl Storage {
    fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Heap(a) => a,
            Storage::Owner(o) => (**o).as_ref(),
        }
    }
}

/// Cheaply cloneable, immutable byte buffer (a view into shared storage).
#[derive(Clone)]
pub struct Bytes {
    data: Storage,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

// Equality, ordering, and hashing go by *content*, not storage identity —
// two views over different allocations with the same bytes are equal.
impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        (**self).cmp(&**other)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    /// Wrap caller-owned storage without copying (mirrors upstream
    /// `Bytes::from_owner`). The owner is kept alive behind an `Arc` for
    /// as long as any view derived from this buffer exists.
    ///
    /// The owner's `AsRef<[u8]>` must return the same slice (address and
    /// length) on every call — e.g. a `Vec`, a boxed slice, or a
    /// memory-mapped region; a view whose extent changes between calls
    /// would invalidate outstanding slices.
    pub fn from_owner<T>(owner: T) -> Bytes
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let data: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(owner);
        let end = (*data).as_ref().len();
        Bytes {
            data: Storage::Owner(data),
            start: 0,
            end,
        }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data: Storage::Heap(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { inner: v }
    }
}

/// Read cursor over a byte source. Getters panic when the source is too
/// short, mirroring upstream `bytes`; callers bounds-check via
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Current contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let chunk = self.chunk();
        dst.copy_from_slice(&chunk[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write cursor for growable byte sinks.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut out = BytesMut::with_capacity(16);
        out.put_u8(7);
        out.put_u16_le(0xbeef);
        out.put_u32_le(0xdead_beef);
        out.put_slice(b"xy");
        let frozen = out.freeze();
        let mut cur = &frozen[..];
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0xbeef);
        assert_eq!(cur.get_u32_le(), 0xdead_beef);
        let mut tail = [0u8; 2];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(!cur.has_remaining());
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::copy_from_slice(b"hello world");
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        assert_eq!(b.len(), 11);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut cur: &[u8] = &[1];
        cur.get_u32_le();
    }

    #[test]
    fn from_owner_shares_without_copying() {
        struct Region(Vec<u8>);
        impl AsRef<[u8]> for Region {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        let region = Region(b"shard payload bytes".to_vec());
        let addr = region.0.as_ptr() as usize;
        let b = Bytes::from_owner(region);
        // Views alias the owner's storage — no copy happened.
        assert_eq!(b.as_ref().as_ptr() as usize, addr);
        let tail = b.slice(6..);
        assert_eq!(&tail[..], b"payload bytes");
        assert_eq!(tail.as_ref().as_ptr() as usize, addr + 6);
        drop(b);
        // The slice keeps the owner alive on its own.
        assert_eq!(&tail[..], b"payload bytes");
        // Content equality is storage-agnostic.
        assert_eq!(tail, Bytes::copy_from_slice(b"payload bytes"));
    }
}
