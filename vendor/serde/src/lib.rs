//! Minimal in-tree `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data model for
//! downstream consumers but renders all reports by hand (it is
//! serde_json-free), so the traits carry no methods here and the derives
//! are no-ops — just enough for the `#[derive(...)]` attributes and trait
//! bounds to compile hermetically offline.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// `serde::de` module alias for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
