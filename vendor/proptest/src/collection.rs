//! Collection strategies: `vec` and `hash_set` with size ranges.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Strategy for `Vec`s of `element` with a length drawn from `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, sizes }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.sizes.clone());
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Strategy for `HashSet`s of `element` with a size drawn from `sizes`.
///
/// As upstream documents, the realized set may be smaller than the drawn
/// size when duplicate elements are generated.
pub fn hash_set<S>(element: S, sizes: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, sizes }
}

/// Strategy returned by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> HashSet<S::Value> {
        let want = rng.gen_range(self.sizes.clone());
        let mut out = HashSet::with_capacity(want);
        // Bounded attempts so tight element domains cannot loop forever.
        for _ in 0..want * 4 {
            if out.len() >= want {
                break;
            }
            out.insert(self.element.gen_value(rng));
        }
        out
    }
}
