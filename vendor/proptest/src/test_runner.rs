//! Case-count configuration and per-test deterministic RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising the properties. Tests that need more set it explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG derived from the test's module path + name, so every
/// run of a given property replays the same case sequence (FNV-1a hash).
pub fn rng_for(test_path: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}
