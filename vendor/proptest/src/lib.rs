//! Minimal in-tree property-testing harness exposing the `proptest 1.x`
//! API surface this workspace uses: the `proptest!`/`prop_assert*`/
//! `prop_oneof!` macros, [`strategy::Strategy`] with `prop_map`, integer
//! ranges and regex-string strategies, `any::<T>()`, and
//! `collection::{vec, hash_set}`.
//!
//! Differences from upstream: cases are generated deterministically per
//! test (seeded from the test path) and failures are reported with the
//! offending inputs but are **not shrunk**.

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::sample::Index` resolves under the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body (alias of `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly choose among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::one_of_arm($strat)),+])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream forms used in this workspace:
/// an optional leading `#![proptest_config(expr)]`, then one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest case {}/{} failed with inputs: {}",
                            __case + 1, __config.cases, __inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
