//! `any::<T>()` — the `Arbitrary` entry point.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut StdRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.gen::<u64>())
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
