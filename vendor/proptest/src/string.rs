//! Tiny regex-to-string generator backing `"pattern"` strategies.
//!
//! Supports the subset upstream proptest's string strategies are used
//! with in this workspace: literals, `\`-escapes, `.`, character classes
//! with ranges (`[a-zA-Z0-9./$]`), groups, and the quantifiers `{n}`,
//! `{n,m}`, `*`, `+`, `?` (unbounded quantifiers capped at 8 repeats).

use rand::rngs::StdRng;
use rand::Rng;

/// Occasional non-ASCII choices for `.`, so byte-level codecs meet
/// multi-byte UTF-8 sequences too.
const WIDE_CHARS: [char; 6] = ['é', 'ß', 'λ', '中', '🙂', '\u{2028}'];

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// `.` — any printable char.
    Any,
    /// Inclusive char ranges, e.g. `[a-z.]` ⇒ `[('a','z'), ('.','.')]`.
    Class(Vec<(char, char)>),
    Group(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct RegexGen {
    nodes: Vec<Node>,
}

impl RegexGen {
    /// Parse `pattern`, panicking on constructs outside the supported
    /// subset (alternation, anchors, backreferences, ...).
    pub fn compile(pattern: &str) -> RegexGen {
        let mut chars = pattern.chars().peekable();
        let nodes = parse_sequence(&mut chars, pattern, false);
        assert!(
            chars.next().is_none(),
            "unbalanced ')' in string strategy pattern {pattern:?}"
        );
        RegexGen { nodes }
    }

    /// Generate one matching string.
    pub fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            emit(node, rng, &mut out);
        }
        out
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_sequence(chars: &mut Chars<'_>, pattern: &str, in_group: bool) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.peek() {
        match c {
            ')' => {
                assert!(in_group, "unbalanced ')' in pattern {pattern:?}");
                return nodes;
            }
            '(' => {
                chars.next();
                let inner = parse_sequence(chars, pattern, true);
                assert_eq!(
                    chars.next(),
                    Some(')'),
                    "unclosed group in pattern {pattern:?}"
                );
                nodes.push(Node::Group(inner));
            }
            '[' => {
                chars.next();
                nodes.push(parse_class(chars, pattern));
            }
            '.' => {
                chars.next();
                nodes.push(Node::Any);
            }
            '\\' => {
                chars.next();
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling '\\' in pattern {pattern:?}"));
                nodes.push(Node::Lit(escaped));
            }
            '|' | '^' | '$' => panic!("unsupported regex construct {c:?} in pattern {pattern:?}"),
            _ => {
                chars.next();
                nodes.push(Node::Lit(c));
            }
        }
        // Postfix quantifier binds to the node just parsed.
        if let Some(&q) = chars.peek() {
            let bounds = match q {
                '*' => Some((0, 8)),
                '+' => Some((1, 8)),
                '?' => Some((0, 1)),
                '{' => {
                    chars.next();
                    Some(parse_bounds(chars, pattern))
                }
                _ => None,
            };
            if let Some((lo, hi)) = bounds {
                if q != '{' {
                    chars.next();
                }
                let inner = nodes.pop().expect("quantifier with no preceding atom");
                nodes.push(Node::Repeat(Box::new(inner), lo, hi));
            }
        }
    }
    assert!(!in_group, "unclosed '(' in pattern {pattern:?}");
    nodes
}

fn parse_bounds(chars: &mut Chars<'_>, pattern: &str) -> (u32, u32) {
    let mut lo = String::new();
    let mut hi = String::new();
    let mut in_hi = false;
    for c in chars.by_ref() {
        match c {
            '}' => {
                let lo: u32 = lo
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repeat bound in pattern {pattern:?}"));
                let hi: u32 = if in_hi {
                    hi.parse()
                        .unwrap_or_else(|_| panic!("bad repeat bound in pattern {pattern:?}"))
                } else {
                    lo
                };
                assert!(lo <= hi, "inverted repeat bounds in pattern {pattern:?}");
                return (lo, hi);
            }
            ',' => in_hi = true,
            d if d.is_ascii_digit() => {
                if in_hi {
                    hi.push(d)
                } else {
                    lo.push(d)
                }
            }
            other => panic!("bad char {other:?} in repeat bounds of pattern {pattern:?}"),
        }
    }
    panic!("unterminated repeat bounds in pattern {pattern:?}");
}

fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Node {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => {
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                return Node::Class(ranges);
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling '\\' in pattern {pattern:?}"));
                ranges.push((escaped, escaped));
            }
            lo => {
                // `a-z` is a range unless '-' is the class's last char.
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next();
                    if ahead.peek().is_some_and(|&c| c != ']') {
                        chars.next();
                        let hi = chars.next().unwrap();
                        assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                        ranges.push((lo, hi));
                        continue;
                    }
                }
                ranges.push((lo, lo));
            }
        }
    }
}

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Any => {
            if rng.gen_bool(0.05) {
                out.push(WIDE_CHARS[rng.gen_range(0..WIDE_CHARS.len())]);
            } else {
                out.push(rng.gen_range(0x20u32..0x7f) as u8 as char);
            }
        }
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            let span = hi as u32 - lo as u32;
            let c = char::from_u32(lo as u32 + rng.gen_range(0..=span))
                .expect("class range stays in scalar values");
            out.push(c);
        }
        Node::Group(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen(pattern: &str) -> String {
        let mut rng = StdRng::seed_from_u64(7);
        RegexGen::compile(pattern).generate(&mut rng)
    }

    #[test]
    fn class_with_dot_literal() {
        for i in 0..50 {
            let mut rng = StdRng::seed_from_u64(i);
            let s = RegexGen::compile("[a-z.]{1,20}").generate(&mut rng);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c == '.' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn grouped_package_names() {
        for i in 0..50 {
            let mut rng = StdRng::seed_from_u64(i);
            let s = RegexGen::compile("[a-z]{1,6}(\\.[a-z]{1,6}){0,3}").generate(&mut rng);
            for seg in s.split('.') {
                assert!((1..=6).contains(&seg.len()), "{s:?}");
                assert!(seg.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn dot_and_star() {
        let _ = gen(".{0,80}");
        let _ = gen(".*");
        let s = gen("[a-z/A-Z$0-9]{1,40}");
        assert!(!s.is_empty() && s.len() <= 40);
    }
}
