//! The [`Strategy`] trait and combinators: `Just`, ranges, tuples,
//! `prop_map`, and `prop_oneof!` arms.

use crate::string::RegexGen;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Upstream proptest strategies build shrinkable value *trees*; this
/// in-tree harness generates plain values (no shrinking), which is all the
/// workspace's properties rely on.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strat: self, f }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strat.gen_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals are regex strategies, as in upstream proptest.
/// (Reaches `&str` through the blanket `&S` impl below.)
impl Strategy for str {
    type Value = String;
    fn gen_value(&self, rng: &mut StdRng) -> String {
        RegexGen::compile(self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Type-erased arm of a [`OneOf`] choice.
pub type OneOfArm<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Box a strategy into a [`OneOf`] arm (used by `prop_oneof!`).
pub fn one_of_arm<S>(strat: S) -> OneOfArm<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| strat.gen_value(rng))
}

/// Uniform choice among same-typed strategies (the `prop_oneof!` macro).
pub struct OneOf<T> {
    arms: Vec<OneOfArm<T>>,
}

impl<T> OneOf<T> {
    /// Build from boxed arms; panics if empty.
    pub fn new(arms: Vec<OneOfArm<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Strategies behind shared references generate like their referents.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S::Value {
        (**self).gen_value(rng)
    }
}
