//! `prop::sample::Index` — a length-agnostic collection index.

/// An index into a collection whose length is only known at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wrap raw entropy (used by `any::<Index>()`).
    pub(crate) fn new(raw: u64) -> Index {
        Index(raw)
    }

    /// Project onto `0..len`. Panics if `len == 0`, as upstream does.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}
