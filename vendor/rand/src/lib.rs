//! Minimal in-tree implementation of the `rand 0.8` API surface this
//! workspace uses: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] and
//! the [`Rng`] extension methods `gen`, `gen_bool`, `gen_range`.
//!
//! `StdRng` is xoshiro256++ (seeded through SplitMix64), not upstream's
//! ChaCha12 — statistically solid for corpus synthesis, but the exact
//! value sequence differs from real `rand`. Nothing in the workspace
//! asserts literal sequences; calibration tests check distribution shapes.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`]. The element type is a trait
/// parameter (as upstream) so the expected result type can drive integer
/// literal inference: `let b: u8 = rng.gen_range(0..3)`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on empty ranges.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Fixed-point multiply avoids modulo bias for small spans.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Fill a slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 stream expands the seed into four nonzero words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.gen_range(7.94..9.3);
            assert!((7.94..9.3).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..20_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
