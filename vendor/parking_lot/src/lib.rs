//! Minimal in-tree `parking_lot` facade over `std::sync` primitives.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is absorbed by
//! recovering the inner guard, which is parking_lot's behavior too —
//! it has no poisoning).

use std::sync::{self, TryLockError};

/// Mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Reader-writer lock whose accessors never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire an exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
    }
}
