//! Minimal in-tree micro-benchmark harness exposing the `criterion 0.5`
//! API shape the workspace's benches use: groups, `bench_function`,
//! `bench_with_input`, `iter`/`iter_batched`, `Throughput`, `black_box`.
//!
//! Measurement model: each benchmark is warmed up, then timed over
//! auto-scaled iteration batches until a target of ~300 ms of samples is
//! collected; the median per-iteration time is printed. No history files
//! or plots are produced.
//!
//! Two environment knobs support CI snapshots (`ci.sh bench-snapshot`):
//!
//! - `WLA_BENCH_QUICK=1` — quick mode: samples are clamped to 3 per bench
//!   and timed batches target ~5 ms instead of ~25 ms, trading precision
//!   for wall time;
//! - `WLA_BENCH_JSON=<path>` — append one tab-separated `id<TAB>median_ns`
//!   line per result to `<path>`, for machine assembly into
//!   `BENCH_static.json`.

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Quick mode: fewer samples, shorter batches (`WLA_BENCH_QUICK=1`).
fn quick_mode() -> bool {
    std::env::var_os("WLA_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Append one `id<TAB>median_ns` line to `WLA_BENCH_JSON`, if set. Errors
/// are ignored: a broken sink must not fail the bench run itself.
fn emit_machine_line(id: &str, median_ns: f64) {
    if let Some(path) = std::env::var_os("WLA_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{id}\t{median_ns:.1}");
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, as upstream renders it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Accepted by `bench_function`: either a bare `&str` or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

/// Input-consumption policy for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs; setup runs once per timed iteration.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_target: usize,
}

impl Bencher {
    fn new(sample_target: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_target: if quick_mode() {
                sample_target.min(3)
            } else {
                sample_target
            },
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + per-batch iteration sizing: aim each timed batch at
        // roughly 25 ms (5 ms in quick mode) so short routines are still
        // resolvable.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(if quick_mode() { 5 } else { 25 });
        let per_batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1 << 20);

        for _ in 0..self.sample_target {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let dt = start.elapsed();
            self.samples.push(dt.as_nanos() as f64 / per_batch as f64);
        }
    }

    /// Time `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_target {
            // One setup+routine pair per sample keeps memory bounded.
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.samples[self.samples.len() / 2]
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Annotate throughput; reported as GiB/s or Melem/s per result line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher);
        self.report(&id.into_id(), bencher.median_ns());
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher, input);
        self.report(&id.into_id(), bencher.median_ns());
        self
    }

    fn report(&self, id: &str, median_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
                let gib_s = n as f64 / 1024.0 / 1024.0 / 1024.0 / (median_ns * 1e-9);
                format!("  ({gib_s:.2} GiB/s)")
            }
            Some(Throughput::Elements(n)) if median_ns > 0.0 => {
                let melem_s = n as f64 / 1e6 / (median_ns * 1e-9);
                format!("  ({melem_s:.2} Melem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} time: [{}]{}",
            self.name,
            id,
            human_time(median_ns),
            rate
        );
        emit_machine_line(&format!("{}/{}", self.name, id), median_ns);
    }

    /// End the group (kept for API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored: `--bench`, filters).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut b = Bencher::new(4);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(3));
            acc
        });
        assert!(b.median_ns() >= 0.0);
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn id_renders_with_parameter() {
        assert_eq!(BenchmarkId::new("corpus", 8).into_id(), "corpus/8");
    }
}
