#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Codec regressions (e.g. the content-length and bare-\r bugs fixed in
# the net crate) are exactly the kind of thing `clippy -D warnings` plus
# the proptest suites catch mechanically — run this before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo build --benches (smoke) =="
bench_start=$SECONDS
cargo build --benches --workspace -q
bench_secs=$((SECONDS - bench_start))

echo "ci: all green (bench smoke build: ${bench_secs}s)"
