#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Codec regressions (e.g. the content-length and bare-\r bugs fixed in
# the net crate) are exactly the kind of thing `clippy -D warnings` plus
# the proptest suites catch mechanically — run this before every push.
#
# `ci.sh bench-snapshot` refreshes BENCH_static.json: it runs the
# callgraph and static-pipeline benches in quick mode (WLA_BENCH_QUICK=1,
# ~seconds instead of minutes) and assembles the per-bench medians into a
# committed JSON snapshot. Quick-mode numbers are noisier than a full
# `cargo bench` run — use them for order-of-magnitude regression spotting,
# and EXPERIMENTS.md for the measured full-mode ablations.
set -euo pipefail
cd "$(dirname "$0")"

bench_snapshot() {
    echo "== bench snapshot (quick mode) =="
    local tsv
    tsv=$(mktemp)
    trap 'rm -f "$tsv"' RETURN
    WLA_BENCH_QUICK=1 WLA_BENCH_JSON="$tsv" \
        cargo bench -q -p wla-bench --bench callgraph --bench static_pipeline
    # TSV (id<TAB>median_ns) -> sorted JSON object, no jq/python needed.
    LC_ALL=C sort "$tsv" | awk -F'\t' '
        BEGIN { print "{" }
        { lines[NR] = sprintf("  \"%s\": %s", $1, $2) }
        END {
            for (i = 1; i <= NR; i++)
                print lines[i] (i < NR ? "," : "")
            print "}"
        }' > BENCH_static.json
    echo "wrote BENCH_static.json ($(grep -c '":' BENCH_static.json) benches)"
}

if [[ "${1:-}" == "bench-snapshot" ]]; then
    bench_snapshot
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo build --benches (smoke) =="
bench_start=$SECONDS
cargo build --benches --workspace -q
bench_secs=$((SECONDS - bench_start))

echo "ci: all green (bench smoke build: ${bench_secs}s)"
