#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Codec regressions (e.g. the content-length and bare-\r bugs fixed in
# the net crate) are exactly the kind of thing `clippy -D warnings` plus
# the proptest suites catch mechanically — run this before every push.
#
# `ci.sh bench-snapshot` refreshes BENCH_static.json: it runs the
# callgraph, static-pipeline, url-provenance, and corpus-stream benches in quick mode (WLA_BENCH_QUICK=1,
# ~seconds instead of minutes) and assembles the per-bench medians into a
# committed JSON snapshot. Quick-mode numbers are noisier than a full
# `cargo bench` run — use them for order-of-magnitude regression spotting,
# and EXPERIMENTS.md for the measured full-mode ablations.
#
# `ci.sh bench-check` re-runs the same quick snapshot into a temp file and
# fails, with a printed diff, if any bench present in the committed
# BENCH_static.json got more than 25% slower. Quick-mode noise stays well
# inside that allowance; real regressions (an accidental re-allocation in
# the decode path, a serial-tail blowup) do not.
set -euo pipefail
cd "$(dirname "$0")"

run_quick_benches() {
    # TSV (id<TAB>median_ns), one line per bench, sorted. Two passes with
    # a per-bench minimum: shared boxes swing their CPU allotment between
    # runs, and the min is the statistic least sensitive to that noise —
    # a real regression slows the best case too.
    local tsv=$1
    rm -f "$tsv.raw"
    local pass
    for pass in 1 2; do
        WLA_BENCH_QUICK=1 WLA_BENCH_JSON="$tsv.raw" \
            cargo bench -q -p wla-bench --bench callgraph --bench static_pipeline --bench url_provenance --bench corpus_stream
    done
    awk -F'\t' '
        !($1 in best) || $2 + 0 < best[$1] + 0 { best[$1] = $2 }
        END { for (id in best) printf "%s\t%s\n", id, best[id] }
    ' "$tsv.raw" | LC_ALL=C sort > "$tsv"
    rm -f "$tsv.raw"
}

tsv_to_json() {
    awk -F'\t' '
        BEGIN { print "{" }
        { lines[NR] = sprintf("  \"%s\": %s", $1, $2) }
        END {
            for (i = 1; i <= NR; i++)
                print lines[i] (i < NR ? "," : "")
            print "}"
        }' "$1"
}

bench_snapshot() {
    echo "== bench snapshot (quick mode) =="
    local tsv
    tsv=$(mktemp)
    trap 'rm -f "$tsv"' RETURN
    run_quick_benches "$tsv"
    tsv_to_json "$tsv" > BENCH_static.json
    echo "wrote BENCH_static.json ($(grep -c '":' BENCH_static.json) benches)"
}

bench_check() {
    echo "== bench check (quick mode, +25% regression gate) =="
    [[ -f BENCH_static.json ]] || { echo "bench-check: no committed BENCH_static.json"; exit 1; }
    local tsv
    tsv=$(mktemp)
    trap 'rm -f "$tsv"' RETURN
    run_quick_benches "$tsv"
    # Compare every committed entry against the fresh run; entries only on
    # one side (added or retired benches) are reported but never fail.
    awk -F'\t' '
        NR == FNR { fresh[$1] = $2; next }
        /":/ {
            line = $0
            gsub(/^[ ]*"|",?$/, "", line)
            split(line, kv, /": /)
            id = kv[1]; old = kv[2] + 0
            if (!(id in fresh)) { printf "  retired   %-40s (baseline %.0f ns)\n", id, old; next }
            new = fresh[id] + 0
            ratio = (old > 0) ? new / old : 1
            verdict = (ratio > 1.25) ? "REGRESSED" : "ok"
            printf "  %-9s %-40s %12.0f -> %12.0f ns (%+.1f%%)\n", verdict, id, old, new, (ratio - 1) * 100
            if (ratio > 1.25) bad++
            seen[id] = 1
        }
        END {
            for (id in fresh) if (!(id in seen)) printf "  new       %-40s %12.0f ns\n", id, fresh[id] + 0
            exit bad > 0 ? 1 : 0
        }' "$tsv" BENCH_static.json || { echo "bench-check: FAILED (>25% regression above)"; exit 1; }
    echo "bench-check: all within 25% of committed snapshot"
}

case "${1:-}" in
bench-snapshot)
    bench_snapshot
    exit 0
    ;;
bench-check)
    bench_check
    exit 0
    ;;
esac

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo build --benches (smoke) =="
bench_start=$SECONDS
cargo build --benches --workspace -q
bench_secs=$((SECONDS - bench_start))

echo "ci: all green (bench smoke build: ${bench_secs}s)"
