#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Codec regressions (e.g. the content-length and bare-\r bugs fixed in
# the net crate) are exactly the kind of thing `clippy -D warnings` plus
# the proptest suites catch mechanically — run this before every push.
#
# `ci.sh bench-snapshot` refreshes the committed bench snapshots in quick
# mode (WLA_BENCH_QUICK=1, ~seconds instead of minutes):
#   BENCH_static.json  — callgraph, static-pipeline, url-provenance, and
#                        corpus-stream benches;
#   BENCH_dynamic.json — the crawl-study benches (seed oracle vs interned
#                        pipeline vs parallel pool) and the simhash kernel.
# Quick-mode numbers are noisier than a full `cargo bench` run — use them
# for order-of-magnitude regression spotting, and EXPERIMENTS.md for the
# measured full-mode ablations.
#
# `ci.sh bench-check` re-runs the same quick snapshots into temp files and
# fails, with a printed diff, if any bench present in a committed snapshot
# got slower than its allowance: 25% for the static microbenches, 50% for
# the end-to-end crawl runs (whole-pipeline wall times swing more with
# host load, and the seed-vs-parallel sides of the speedup ratio swing
# together). Real regressions — an accidental re-allocation in the decode
# path, a per-visit parse sneaking back in — clear both bars.
set -euo pipefail
cd "$(dirname "$0")"

STATIC_BENCHES="--bench callgraph --bench static_pipeline --bench url_provenance --bench corpus_stream --bench http_loop"
DYNAMIC_BENCHES="--bench crawl --bench simhash"

run_quick_benches() {
    # TSV (id<TAB>median_ns), one line per bench, sorted. Two passes with
    # a per-bench minimum: shared boxes swing their CPU allotment between
    # runs, and the min is the statistic least sensitive to that noise —
    # a real regression slows the best case too.
    local tsv=$1
    shift
    rm -f "$tsv.raw"
    local pass
    for pass in 1 2; do
        WLA_BENCH_QUICK=1 WLA_BENCH_JSON="$tsv.raw" \
            cargo bench -q -p wla-bench "$@"
    done
    awk -F'\t' '
        !($1 in best) || $2 + 0 < best[$1] + 0 { best[$1] = $2 }
        END { for (id in best) printf "%s\t%s\n", id, best[id] }
    ' "$tsv.raw" | LC_ALL=C sort > "$tsv"
    rm -f "$tsv.raw"
}

tsv_to_json() {
    awk -F'\t' '
        BEGIN { print "{" }
        { lines[NR] = sprintf("  \"%s\": %s", $1, $2) }
        END {
            for (i = 1; i <= NR; i++)
                print lines[i] (i < NR ? "," : "")
            print "}"
        }' "$1"
}

snapshot_one() {
    # $1 = snapshot file; the rest are the bench flags for its suite.
    local json=$1
    shift
    local tsv
    tsv=$(mktemp)
    run_quick_benches "$tsv" "$@"
    tsv_to_json "$tsv" > "$json"
    rm -f "$tsv"
    echo "wrote $json ($(grep -c '":' "$json") benches)"
}

bench_snapshot() {
    echo "== bench snapshot (quick mode) =="
    # shellcheck disable=SC2086
    snapshot_one BENCH_static.json $STATIC_BENCHES
    # shellcheck disable=SC2086
    snapshot_one BENCH_dynamic.json $DYNAMIC_BENCHES
}

check_one() {
    # $1 = committed snapshot; $2 = regression allowance (e.g. 1.25);
    # the rest are the bench flags for its suite.
    local json=$1 limit=$2
    shift 2
    [[ -f "$json" ]] || { echo "bench-check: no committed $json"; exit 1; }
    local tsv
    tsv=$(mktemp)
    run_quick_benches "$tsv" "$@"
    # Compare every committed entry against the fresh run; entries only on
    # one side (added or retired benches) are reported but never fail.
    awk -F'\t' -v limit="$limit" '
        NR == FNR { fresh[$1] = $2; next }
        /":/ {
            line = $0
            gsub(/^[ ]*"|",?$/, "", line)
            split(line, kv, /": /)
            id = kv[1]; old = kv[2] + 0
            if (!(id in fresh)) { printf "  retired   %-40s (baseline %.0f ns)\n", id, old; next }
            new = fresh[id] + 0
            ratio = (old > 0) ? new / old : 1
            verdict = (ratio > limit) ? "REGRESSED" : "ok"
            printf "  %-9s %-40s %12.0f -> %12.0f ns (%+.1f%%)\n", verdict, id, old, new, (ratio - 1) * 100
            if (ratio > limit) bad++
            seen[id] = 1
        }
        END {
            for (id in fresh) if (!(id in seen)) printf "  new       %-40s %12.0f ns\n", id, fresh[id] + 0
            exit bad > 0 ? 1 : 0
        }' "$tsv" "$json" || { rm -f "$tsv"; echo "bench-check: FAILED (regression above allowance in $json)"; exit 1; }
    rm -f "$tsv"
    echo "bench-check: $json within its allowance"
}

trusted_decode_gate() {
    # The trusted-decode acceptance bars, gated on the same snapshot
    # check_one just verified: the `None` preset must decode valid shards
    # ≥1.3x faster than full verification (measured ~1.5x; the floor
    # leaves quick-mode headroom), the stored lookup table must beat the
    # linear type-table scan by ≥3x (measured ~8x), and hash-layout vtable
    # binding must beat binary search on the hierarchy-heavy fixture by
    # ≥1.2x (measured ~1.8x).
    awk -F'": ' '
        /"static_pipeline\/decode_zero_copy"/          { all = $2 + 0 }
        /"static_pipeline\/decode_trusted"/            { trusted = $2 + 0 }
        /"callgraph\/type_by_name_lut"/                { lut = $2 + 0 }
        /"callgraph\/type_by_name_linear_scan"/        { scan = $2 + 0 }
        /"callgraph\/vtable_bind_hash"/                { vh = $2 + 0 }
        /"callgraph\/vtable_bind_binary_search"/       { vb = $2 + 0 }
        END {
            if (all == 0 || trusted == 0 || lut == 0 || scan == 0 || vh == 0 || vb == 0) {
                print "  trusted-decode gate: bench rows missing"; exit 1
            }
            bad = 0
            printf "  trusted-decode  decode_zero_copy / decode_trusted = %.2fx (floor 1.3x)\n", all / trusted
            if (all / trusted < 1.3) bad = 1
            printf "  trusted-decode  linear_scan / type_by_name_lut   = %.1fx (floor 3x)\n", scan / lut
            if (scan / lut < 3) bad = 1
            printf "  trusted-decode  binary_search / vtable_bind_hash = %.2fx (floor 1.2x)\n", vb / vh
            if (vb / vh < 1.2) bad = 1
            exit bad
        }' BENCH_static.json || { echo "bench-check: FAILED (trusted-decode fast path below its floor)"; exit 1; }
}

saturation_gate() {
    # The http_loop acceptance bar: the nonblocking server must clear 5x
    # the thread-per-connection oracle's req/s with 64 concurrent
    # keep-alive clients (pipelined framing — the serial ping-pong shape
    # is client-scheduling-bound on small hosts and reported alongside).
    # check_one has already verified the fresh run sits within 25% of the
    # committed snapshot, so gating on the snapshot gates the live server.
    awk -F'": ' '
        /"http_loop\/oracle_close_64"/   { oracle = $2 + 0 }
        /"http_loop\/nb_pipelined_64"/   { nb = $2 + 0 }
        END {
            if (oracle == 0 || nb == 0) { print "  saturation gate: http_loop benches missing"; exit 1 }
            ratio = oracle / nb
            printf "  saturation   oracle_close_64 / nb_pipelined_64 = %.1fx (floor 5x)\n", ratio
            exit ratio >= 5 ? 0 : 1
        }' BENCH_static.json || { echo "bench-check: FAILED (nonblocking server below 5x oracle saturation)"; exit 1; }
}

bench_check() {
    echo "== bench check (quick mode regression gate) =="
    # shellcheck disable=SC2086
    check_one BENCH_static.json 1.25 $STATIC_BENCHES
    saturation_gate
    trusted_decode_gate
    # shellcheck disable=SC2086
    check_one BENCH_dynamic.json 1.50 $DYNAMIC_BENCHES
}

case "${1:-}" in
bench-snapshot)
    bench_snapshot
    exit 0
    ;;
bench-check)
    bench_check
    exit 0
    ;;
esac

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== corruption suites under the VerifyPreset::All default =="
# The trusted-decode presets must never leak into corruption-facing paths:
# re-run the corruption/equivalence suites (their decoders go through the
# defaults) plus the pin that full verification IS the default everywhere.
cargo test -q --test robustness --test decode_equivalence
cargo test -q --test verify_preset_equivalence full_verification_is_the_default

echo "== cargo build --benches (smoke) =="
bench_start=$SECONDS
cargo build --benches --workspace -q
bench_secs=$((SECONDS - bench_start))

echo "== wla serve --smoke =="
cargo run -q --bin wla -- serve --smoke

echo "ci: all green (bench smoke build: ${bench_secs}s)"
