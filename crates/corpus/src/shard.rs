//! Sharded on-disk corpus: many apps per file, streamed back via mmap.
//!
//! The per-app `apks/<package>.sapk` layout in [`corpus_io`](crate::corpus_io)
//! mirrors a downloaded AndroZoo slice, but at paper scale (146.8K apps) it
//! means 146.8K tiny files and one open/read/close per app. The shard format
//! packs N apps per file so the streaming pipeline can `mmap(2)` one file
//! and hand out zero-copy container windows straight from the page cache:
//!
//! ```text
//! <dir>/shards/shard-00000.wshard
//! <dir>/shards/shard-00001.wshard
//! ...
//! ```
//!
//! Each `.wshard` file is:
//!
//! ```text
//! +--------+---------+----------+--------------------------------------+
//! | "WSHD" | version | checksum | checksummed region:                  |
//! | 4 B    | u16 LE  | u32 LE   |   n_entries  uvarint                 |
//! |        |         |          |   payload_len uvarint                |
//! |        |         |          |   n_entries × entry metadata         |
//! |        |         |          |     (package, on_play, downloads,    |
//! |        |         |          |      category, last_update_day,      |
//! |        |         |          |      payload off, payload len)       |
//! |        |         |          |   payload: concatenated SAPK bytes   |
//! +--------+---------+----------+--------------------------------------+
//! ```
//!
//! using the same wire primitives as SAPK/SDEX (LEB128 varints, length-
//! prefixed UTF-8, Adler-32 over everything after the checksum field).
//! Offsets are relative to the payload start and 64-bit on the wire, so a
//! single shard may exceed 4 GiB. Writes are atomic (temp file + rename);
//! [`read_shard_stamp`] reads just the 10-byte prefix so a resume manifest
//! can cheaply check that a shard is still the one it analyzed.

use crate::corpus_io::write_atomic;
use crate::generator::GeneratedApp;
use crate::playstore::{AppMeta, PlayCategory};
use bytes::{Buf as _, Bytes};
use std::fs;
use std::io::{self, Read as _};
use std::path::{Path, PathBuf};
use wla_apk::wire::{adler32, get_string, get_uvarint, put_string, put_uvarint};
use wla_apk::{ApkError, ContainerSource, VerifyPreset};

/// Leading magic bytes of a shard file.
pub const SHARD_MAGIC: [u8; 4] = *b"WSHD";
/// Current shard format version.
pub const SHARD_VERSION: u16 = 1;
/// Subdirectory of a corpus dir holding the shard files.
pub const SHARD_SUBDIR: &str = "shards";
/// Bytes before the checksummed region: magic + version + checksum.
const SHARD_PREFIX: usize = 10;

/// A shard failure: either the file could not be accessed, or its bytes
/// are not a valid shard.
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem-level failure (open, map, read).
    Io(io::Error),
    /// The file's bytes do not parse as a shard.
    Format(ApkError),
}

impl ShardError {
    /// Stable taxonomy label, compatible with `ApkError::kind` labels.
    pub fn kind(&self) -> &'static str {
        match self {
            ShardError::Io(_) => "shard-io",
            ShardError::Format(e) => e.kind(),
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard io error: {e}"),
            ShardError::Format(e) => write!(f, "shard format error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> ShardError {
        ShardError::Io(e)
    }
}

impl From<ApkError> for ShardError {
    fn from(e: ApkError) -> ShardError {
        ShardError::Format(e)
    }
}

/// One entry's metadata plus the location of its container bytes within
/// the shard payload.
#[derive(Debug, Clone)]
pub struct ShardEntry {
    /// Play metadata, exactly as written.
    pub meta: AppMeta,
    off: u64,
    len: u64,
}

impl ShardEntry {
    /// Container size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.len
    }
}

/// An open shard: parsed entry table plus the (possibly mmap-backed)
/// byte source the container windows alias.
#[derive(Debug)]
pub struct Shard {
    entries: Vec<ShardEntry>,
    source: ContainerSource,
    payload_base: usize,
    checksum: u32,
}

impl Shard {
    /// Open and fully validate a shard, memory-mapping it when the
    /// platform allows (degrades to a buffered read elsewhere).
    pub fn open(path: &Path) -> Result<Shard, ShardError> {
        Shard::parse(ContainerSource::open_mmap(path)?)
    }

    /// Open and fully validate a shard through a plain buffered read.
    pub fn open_buffered(path: &Path) -> Result<Shard, ShardError> {
        Shard::parse(ContainerSource::open_read(path)?)
    }

    fn parse(source: ContainerSource) -> Result<Shard, ShardError> {
        let data = source.bytes();
        if data.len() < SHARD_PREFIX {
            return Err(ApkError::Truncated {
                context: "shard header",
            }
            .into());
        }
        if data[..4] != SHARD_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&data[..4]);
            return Err(ApkError::BadMagic {
                expected: "WSHD",
                found,
            }
            .into());
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        if version != SHARD_VERSION {
            return Err(ApkError::UnsupportedVersion(version).into());
        }
        let stored = u32::from_le_bytes([data[6], data[7], data[8], data[9]]);
        let computed = adler32(&data[SHARD_PREFIX..]);
        if stored != computed {
            return Err(ApkError::ChecksumMismatch { stored, computed }.into());
        }
        let mut cur = &data[SHARD_PREFIX..];
        let n = get_uvarint(&mut cur)? as usize;
        // Each entry costs at least 7 bytes of metadata, so a count larger
        // than the file is bogus; refuse before allocating the table.
        if n > cur.len() {
            return Err(ApkError::Invalid("shard entry count exceeds file size").into());
        }
        let payload_len = get_uvarint(&mut cur)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let package = get_string(&mut cur)?;
            if !cur.has_remaining() {
                return Err(ApkError::Truncated {
                    context: "shard entry flags",
                }
                .into());
            }
            let on_play_store = match cur.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(ApkError::Invalid("shard entry bool out of range").into()),
            };
            let downloads = get_uvarint(&mut cur)?;
            let label = get_string(&mut cur)?;
            let category = PlayCategory::from_label(&label)
                .ok_or(ApkError::Invalid("unknown category label"))?;
            let last_update_day = u32::try_from(get_uvarint(&mut cur)?)
                .map_err(|_| ApkError::Invalid("update day exceeds u32"))?;
            let off = get_uvarint(&mut cur)?;
            let len = get_uvarint(&mut cur)?;
            if off.checked_add(len).is_none_or(|end| end > payload_len) {
                return Err(ApkError::Invalid("shard entry outside payload").into());
            }
            entries.push(ShardEntry {
                meta: AppMeta {
                    package,
                    on_play_store,
                    downloads,
                    category,
                    last_update_day,
                },
                off,
                len,
            });
        }
        if cur.len() as u64 != payload_len {
            return Err(ApkError::Invalid("shard payload length mismatch").into());
        }
        let payload_base = data.len() - cur.len();
        Ok(Shard {
            entries,
            source,
            payload_base,
            checksum: stored,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The parsed entry table, in written order.
    pub fn entries(&self) -> &[ShardEntry] {
        &self.entries
    }

    /// Metadata of entry `i`.
    pub fn entry_meta(&self, i: usize) -> &AppMeta {
        &self.entries[i].meta
    }

    /// Container bytes of entry `i` — a zero-copy window into the shard
    /// source (page-cache-backed when mapped).
    pub fn entry_bytes(&self, i: usize) -> Bytes {
        let e = &self.entries[i];
        self.source
            .slice(self.payload_base + e.off as usize, e.len as usize)
    }

    /// Tag every entry window handed out by [`Shard::entry_bytes`] with a
    /// decode preset. Opening a shard already validated the file-level
    /// Adler-32, so the *bytes* are exactly what the writer produced;
    /// whether those bytes deserve a trusted preset is the caller's call
    /// (a generated corpus with planted corruption must stay at
    /// [`VerifyPreset::All`]).
    pub fn set_verify_preset(&mut self, preset: VerifyPreset) {
        self.source = self.source.clone().with_preset(preset);
    }

    /// The decode preset entry windows are tagged with.
    pub fn verify_preset(&self) -> VerifyPreset {
        self.source.verify_preset()
    }

    /// The shard's stored checksum (validated against the bytes on open).
    pub fn checksum(&self) -> u32 {
        self.checksum
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.source.len() as u64
    }

    /// Whether the backing source is an mmap (false on the buffered path).
    pub fn is_mapped(&self) -> bool {
        self.source.is_mapped()
    }
}

/// The cheap identity of a shard file: its stored checksum and length,
/// read from the 10-byte prefix without touching the payload. A resume
/// manifest stores this stamp and rechecks it before trusting cached
/// results for the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStamp {
    /// Checksum recorded in the shard header.
    pub checksum: u32,
    /// Total file size in bytes.
    pub file_len: u64,
}

/// Read a shard's [`ShardStamp`] without reading its body.
pub fn read_shard_stamp(path: &Path) -> io::Result<ShardStamp> {
    let mut file = fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut prefix = [0u8; SHARD_PREFIX];
    file.read_exact(&mut prefix)?;
    if prefix[..4] != SHARD_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a shard file",
        ));
    }
    let checksum = u32::from_le_bytes([prefix[6], prefix[7], prefix[8], prefix[9]]);
    Ok(ShardStamp { checksum, file_len })
}

/// File name of shard `index` within [`SHARD_SUBDIR`].
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.wshard")
}

/// Serialize `entries` into a single shard at `path`, atomically.
pub fn write_shard(path: &Path, entries: &[(&AppMeta, &[u8])]) -> io::Result<()> {
    let payload_len: u64 = entries.iter().map(|(_, b)| b.len() as u64).sum();
    let mut file = Vec::with_capacity(payload_len as usize + entries.len() * 64 + 64);
    file.extend_from_slice(&SHARD_MAGIC);
    file.extend_from_slice(&SHARD_VERSION.to_le_bytes());
    file.extend_from_slice(&[0u8; 4]); // checksum, patched below
    put_uvarint(&mut file, entries.len() as u64);
    put_uvarint(&mut file, payload_len);
    let mut off: u64 = 0;
    for (meta, bytes) in entries {
        put_string(&mut file, &meta.package);
        file.push(meta.on_play_store as u8);
        put_uvarint(&mut file, meta.downloads);
        put_string(&mut file, meta.category.label());
        put_uvarint(&mut file, u64::from(meta.last_update_day));
        put_uvarint(&mut file, off);
        put_uvarint(&mut file, bytes.len() as u64);
        off += bytes.len() as u64;
    }
    for (_, bytes) in entries {
        file.extend_from_slice(bytes);
    }
    let checksum = adler32(&file[SHARD_PREFIX..]);
    file[6..SHARD_PREFIX].copy_from_slice(&checksum.to_le_bytes());
    write_atomic(path, &file)
}

/// Write `apps` under `dir/shards/` with `per_shard` apps per file.
/// Returns the shard paths in order. Each shard is written atomically.
pub fn write_sharded_corpus(
    dir: &Path,
    apps: &[GeneratedApp],
    per_shard: usize,
) -> io::Result<Vec<PathBuf>> {
    if per_shard == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "per_shard must be at least 1",
        ));
    }
    let shard_dir = dir.join(SHARD_SUBDIR);
    fs::create_dir_all(&shard_dir)?;
    let mut paths = Vec::new();
    for (i, chunk) in apps.chunks(per_shard).enumerate() {
        let entries: Vec<(&AppMeta, &[u8])> = chunk
            .iter()
            .map(|a| (&a.spec.meta, a.bytes.as_slice()))
            .collect();
        let path = shard_dir.join(shard_file_name(i));
        write_shard(&path, &entries)?;
        paths.push(path);
    }
    Ok(paths)
}

/// List the `.wshard` files under `dir/shards/`, sorted by file name.
/// Stray files (including interrupted-write `.tmp` leftovers) are ignored.
pub fn list_shards(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let shard_dir = dir.join(SHARD_SUBDIR);
    let mut out = Vec::new();
    for entry in fs::read_dir(&shard_dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("wshard") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, Generator};
    use wla_sdk_index::SdkIndex;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wla-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_corpus(seed: u64) -> Vec<GeneratedApp> {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 8_000,
            seed,
            ..CorpusConfig::default()
        };
        Generator::new(&catalog, cfg).generate()
    }

    #[test]
    fn roundtrip_mmap_and_buffered_agree() {
        let apps = small_corpus(21);
        assert!(apps.len() >= 10, "need a multi-shard corpus");
        let dir = temp_dir("roundtrip");
        let paths = write_sharded_corpus(&dir, &apps, 4).unwrap();
        assert_eq!(paths, list_shards(&dir).unwrap());

        let mut streamed = 0usize;
        for path in &paths {
            let mapped = Shard::open(path).unwrap();
            let buffered = Shard::open_buffered(path).unwrap();
            assert!(!buffered.is_mapped());
            assert_eq!(mapped.len(), buffered.len());
            assert_eq!(mapped.checksum(), buffered.checksum());
            for i in 0..mapped.len() {
                let app = &apps[streamed];
                assert_eq!(mapped.entry_meta(i), &app.spec.meta);
                assert_eq!(&mapped.entry_bytes(i)[..], &app.bytes[..]);
                assert_eq!(&buffered.entry_bytes(i)[..], &app.bytes[..]);
                streamed += 1;
            }
        }
        assert_eq!(streamed, apps.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_windows_are_zero_copy_views_of_the_mapping() {
        let apps = small_corpus(3);
        let dir = temp_dir("zerocopy");
        let paths = write_sharded_corpus(&dir, &apps, apps.len()).unwrap();
        let shard = Shard::open(&paths[0]).unwrap();
        if shard.is_mapped() {
            // Every entry window must point inside one contiguous mapping —
            // no per-app copies.
            let w0 = shard.entry_bytes(0);
            let w1 = shard.entry_bytes(1);
            let base = w0.as_ref().as_ptr() as usize;
            let next = w1.as_ref().as_ptr() as usize;
            assert_eq!(next, base + w0.len());
        }
        // Windows outlive the shard handle (refcounted mapping).
        let window = shard.entry_bytes(0);
        let expect = apps[0].bytes.clone();
        drop(shard);
        assert_eq!(&window[..], &expect[..]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decodes_straight_from_the_shard_window() {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 8_000,
            seed: 9,
            corrupt_fraction: 0.0,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, cfg).generate();
        let dir = temp_dir("decode");
        let paths = write_sharded_corpus(&dir, &apps, 6).unwrap();
        for path in paths {
            let shard = Shard::open(&path).unwrap();
            for i in 0..shard.len() {
                wla_apk::Sapk::decode_bytes(shard.entry_bytes(i))
                    .unwrap_or_else(|e| panic!("{}: {e}", shard.entry_meta(i).package));
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_shard_roundtrips() {
        let dir = temp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-00000.wshard");
        write_shard(&path, &[]).unwrap();
        let shard = Shard::open(&path).unwrap();
        assert!(shard.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_are_rejected() {
        let apps = small_corpus(8);
        let dir = temp_dir("bitflip");
        let paths = write_sharded_corpus(&dir, &apps, apps.len()).unwrap();
        let pristine = fs::read(&paths[0]).unwrap();
        // Flip a byte in each region: header, entry table, payload.
        for pos in [0usize, 5, 8, 16, pristine.len() / 2, pristine.len() - 1] {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x40;
            fs::write(&paths[0], &bad).unwrap();
            assert!(
                Shard::open(&paths[0]).is_err(),
                "flip at {pos} went unnoticed"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_rejected_at_every_cut() {
        let apps = small_corpus(13);
        let dir = temp_dir("truncate");
        let paths = write_sharded_corpus(&dir, &apps, apps.len()).unwrap();
        let pristine = fs::read(&paths[0]).unwrap();
        // Sampled cuts (every cut is O(file) to validate).
        for cut in (0..pristine.len()).step_by(pristine.len() / 23 + 1) {
            fs::write(&paths[0], &pristine[..cut]).unwrap();
            assert!(Shard::open(&paths[0]).is_err(), "cut at {cut} accepted");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsupported_version_rejected() {
        let dir = temp_dir("version");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.wshard");
        write_shard(&path, &[]).unwrap();
        let mut raw = fs::read(&path).unwrap();
        raw[4] = 0xff;
        fs::write(&path, &raw).unwrap();
        match Shard::open(&path) {
            Err(ShardError::Format(ApkError::UnsupportedVersion(_))) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stamp_matches_open_shard_and_detects_rewrite() {
        let apps = small_corpus(5);
        let dir = temp_dir("stamp");
        let paths = write_sharded_corpus(&dir, &apps, 3).unwrap();
        let stamp = read_shard_stamp(&paths[0]).unwrap();
        let shard = Shard::open(&paths[0]).unwrap();
        assert_eq!(stamp.checksum, shard.checksum());
        assert_eq!(stamp.file_len, shard.file_len());
        drop(shard);
        // Rewriting the shard with different contents changes the stamp.
        let entries: Vec<(&AppMeta, &[u8])> = apps
            .iter()
            .take(1)
            .map(|a| (&a.spec.meta, a.bytes.as_slice()))
            .collect();
        write_shard(&paths[0], &entries).unwrap();
        assert_ne!(read_shard_stamp(&paths[0]).unwrap(), stamp);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_shards_sorted_and_ignores_stray_files() {
        let apps = small_corpus(2);
        let dir = temp_dir("list");
        write_sharded_corpus(&dir, &apps, 2).unwrap();
        let shard_dir = dir.join(SHARD_SUBDIR);
        // Interrupted-write leftover and unrelated files must be invisible.
        fs::write(shard_dir.join("shard-99999.wshard.tmp"), b"partial").unwrap();
        fs::write(shard_dir.join("notes.txt"), b"hi").unwrap();
        let listed = list_shards(&dir).unwrap();
        assert!(!listed.is_empty());
        let names: Vec<_> = listed
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.iter().all(|n| n.ends_with(".wshard")));
        fs::remove_dir_all(&dir).unwrap();
    }
}
