//! # wla-corpus — calibrated synthetic Play Store ecosystem
//!
//! The paper's raw inputs are (a) Play Store metadata for 6.5M apps and
//! (b) the APKs of the 146.8K popular, maintained ones. Neither is
//! available offline, so this crate *generates* an ecosystem whose ground
//! truth is drawn from the paper's published aggregates and then **lowers
//! every sampled behaviour to SAPK/SDEX bytes**. The analysis pipeline
//! never sees the ground truth: it must recover the aggregates from raw
//! bytes through decompilation, call-graph traversal, and SDK labeling —
//! the same inferential path as the paper. (See DESIGN.md §2 for the full
//! substitution argument.)
//!
//! Modules:
//!
//! * [`playstore`] — app metadata model and the 6.5M-record metadata
//!   universe behind Table 2's funnel;
//! * [`distributions`] — seeded samplers (normal, log-normal, weighted
//!   choice) built on plain `rand`, since `rand_distr` is not available;
//! * [`ecosystem`] — per-app behaviour sampling: SDK adoption (correlated
//!   within categories, matched to Tables 3–5 and 7), WebView API method
//!   profiles (Figure 4), app-category multipliers (Figure 3), deep-link
//!   hosting, dead code, and the top-1K attributes behind Table 6;
//! * [`lowering`] — `AppSpec` → manifest + SDEX bytecode with *reachable*
//!   call chains from component entry points to WebView/CT call sites;
//! * [`generator`] — corpus assembly, including byte-level corruption of
//!   the paper's broken-APK fraction.

pub mod corpus_io;
pub mod distributions;
pub mod ecosystem;
pub mod generator;
pub mod lowering;
pub mod playstore;
pub mod shard;

pub use corpus_io::{
    read_corpus, read_corpus_counted, write_corpus, CorpusRead, DiskApp, IngestStats,
};
pub use ecosystem::{
    named_top_apps, top_thousand, AccessGate, AppSpec, DeepLinkSpec, Ecosystem, EcosystemParams,
    LinkBehavior, MethodSet, SdkUse, TopAppSpec, UgcSurface, METHODS,
};
pub use generator::{CorpusConfig, GeneratedApp, Generator};
pub use playstore::{AppMeta, FilterSpec, MetadataUniverse, PlayCategory, UniverseConfig};
pub use shard::{
    list_shards, read_shard_stamp, write_shard, write_sharded_corpus, Shard, ShardEntry,
    ShardError, ShardStamp,
};

/// Number of Play-Store apps in the AndroZoo snapshot (Table 2 row 1).
pub const ANDROZOO_PLAY_APPS: u64 = 6_507_222;
/// Apps whose metadata was found on the Play Store (Table 2 row 2).
pub const FOUND_ON_PLAY: u64 = 2_454_488;
/// Apps with 100K+ downloads (Table 2 row 3).
pub const POPULAR_APPS: u64 = 198_324;
/// Popular apps also updated after 2021-01-01 (Table 2 row 4).
pub const POPULAR_MAINTAINED_APPS: u64 = 146_800;
/// Apps whose APKs decoded successfully (Table 2 row 5).
pub const ANALYZED_APPS: u64 = 146_558;
/// Broken APKs (the difference of the two rows above).
pub const BROKEN_APKS: u64 = POPULAR_MAINTAINED_APPS - ANALYZED_APPS;
