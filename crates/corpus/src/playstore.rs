//! Play Store metadata model and the Table 2 funnel universe.
//!
//! The paper starts from the AndroZoo snapshot of 2023-01-13 (6,507,222
//! Play-Store apps), joins Google Play metadata, and filters to apps with
//! ≥100K downloads updated after 2021-01-01. This module generates a
//! metadata universe whose marginals are calibrated so that *running the
//! filter code* reproduces the funnel — the rows are measured, not copied.

use crate::distributions::{coin, log10_downloads};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Days between 2020-01-01 (our epoch) and the AndroZoo snapshot date
/// (2023-01-13).
pub const SNAPSHOT_DAY: u32 = 1_108;
/// Day number of 2021-01-01 in our epoch — the paper's maintenance cutoff.
pub const CUTOFF_2021: u32 = 366;

/// Google Play app categories (the subset that covers the paper's Figure 3
/// top-10 charts plus the long tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum PlayCategory {
    Education,
    Entertainment,
    Tools,
    Music,
    Puzzle,
    Arcade,
    Action,
    Simulation,
    Casual,
    Racing,
    Communication,
    Social,
    Shopping,
    Finance,
    Productivity,
    Photography,
    Sports,
    News,
    Travel,
    Lifestyle,
    Health,
    Books,
    Business,
    Video,
    Weather,
}

impl PlayCategory {
    /// All categories, in a stable order.
    pub const ALL: [PlayCategory; 25] = [
        PlayCategory::Education,
        PlayCategory::Entertainment,
        PlayCategory::Tools,
        PlayCategory::Music,
        PlayCategory::Puzzle,
        PlayCategory::Arcade,
        PlayCategory::Action,
        PlayCategory::Simulation,
        PlayCategory::Casual,
        PlayCategory::Racing,
        PlayCategory::Communication,
        PlayCategory::Social,
        PlayCategory::Shopping,
        PlayCategory::Finance,
        PlayCategory::Productivity,
        PlayCategory::Photography,
        PlayCategory::Sports,
        PlayCategory::News,
        PlayCategory::Travel,
        PlayCategory::Lifestyle,
        PlayCategory::Health,
        PlayCategory::Books,
        PlayCategory::Business,
        PlayCategory::Video,
        PlayCategory::Weather,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PlayCategory::Education => "Education",
            PlayCategory::Entertainment => "Entertainment",
            PlayCategory::Tools => "Tools",
            PlayCategory::Music => "Music",
            PlayCategory::Puzzle => "Puzzle",
            PlayCategory::Arcade => "Arcade",
            PlayCategory::Action => "Action",
            PlayCategory::Simulation => "Simulation",
            PlayCategory::Casual => "Casual",
            PlayCategory::Racing => "Racing",
            PlayCategory::Communication => "Communication",
            PlayCategory::Social => "Social",
            PlayCategory::Shopping => "Shopping",
            PlayCategory::Finance => "Finance",
            PlayCategory::Productivity => "Productivity",
            PlayCategory::Photography => "Photography",
            PlayCategory::Sports => "Sports",
            PlayCategory::News => "News",
            PlayCategory::Travel => "Travel",
            PlayCategory::Lifestyle => "Lifestyle",
            PlayCategory::Health => "Health",
            PlayCategory::Books => "Books",
            PlayCategory::Business => "Business",
            PlayCategory::Video => "Video",
            PlayCategory::Weather => "Weather",
        }
    }

    /// Inverse of [`PlayCategory::label`], for parsing persisted corpora.
    pub fn from_label(label: &str) -> Option<PlayCategory> {
        PlayCategory::ALL
            .iter()
            .copied()
            .find(|c| c.label() == label)
    }

    /// Whether this is a gaming category (Figure 3 notes gaming apps'
    /// heavier use of CT-based social SDKs).
    pub fn is_game(self) -> bool {
        matches!(
            self,
            PlayCategory::Puzzle
                | PlayCategory::Arcade
                | PlayCategory::Action
                | PlayCategory::Simulation
                | PlayCategory::Casual
                | PlayCategory::Racing
        )
    }

    /// Relative prevalence among popular apps (unnormalized). Games and
    /// education dominate high-download populations.
    pub fn weight(self) -> f64 {
        match self {
            PlayCategory::Education => 9.0,
            PlayCategory::Entertainment => 7.0,
            PlayCategory::Tools => 7.5,
            PlayCategory::Music => 4.5,
            PlayCategory::Puzzle => 8.0,
            PlayCategory::Arcade => 6.5,
            PlayCategory::Action => 5.5,
            PlayCategory::Simulation => 5.0,
            PlayCategory::Casual => 6.0,
            PlayCategory::Racing => 3.0,
            PlayCategory::Communication => 3.5,
            PlayCategory::Social => 3.0,
            PlayCategory::Shopping => 4.0,
            PlayCategory::Finance => 4.5,
            PlayCategory::Productivity => 4.0,
            PlayCategory::Photography => 3.5,
            PlayCategory::Sports => 3.0,
            PlayCategory::News => 2.5,
            PlayCategory::Travel => 2.5,
            PlayCategory::Lifestyle => 3.5,
            PlayCategory::Health => 3.0,
            PlayCategory::Books => 2.5,
            PlayCategory::Business => 3.0,
            PlayCategory::Video => 3.5,
            PlayCategory::Weather => 1.5,
        }
    }
}

/// Metadata for one app, as scraped from the Play Store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppMeta {
    /// Application package name.
    pub package: String,
    /// Whether the Play Store still lists the app (AndroZoo retains
    /// delisted apps; the paper found metadata for only 2.45M of 6.5M).
    pub on_play_store: bool,
    /// Install count.
    pub downloads: u64,
    /// Play category.
    pub category: PlayCategory,
    /// Last update, in days since 2020-01-01.
    pub last_update_day: u32,
}

/// The §3.1.1 selection filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterSpec {
    /// Minimum download count (paper: 100K).
    pub min_downloads: u64,
    /// Minimum last-update day (paper: 2021-01-01).
    pub updated_after_day: u32,
}

impl Default for FilterSpec {
    fn default() -> Self {
        FilterSpec {
            min_downloads: 100_000,
            updated_after_day: CUTOFF_2021,
        }
    }
}

impl FilterSpec {
    /// Does `meta` pass the popularity filter (ignoring maintenance)?
    pub fn is_popular(&self, meta: &AppMeta) -> bool {
        meta.on_play_store && meta.downloads >= self.min_downloads
    }

    /// Does `meta` pass the full filter?
    pub fn accepts(&self, meta: &AppMeta) -> bool {
        self.is_popular(meta) && meta.last_update_day >= self.updated_after_day
    }
}

/// Calibration for the metadata universe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Total AndroZoo Play apps to generate.
    pub total_apps: u64,
    /// Probability an app's metadata is still on the Play Store.
    pub on_play_probability: f64,
    /// Mean of log10(downloads) for listed apps.
    pub log_downloads_mu: f64,
    /// Std-dev of log10(downloads).
    pub log_downloads_sigma: f64,
    /// Cap on log10(downloads) (5e9 installs ≈ 9.7).
    pub log_downloads_cap: f64,
    /// Base of the maintenance probability (see [`maintained_probability`]).
    pub maintenance_base: f64,
    /// Slope of maintenance probability per log10(download).
    pub maintenance_slope: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            total_apps: crate::ANDROZOO_PLAY_APPS,
            // 2,454,488 / 6,507,222.
            on_play_probability: 0.377_2,
            // P(log10 d >= 5) = P(Z >= (5 - 2.2) / 2.0 = 1.4) ≈ 8.08% —
            // the found → 100K+ ratio of Table 2.
            log_downloads_mu: 2.2,
            log_downloads_sigma: 2.0,
            log_downloads_cap: 9.7,
            // Tuned so that P(updated after 2021 | downloads >= 100K) ≈
            // 146,800 / 198,324 = 74.0%.
            maintenance_base: 0.27,
            maintenance_slope: 0.079,
            seed: 0x5EED_AB00,
        }
    }
}

/// Probability that an app with `downloads` was updated after the cutoff.
/// Popular apps are better maintained; the linear-in-log10 model is clamped
/// to a sane range.
pub fn maintained_probability(cfg: &UniverseConfig, downloads: u64) -> f64 {
    let logd = (downloads.max(1) as f64).log10();
    (cfg.maintenance_base + cfg.maintenance_slope * logd).clamp(0.02, 0.98)
}

/// Streaming generator for the metadata universe. Generating 6.5M records
/// allocates only per-record strings; memory stays flat.
#[derive(Debug)]
pub struct MetadataUniverse {
    cfg: UniverseConfig,
    rng: StdRng,
    produced: u64,
    category_weights: Vec<f64>,
}

impl MetadataUniverse {
    /// New universe with the given calibration.
    pub fn new(cfg: UniverseConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let category_weights = PlayCategory::ALL.iter().map(|c| c.weight()).collect();
        MetadataUniverse {
            cfg,
            rng,
            produced: 0,
            category_weights,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &UniverseConfig {
        &self.cfg
    }
}

impl Iterator for MetadataUniverse {
    type Item = AppMeta;

    fn next(&mut self) -> Option<AppMeta> {
        if self.produced >= self.cfg.total_apps {
            return None;
        }
        let i = self.produced;
        self.produced += 1;
        let rng = &mut self.rng;

        let on_play_store = coin(rng, self.cfg.on_play_probability);
        // Downloads exist in AndroZoo even for delisted apps, but the paper
        // can only filter on scraped metadata; model both the same way.
        let downloads = log10_downloads(
            rng,
            self.cfg.log_downloads_mu,
            self.cfg.log_downloads_sigma,
            self.cfg.log_downloads_cap,
        );
        let maintained = coin(rng, maintained_probability(&self.cfg, downloads));
        let last_update_day = if maintained {
            rng.gen_range(CUTOFF_2021..=SNAPSHOT_DAY)
        } else {
            rng.gen_range(0..CUTOFF_2021)
        };
        let cat_idx = crate::distributions::weighted_index(rng, &self.category_weights);

        Some(AppMeta {
            package: format!("com.vendor{:05}.app{:03}", i / 512, i % 512),
            on_play_store,
            downloads,
            category: PlayCategory::ALL[cat_idx],
            last_update_day,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_universe(n: u64) -> Vec<AppMeta> {
        let cfg = UniverseConfig {
            total_apps: n,
            ..UniverseConfig::default()
        };
        MetadataUniverse::new(cfg).collect()
    }

    #[test]
    fn produces_exactly_n() {
        assert_eq!(small_universe(1_000).len(), 1_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_universe(500);
        let b = small_universe(500);
        assert_eq!(a, b);
    }

    #[test]
    fn funnel_ratios_hold_on_sample() {
        let n = 400_000u64;
        let metas = small_universe(n);
        let filter = FilterSpec::default();
        let found = metas.iter().filter(|m| m.on_play_store).count() as f64;
        let popular = metas.iter().filter(|m| filter.is_popular(m)).count() as f64;
        let maintained = metas.iter().filter(|m| filter.accepts(m)).count() as f64;

        let found_ratio = found / n as f64;
        assert!((found_ratio - 0.3772).abs() < 0.01, "found {found_ratio}");

        let popular_ratio = popular / found;
        assert!(
            (popular_ratio - 0.0808).abs() < 0.006,
            "popular {popular_ratio}"
        );

        let maintained_ratio = maintained / popular;
        assert!(
            (maintained_ratio - 0.7402).abs() < 0.03,
            "maintained {maintained_ratio}"
        );
    }

    #[test]
    fn filter_edges() {
        let filter = FilterSpec::default();
        let mut m = AppMeta {
            package: "com.x.y".into(),
            on_play_store: true,
            downloads: 100_000,
            category: PlayCategory::Tools,
            last_update_day: CUTOFF_2021,
        };
        assert!(filter.accepts(&m));
        m.downloads = 99_999;
        assert!(!filter.accepts(&m));
        m.downloads = 100_000;
        m.last_update_day = CUTOFF_2021 - 1;
        assert!(!filter.accepts(&m));
        m.last_update_day = CUTOFF_2021;
        m.on_play_store = false;
        assert!(!filter.accepts(&m));
    }

    #[test]
    fn maintenance_grows_with_popularity() {
        let cfg = UniverseConfig::default();
        assert!(maintained_probability(&cfg, 10_000_000) > maintained_probability(&cfg, 100_000));
        // Clamped on both ends.
        assert!(maintained_probability(&cfg, 0) >= 0.02);
        assert!(maintained_probability(&cfg, u64::MAX) <= 0.98);
    }

    #[test]
    fn categories_cover_games_and_apps() {
        let metas = small_universe(20_000);
        let games = metas.iter().filter(|m| m.category.is_game()).count();
        assert!(games > 2_000, "games {games}");
        assert!(games < 18_000, "games {games}");
    }
}
