//! Seeded sampling primitives on top of plain `rand`.
//!
//! The approved offline crate set includes `rand` but not `rand_distr`, so
//! the handful of distributions the ecosystem model needs are implemented
//! here: standard normal (Box–Muller), log-normal in log10 space (app
//! download counts are classically log-normal with a heavy tail), and
//! weighted index choice.

use rand::Rng;

/// One draw from the standard normal distribution via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Download-count model: `log10(downloads) ~ N(mu, sigma)`, clamped to
/// `[0, cap]`. With the Table 2 calibration (`mu = 2.2`, `sigma = 2.0`),
/// `P(downloads ≥ 1e5) = P(Z ≥ 1.4) ≈ 8.08%` — the Play-found → 100K+
/// funnel ratio.
pub fn log10_downloads<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64, cap: f64) -> u64 {
    let x = normal(rng, mu, sigma).clamp(0.0, cap);
    10f64.powf(x) as u64
}

/// Pick an index in `[0, weights.len())` proportionally to `weights`.
/// Zero-weight entries are never chosen. Panics on an empty or all-zero
/// weight slice — callers control the tables passed here.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index needs a positive total weight");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    // Floating-point slack: return the last positive-weight index.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("positive total implies a positive weight")
}

/// Bernoulli draw.
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Standard normal CDF (Abramowitz–Stegun 7.1.26 approximation), used by
/// calibration tests to check sampled tail masses.
pub fn normal_cdf(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-z * z / 2.0).exp() / (std::f64::consts::TAU).sqrt();
    let p = 1.0 - pdf * poly;
    if z >= 0.0 {
        p
    } else {
        1.0 - p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn download_tail_matches_funnel_ratio() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 300_000;
        let over = (0..n)
            .filter(|_| log10_downloads(&mut rng, 2.2, 2.0, 9.7) >= 100_000)
            .count();
        let frac = over as f64 / n as f64;
        // Expected P(Z >= 1.4) = 1 - Phi(1.4) ≈ 0.0808.
        let expected = 1.0 - normal_cdf(1.4);
        assert!(
            (frac - expected).abs() < 0.005,
            "tail {frac} vs expected {expected}"
        );
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn weighted_index_rejects_all_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        weighted_index(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.4) - 0.9192).abs() < 5e-4);
        assert!((normal_cdf(-1.0) - 0.1587).abs() < 5e-4);
    }

    #[test]
    fn coin_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| coin(&mut rng, 0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }
}
