//! Corpus assembly: sample post-filter app metadata, sample behaviour,
//! lower to bytes, and corrupt the paper's broken-APK fraction.

use crate::distributions::weighted_index;
use crate::ecosystem::{AppSpec, Ecosystem, EcosystemParams};
use crate::lowering::lower;
use crate::playstore::{AppMeta, PlayCategory, CUTOFF_2021, SNAPSHOT_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wla_apk::corrupt::{corrupt, CorruptionKind};
use wla_sdk_index::SdkIndex;

/// Configuration for corpus generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Scale divisor: the corpus holds `146,800 / scale` apps. `scale = 1`
    /// is the paper's full corpus; tests use 1000, experiments 100.
    pub scale: u32,
    /// Master seed.
    pub seed: u64,
    /// Ecosystem calibration.
    pub params: EcosystemParams,
    /// Fraction of containers to damage (paper: 242 / 146,800).
    pub corrupt_fraction: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            scale: 100,
            seed: 0xC0FF_EE00,
            params: EcosystemParams::default(),
            corrupt_fraction: crate::BROKEN_APKS as f64 / crate::POPULAR_MAINTAINED_APPS as f64,
        }
    }
}

impl CorpusConfig {
    /// Number of apps this configuration generates.
    pub fn app_count(&self) -> usize {
        (crate::POPULAR_MAINTAINED_APPS / self.scale as u64).max(1) as usize
    }
}

/// One generated app: ground truth plus the bytes the pipeline sees.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// Ground-truth spec (for test validation only — the pipeline must not
    /// read this).
    pub spec: AppSpec,
    /// The SAPK container bytes, possibly corrupted.
    pub bytes: Vec<u8>,
    /// Whether this container was deliberately damaged.
    pub corrupted: bool,
}

/// Seeded corpus generator.
#[derive(Debug)]
pub struct Generator<'a> {
    catalog: &'a SdkIndex,
    config: CorpusConfig,
}

impl<'a> Generator<'a> {
    /// New generator over `catalog`.
    pub fn new(catalog: &'a SdkIndex, config: CorpusConfig) -> Self {
        Generator { catalog, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Sample metadata for one post-filter app (downloads ≥ 100K via
    /// rejection from the universe's log-normal; update date after the
    /// cutoff by construction).
    fn sample_filtered_meta<R: Rng + ?Sized>(rng: &mut R, i: usize) -> AppMeta {
        let downloads = loop {
            let d = crate::distributions::log10_downloads(rng, 2.2, 2.0, 9.7);
            if d >= 100_000 {
                break d;
            }
        };
        let weights: Vec<f64> = PlayCategory::ALL.iter().map(|c| c.weight()).collect();
        let cat = PlayCategory::ALL[weighted_index(rng, &weights)];
        AppMeta {
            package: format!("com.vendor{:05}.app{:03}", i / 512, i % 512),
            on_play_store: true,
            downloads,
            category: cat,
            last_update_day: rng.gen_range(CUTOFF_2021..=SNAPSHOT_DAY),
        }
    }

    /// Generate the full corpus. Deterministic in the config seed.
    pub fn generate(&self) -> Vec<GeneratedApp> {
        let n = self.config.app_count();
        let eco = Ecosystem::new(self.catalog, self.config.params.clone());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let meta = Self::sample_filtered_meta(&mut rng, i);
            let spec = eco.sample_app(&mut rng, meta);
            let apk = lower(&spec, self.catalog, &mut rng);
            let clean = apk.encode().to_vec();
            let corrupted = rng.gen::<f64>() < self.config.corrupt_fraction;
            let bytes = if corrupted {
                let kind = match rng.gen_range(0..4u8) {
                    0 => CorruptionKind::Truncate {
                        keep_num: rng.gen_range(8..200),
                    },
                    1 => CorruptionKind::BitFlip { pos_num: rng.gen() },
                    2 => CorruptionKind::ClobberRegister {
                        site_num: rng.gen(),
                    },
                    _ => CorruptionKind::ClobberMagic,
                };
                corrupt(&clean, kind)
            } else {
                clean
            };
            out.push(GeneratedApp {
                spec,
                bytes,
                corrupted,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_apk::Sapk;

    fn small_corpus(scale: u32, seed: u64) -> Vec<GeneratedApp> {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale,
            seed,
            ..CorpusConfig::default()
        };
        Generator::new(&catalog, cfg).generate()
    }

    #[test]
    fn app_count_respects_scale() {
        let apps = small_corpus(1_000, 1);
        assert_eq!(apps.len(), 146); // 146,800 / 1000
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_corpus(2_000, 9);
        let b = small_corpus(2_000, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.corrupted, y.corrupted);
        }
    }

    #[test]
    fn corruption_matches_flag() {
        // Force heavy corruption to exercise the path.
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 1_000,
            seed: 5,
            corrupt_fraction: 0.5,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, cfg).generate();
        let corrupted = apps.iter().filter(|a| a.corrupted).count();
        assert!(corrupted > 40 && corrupted < 110, "corrupted {corrupted}");
        for a in &apps {
            // Register clobbering is transparent to the container and only
            // fails at the dex layer, so "broken" means any layer fails.
            let ok = Sapk::decode(&a.bytes).is_ok_and(|apk| {
                apk.sections()
                    .iter()
                    .filter(|s| s.tag == wla_apk::SectionTag::Dex)
                    .all(|s| wla_apk::Dex::decode(&s.data).is_ok())
            });
            assert_eq!(ok, !a.corrupted, "decode ok={ok} corrupted={}", a.corrupted);
        }
    }

    #[test]
    fn default_corruption_fraction_is_papers() {
        let cfg = CorpusConfig::default();
        let expect = 242.0 / 146_800.0;
        assert!((cfg.corrupt_fraction - expect).abs() < 1e-9);
    }

    #[test]
    fn all_downloads_above_threshold() {
        let apps = small_corpus(2_000, 3);
        assert!(apps.iter().all(|a| a.spec.meta.downloads >= 100_000));
        assert!(apps
            .iter()
            .all(|a| a.spec.meta.last_update_day >= CUTOFF_2021));
    }
}
