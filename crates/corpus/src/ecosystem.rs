//! Per-app behaviour sampling, calibrated to the paper's aggregates.
//!
//! The sampling model (constants in [`EcosystemParams`], all derived from
//! the paper; see DESIGN.md §2):
//!
//! * **SDK adoption** is sampled per *(SDK category, mechanism pool)*: an
//!   app adopts the WebView-advertising pool with probability
//!   `39,163 / 146,558` (Table 4's category total over the analyzed corpus)
//!   and, conditioned on adoption, includes each SDK of the pool with
//!   probability `sdk_apps / category_total` (Table 4/5 per-SDK counts),
//!   forcing at least one — so the *union* of SDK users per category equals
//!   the category total in expectation. This reproduces the heavy
//!   co-installation the tables imply (the top-5 ad SDKs sum to 75K uses
//!   across only 39K distinct apps: mediation).
//! * **Correlations**: engagement SDKs ride on advertising adoption (the OM
//!   SDK measures ad performance, §4.1.2); Custom-Tab pools are sampled
//!   inside a latent "CT affinity" subset that is itself biased toward ad
//!   adopters — this reproduces both the distinct-CT-app total and the
//!   "15% of apps use both" overlap without per-pair tuning.
//! * **Direct (non-SDK) usage** adds first-party WebView/CT code with
//!   probabilities chosen so Table 7's totals (81,720 WebView apps, 29,130
//!   CT apps) emerge after the union with SDK-driven usage.
//! * **Method profiles**: each SDK has a fixed set of WebView API methods
//!   its bytecode calls (hand-assigned for the SDKs the paper names,
//!   deterministically sampled per SDK category otherwise — Figure 4's
//!   conditional pattern), and direct users sample methods from Table 7's
//!   residual marginals.
//! * **App-category effects** (Figure 3): per-Play-category multipliers on
//!   pool adoption (education: fewer ads, more payments; games: more
//!   CT-social; finance: more payments).

use crate::distributions::{coin, weighted_index};
use crate::playstore::{AppMeta, PlayCategory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wla_sdk_index::{Sdk, SdkCategory, SdkIndex};

/// The seven WebView content methods of Table 7, in table order.
/// (Mirrors `wla_apk::names::WEBVIEW_CONTENT_METHODS`; redefined here to
/// keep index-based [`MethodSet`] self-contained.)
pub const METHODS: [&str; 7] = [
    "loadUrl",
    "addJavascriptInterface",
    "loadDataWithBaseURL",
    "evaluateJavascript",
    "removeJavascriptInterface",
    "loadData",
    "postUrl",
];

/// Index of `loadUrl` in [`METHODS`].
pub const M_LOAD_URL: usize = 0;
/// Index of `addJavascriptInterface`.
pub const M_ADD_JS_IFACE: usize = 1;
/// Index of `loadDataWithBaseURL`.
pub const M_LOAD_DATA_BASE: usize = 2;
/// Index of `evaluateJavascript`.
pub const M_EVAL_JS: usize = 3;
/// Index of `removeJavascriptInterface`.
pub const M_REMOVE_JS_IFACE: usize = 4;
/// Index of `loadData`.
pub const M_LOAD_DATA: usize = 5;
/// Index of `postUrl`.
pub const M_POST_URL: usize = 6;

/// A set of WebView content methods, one bit per [`METHODS`] index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MethodSet(pub u8);

impl MethodSet {
    /// Empty set.
    pub const EMPTY: MethodSet = MethodSet(0);

    /// Set containing only `loadUrl`.
    pub fn load_url_only() -> MethodSet {
        let mut s = MethodSet::EMPTY;
        s.insert(M_LOAD_URL);
        s
    }

    /// Insert by method index.
    pub fn insert(&mut self, idx: usize) {
        self.0 |= 1 << idx;
    }

    /// Membership by method index.
    pub fn contains(self, idx: usize) -> bool {
        self.0 & (1 << idx) != 0
    }

    /// Union.
    pub fn union(self, other: MethodSet) -> MethodSet {
        MethodSet(self.0 | other.0)
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over contained method names.
    pub fn names(self) -> impl Iterator<Item = &'static str> {
        METHODS
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.contains(*i))
            .map(|(_, m)| *m)
    }

    /// Number of methods in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }
}

/// One SDK embedded in an app. For `Both`-mechanism SDKs the app may link
/// only one of the code paths (SDKs ship modular artifacts and release
/// builds shrink unused code), which is how the paper can observe NAVER's
/// WebView path in 406 apps but its CT path in only 157.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdkUse {
    /// Index into the [`SdkIndex`] catalog.
    pub sdk_idx: usize,
    /// The SDK's WebView module is linked into this app.
    pub webview: bool,
    /// The SDK's Custom-Tabs module is linked into this app.
    pub custom_tabs: bool,
}

/// First-party deep-link hosting: the app has an exported BROWSABLE
/// activity for `host`; if `uses_webview`, that activity renders the
/// content in a WebView — *first-party* usage the pipeline must exclude.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepLinkSpec {
    /// Verified web host.
    pub host: String,
    /// Whether the deep-link activity itself drives a WebView.
    pub uses_webview: bool,
}

/// Ground truth for one generated app. The static pipeline never sees this
/// struct — it is retained so tests can check what the pipeline recovers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Play metadata.
    pub meta: AppMeta,
    /// Embedded SDKs.
    pub sdks: Vec<SdkUse>,
    /// Per-SDK-category WebView method sets for *this app*. SDKs ship
    /// modular artifacts and release builds shrink unused code, so which of
    /// an SDK's WebView methods are reachable varies per integrating app —
    /// that is how Table 7 can show `addJavascriptInterface` via SDKs in
    /// only 42% of SDK-using apps while the biggest ad SDKs alone cover far
    /// more. Sampled once per (app, category) from
    /// [`category_method_probs`].
    pub sdk_category_methods: Vec<(SdkCategory, MethodSet)>,
    /// Methods the app's first-party code calls on WebView (empty ⇒ no
    /// direct WebView usage).
    pub direct_wv_methods: MethodSet,
    /// First-party code routes WebView calls through its own
    /// `extends WebView` subclass.
    pub direct_wv_subclass: bool,
    /// First-party Custom-Tabs usage.
    pub direct_ct: bool,
    /// Deep-link (first-party) hosting, if any.
    pub deep_link: Option<DeepLinkSpec>,
    /// The app ships a class that calls `loadUrl` but is unreachable from
    /// every component entry point (dead code the traversal must skip).
    pub dead_code_webview: bool,
    /// Count of behaviour-free filler classes (size realism).
    pub noise_classes: u8,
}

impl AppSpec {
    /// The method set this app's SDKs of `category` expose (empty when the
    /// app has no WebView SDK of that category).
    pub fn methods_for(&self, category: SdkCategory) -> MethodSet {
        self.sdk_category_methods
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, m)| *m)
            .unwrap_or(MethodSet::EMPTY)
    }

    /// Ground truth: does any reachable code use a WebView?
    /// (Per-category method sets are never empty, so any linked WebView
    /// module implies at least one call.)
    pub fn uses_webview(&self, catalog: &SdkIndex) -> bool {
        let _ = catalog;
        !self.direct_wv_methods.is_empty() || self.sdks.iter().any(|u| u.webview)
    }

    /// Ground truth: does any reachable code launch a Custom Tab?
    pub fn uses_custom_tabs(&self) -> bool {
        self.direct_ct || self.sdks.iter().any(|u| u.custom_tabs)
    }

    /// Ground truth: the full method census for this app (union of the
    /// per-category SDK sets and the direct methods).
    pub fn method_census(&self, catalog: &SdkIndex) -> MethodSet {
        let _ = catalog;
        let mut set = self.direct_wv_methods;
        for (_, m) in &self.sdk_category_methods {
            set = set.union(*m);
        }
        set
    }
}

/// P(method | app using WebView SDKs of this category) — the per-app
/// modular-inclusion probabilities. Index-aligned with [`METHODS`]; the
/// `removeJavascriptInterface` entry is *conditional on
/// `addJavascriptInterface`* (an SDK only removes a bridge it added).
/// Calibrated so the population union reproduces Table 7's "via top SDKs"
/// column and the row patterns of Figure 4 (§4.1.1: >45% of ad-SDK apps
/// expose a bridge; §4.1.4: 48.5% of payment apps; §4.1.5: every
/// user-support app calls `loadDataWithBaseURL`, 45.9% `loadUrl`).
pub fn category_method_probs(category: SdkCategory) -> [f64; 7] {
    match category {
        SdkCategory::Advertising => [0.97, 0.45, 0.52, 0.32, 0.65, 0.005, 0.02],
        SdkCategory::Engagement => [0.30, 0.10, 0.15, 0.35, 0.65, 0.005, 0.00],
        SdkCategory::DevelopmentTools => [0.98, 0.30, 0.35, 0.15, 0.65, 0.06, 0.03],
        SdkCategory::Payments => [0.90, 0.485, 0.30, 0.08, 0.65, 0.02, 0.45],
        SdkCategory::UserSupport => [0.459, 0.20, 1.00, 0.05, 0.65, 0.05, 0.00],
        SdkCategory::Social => [0.95, 0.25, 0.20, 0.03, 0.65, 0.005, 0.02],
        SdkCategory::Utility => [0.90, 0.30, 0.40, 0.10, 0.65, 0.05, 0.02],
        SdkCategory::Authentication => [0.95, 0.30, 0.15, 0.10, 0.65, 0.02, 0.05],
        SdkCategory::HybridFunctionality => [0.95, 0.60, 0.60, 0.40, 0.65, 0.20, 0.05],
        SdkCategory::Unknown => [0.80, 0.30, 0.35, 0.20, 0.65, 0.04, 0.05],
    }
}

/// Sample one (app, category) method set.
pub fn sample_category_methods<R: Rng + ?Sized>(rng: &mut R, category: SdkCategory) -> MethodSet {
    let p = category_method_probs(category);
    let mut set = MethodSet::EMPTY;
    for (i, &pi) in p.iter().enumerate() {
        if i == M_REMOVE_JS_IFACE {
            continue;
        }
        if coin(rng, pi) {
            set.insert(i);
        }
    }
    if set.contains(M_ADD_JS_IFACE) && coin(rng, p[M_REMOVE_JS_IFACE]) {
        set.insert(M_REMOVE_JS_IFACE);
    }
    // A linked WebView module calls at least something.
    if set.is_empty() {
        set.insert(M_LOAD_URL);
    }
    set
}

/// UGC surfaces where a user can encounter a link (Table 8's "WebView Via"
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UgcSurface {
    /// Feed post.
    Post,
    /// Direct message.
    DirectMessage,
    /// Story.
    Story,
    /// Profile page.
    Profile,
    /// Profile biography.
    Bio,
}

/// What happens when a user taps an external link (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkBehavior {
    /// A Web URI intent reaches the default browser — Android's default.
    OpensBrowser,
    /// The app intercepts the tap and opens a WebView-based IAB.
    OpensWebViewIab,
    /// The app opens a Custom Tab.
    OpensCustomTab,
}

/// Why an app could not be classified during the manual top-1K analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessGate {
    /// Registration demanded a phone number (24 apps).
    PhoneNumber,
    /// The app crashed or refused to run on the test device (22 apps).
    Incompatible,
    /// Content locked behind a paid account (2 apps).
    PaidAccount,
}

/// Ground truth for one top-1K app in the dynamic study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopAppSpec {
    /// Display name ("Facebook", or a generated one).
    pub name: String,
    /// Package name.
    pub package: String,
    /// Install count.
    pub downloads: u64,
    /// Play category.
    pub category: PlayCategory,
    /// The app itself is a browser (9 apps).
    pub is_browser: bool,
    /// Access gate blocking classification, if any (48 apps).
    pub gate: Option<AccessGate>,
    /// UGC surface where users can post links, if any (38 apps).
    pub ugc: Option<UgcSurface>,
    /// Link-tap behaviour (meaningful only when `ugc` is `Some`).
    pub link_behavior: LinkBehavior,
}

/// All calibration constants. Defaults encode the paper's numbers; fields
/// are public so experiments can perturb them (sensitivity analyses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcosystemParams {
    /// Analyzed-corpus size the probabilities are normalized by.
    pub population: u64,
    /// Per-category WebView-pool adoption totals (paper scale, Table 4).
    pub wv_pool_totals: Vec<(SdkCategory, u64)>,
    /// Per-category CT-pool adoption totals (paper scale, Table 5).
    pub ct_pool_totals: Vec<(SdkCategory, u64)>,
    /// Adoption total for the obfuscated packages' pool.
    pub obfuscated_pool_total: u64,
    /// P(app monetizes with ads) — the latent trait that engagement SDKs
    /// and CT affinity key on. Defaults to the advertising pool's adoption
    /// (39,163 / 146,558); kept separate so what-if transforms that move
    /// pool mass between mechanisms don't silently change it.
    pub ad_monetization_probability: f64,
    /// P(engagement adoption | advertising adopter) — engagement SDKs
    /// measure ad performance, so they ride on ads.
    pub engagement_given_ads: f64,
    /// P(CT-affinity | ad adopter) and P(CT-affinity | not ad adopter):
    /// the latent subset CT pools are sampled within.
    pub ct_affinity_given_ads: f64,
    /// See above.
    pub ct_affinity_otherwise: f64,
    /// P(first-party WebView code | app).
    pub direct_webview_probability: f64,
    /// P(first-party CT code | app).
    pub direct_ct_probability: f64,
    /// P(method | direct WebView user), indexed like [`METHODS`].
    pub direct_method_probabilities: [f64; 7],
    /// P(first-party code defines an `extends WebView` subclass | direct).
    pub direct_subclass_probability: f64,
    /// P(app exports a BROWSABLE deep-link activity).
    pub deep_link_probability: f64,
    /// P(the deep-link activity renders in a WebView | deep link).
    pub deep_link_webview_probability: f64,
    /// P(app ships dead code that calls WebView APIs).
    pub dead_code_probability: f64,
}

impl Default for EcosystemParams {
    fn default() -> Self {
        use SdkCategory::*;
        EcosystemParams {
            population: crate::ANALYZED_APPS,
            wv_pool_totals: vec![
                (Advertising, 39_163),
                (Engagement, 21_040),
                (DevelopmentTools, 7_020),
                (Payments, 3_212),
                (UserSupport, 1_692),
                (Social, 1_686),
                (Utility, 362),
                (Authentication, 342),
                (HybridFunctionality, 256),
                (Unknown, 1_600),
            ],
            ct_pool_totals: vec![
                (Social, 23_807),
                (Authentication, 7_802),
                (Advertising, 1_953),
                (Payments, 208),
                (DevelopmentTools, 172),
                (HybridFunctionality, 87),
                (Utility, 71),
                (Unknown, 350),
            ],
            obfuscated_pool_total: 900,
            ad_monetization_probability: 39_163.0 / 146_558.0,
            engagement_given_ads: 0.537,
            ct_affinity_given_ads: 0.62,
            ct_affinity_otherwise: 0.183,
            direct_webview_probability: 0.320,
            direct_ct_probability: 0.006,
            // Residuals of Table 7: (total − via-top-SDKs), corrected for
            // the SDK-overlap each method already has, over the direct-user
            // population. The removeJavascriptInterface entry is
            // conditional on addJavascriptInterface.
            direct_method_probabilities: [0.881, 0.35, 0.215, 0.20, 0.32, 0.158, 0.051],
            direct_subclass_probability: 0.35,
            deep_link_probability: 0.18,
            deep_link_webview_probability: 0.5,
            dead_code_probability: 0.15,
        }
    }
}

/// Figure 3 app-category effect: multiplier applied to a pool's adoption
/// probability for apps of `play_cat`.
pub fn category_multiplier(
    play_cat: PlayCategory,
    sdk_cat: SdkCategory,
    custom_tabs_pool: bool,
) -> f64 {
    use PlayCategory as P;
    use SdkCategory as S;
    match (play_cat, sdk_cat) {
        // Education apps: fewer ads (44% vs overall), more payments (~16.2%).
        (P::Education, S::Advertising) => 0.7,
        (P::Education, S::Payments) => 2.8,
        // Gaming apps frequently use CT-based social SDKs; ads everywhere.
        (c, S::Social) if c.is_game() && custom_tabs_pool => 2.2,
        (c, S::Advertising) if c.is_game() => 1.4,
        // Finance: payments-heavy, ad-light.
        (P::Finance, S::Payments) => 3.0,
        (P::Finance, S::Advertising) => 0.5,
        (P::Finance, S::Authentication) => 2.0,
        // Social & communication apps integrate social SDKs.
        (P::Social | P::Communication, S::Social) => 2.0,
        // News apps monetize with ads.
        (P::News, S::Advertising) => 1.3,
        _ => 1.0,
    }
}

/// Deterministic FNV-1a hash used to derive per-SDK RNG seeds from names.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The WebView API methods an SDK's bytecode calls.
///
/// Hand-assigned for SDKs the paper names or characterizes (e.g. all user
/// support SDKs call `loadDataWithBaseURL`; ad mediation SDKs expose JS
/// bridges); other SDKs get a deterministic per-category draw so Figure 4's
/// conditional method pattern emerges from the population.
pub fn sdk_wv_methods(sdk: &Sdk) -> MethodSet {
    if !sdk.mechanism.uses_webview() {
        return MethodSet::EMPTY;
    }
    let mut set = MethodSet::EMPTY;
    let named: Option<&[usize]> = match sdk.name.as_str() {
        "AppLovin" => Some(&[
            M_LOAD_URL,
            M_ADD_JS_IFACE,
            M_LOAD_DATA_BASE,
            M_EVAL_JS,
            M_REMOVE_JS_IFACE,
        ]),
        "ironSource" => Some(&[M_LOAD_URL, M_ADD_JS_IFACE, M_LOAD_DATA_BASE, M_EVAL_JS]),
        "ByteDance" => Some(&[M_LOAD_URL, M_ADD_JS_IFACE, M_EVAL_JS, M_REMOVE_JS_IFACE]),
        "InMobi" => Some(&[M_LOAD_URL, M_LOAD_DATA_BASE, M_ADD_JS_IFACE]),
        "Digital Turbine" => Some(&[M_LOAD_URL, M_LOAD_DATA_BASE]),
        "AdColony" => Some(&[M_LOAD_URL, M_LOAD_DATA_BASE, M_EVAL_JS]),
        "Open Measurement" => Some(&[M_EVAL_JS, M_ADD_JS_IFACE, M_LOAD_DATA_BASE]),
        "SafeDK" => Some(&[M_LOAD_URL, M_EVAL_JS]),
        "Flutter" => Some(&[M_LOAD_URL, M_ADD_JS_IFACE, M_EVAL_JS]),
        "InAppWebView" => Some(&[
            M_LOAD_URL,
            M_ADD_JS_IFACE,
            M_EVAL_JS,
            M_LOAD_DATA_BASE,
            M_LOAD_DATA,
            M_POST_URL,
        ]),
        // §4.1.5: every user-support SDK loads local data; fewer loadUrl.
        "Zendesk" | "Freshchat" => Some(&[M_LOAD_DATA_BASE, M_LOAD_URL, M_ADD_JS_IFACE]),
        "LicensesDialog" | "Intercom" => Some(&[M_LOAD_DATA_BASE]),
        // §4.1.4: payment checkouts; ~48.5% expose a bridge.
        "Stripe" => Some(&[M_LOAD_URL, M_ADD_JS_IFACE, M_EVAL_JS, M_POST_URL]),
        "RazorPay" => Some(&[M_LOAD_URL, M_ADD_JS_IFACE, M_POST_URL]),
        "PayTM" => Some(&[M_LOAD_URL, M_POST_URL]),
        "VK" | "Kakao" => Some(&[M_LOAD_URL, M_ADD_JS_IFACE]),
        "NAVER" => Some(&[M_LOAD_URL]),
        "Gigya" => Some(&[M_LOAD_URL, M_ADD_JS_IFACE, M_EVAL_JS]),
        _ => None,
    };
    if let Some(idx) = named {
        for &i in idx {
            set.insert(i);
        }
        return set;
    }

    // Per-category method probabilities (Figure 4's row patterns).
    let p: [f64; 7] = match sdk.category {
        SdkCategory::Advertising => [0.95, 0.45, 0.50, 0.35, 0.25, 0.02, 0.05],
        SdkCategory::Engagement => [0.30, 0.60, 0.30, 0.70, 0.30, 0.02, 0.00],
        SdkCategory::DevelopmentTools => [0.95, 0.60, 0.40, 0.50, 0.20, 0.10, 0.05],
        SdkCategory::Payments => [0.90, 0.485, 0.30, 0.30, 0.15, 0.05, 0.30],
        SdkCategory::UserSupport => [0.459, 0.30, 1.00, 0.25, 0.10, 0.05, 0.00],
        SdkCategory::Social => [0.95, 0.40, 0.20, 0.30, 0.15, 0.02, 0.02],
        SdkCategory::Utility => [0.90, 0.40, 0.40, 0.30, 0.10, 0.10, 0.02],
        SdkCategory::Authentication => [0.95, 0.35, 0.15, 0.30, 0.10, 0.02, 0.05],
        SdkCategory::HybridFunctionality => [0.95, 0.80, 0.60, 0.60, 0.30, 0.20, 0.05],
        SdkCategory::Unknown => [0.80, 0.40, 0.35, 0.30, 0.15, 0.10, 0.05],
    };
    let mut rng = StdRng::seed_from_u64(fnv1a(&sdk.name) ^ 0xD06F_00D5);
    for (i, &pi) in p.iter().enumerate() {
        if coin(&mut rng, pi) {
            set.insert(i);
        }
    }
    // removeJavascriptInterface implies addJavascriptInterface.
    if set.contains(M_REMOVE_JS_IFACE) {
        set.insert(M_ADD_JS_IFACE);
    }
    // An SDK with a WebView path must call at least one content method.
    if set.is_empty() {
        set.insert(M_LOAD_URL);
    }
    set
}

/// Whether an SDK's WebView path goes through its own `extends WebView`
/// subclass (≈40% of SDKs; ad SDKs customize heavily). Deterministic.
pub fn sdk_uses_subclass(sdk: &Sdk) -> bool {
    match sdk.name.as_str() {
        "AppLovin" | "ironSource" | "InMobi" | "InAppWebView" | "AdvancedWebView" => true,
        "Zendesk" | "Flutter" => false,
        _ => fnv1a(&sdk.name) % 100 < 40,
    }
}

/// Population mean of [`category_multiplier`] under the Play-category
/// weight distribution. Pool adoption probabilities are divided by this at
/// sample time so the multipliers redistribute usage *across* app
/// categories without inflating the population marginal.
pub fn mean_category_multiplier(sdk_cat: SdkCategory, custom_tabs_pool: bool) -> f64 {
    let total: f64 = PlayCategory::ALL.iter().map(|c| c.weight()).sum();
    PlayCategory::ALL
        .iter()
        .map(|c| c.weight() * category_multiplier(*c, sdk_cat, custom_tabs_pool))
        .sum::<f64>()
        / total
}

/// The ecosystem sampler. Owns the catalog-derived pools.
#[derive(Debug)]
pub struct Ecosystem {
    params: EcosystemParams,
    /// Category per catalog index (avoids borrowing the catalog at sample
    /// time).
    catalog_categories: Vec<SdkCategory>,
    /// (category, adoption probability, member sdk indices, member weights) —
    /// WebView pools.
    wv_pools: Vec<Pool>,
    /// Same for CT pools.
    ct_pools: Vec<Pool>,
    /// Obfuscated-package pool.
    obf_pool: Pool,
}

#[derive(Debug, Clone)]
struct Pool {
    category: SdkCategory,
    adoption: f64,
    /// Normalizer for the Figure 3 category multipliers (see
    /// [`mean_category_multiplier`]).
    multiplier_mean: f64,
    members: Vec<usize>,
    /// Target per-SDK inclusion probabilities (`sdk_apps / pool_total`).
    weights: Vec<f64>,
    /// Adjusted Bernoulli probabilities compensating for the
    /// force-at-least-one rule (see [`adjust_for_forcing`]).
    sample_weights: Vec<f64>,
}

/// The pool sampler forces at least one member when the Bernoulli draws
/// all miss, which inflates every member's marginal by
/// `P(none) * weight/total`. Solve for adjusted probabilities `w'` with
/// `w'_i + prod(1 - w'_j) * share_i = w_i` by damped fixed-point iteration
/// so the *observed* per-SDK marginals match the Table 4/5 targets.
/// Dominant pools (prod ~ 0) are unchanged; small pools (e.g. the three CT
/// ad SDKs) would otherwise run 25-80% hot.
fn adjust_for_forcing(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return weights.to_vec();
    }
    let shares: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let mut adj: Vec<f64> = weights.to_vec();
    for _ in 0..64 {
        let p_none: f64 = adj.iter().map(|w| (1.0 - w).max(0.0)).product();
        for i in 0..adj.len() {
            let target = (weights[i] - p_none * shares[i]).clamp(0.0, 1.0);
            // Damping keeps oscillating small pools convergent.
            adj[i] = 0.5 * adj[i] + 0.5 * target;
        }
    }
    adj
}

impl Ecosystem {
    /// Build pools from the catalog and calibration parameters.
    pub fn new(catalog: &SdkIndex, params: EcosystemParams) -> Self {
        let n = params.population as f64;
        let mut wv_pools = Vec::new();
        for &(cat, total) in &params.wv_pool_totals {
            let members: Vec<usize> = catalog
                .sdks()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.category == cat && !s.obfuscated && s.wv_apps > 0)
                .map(|(i, _)| i)
                .collect();
            let weights: Vec<f64> = members
                .iter()
                .map(|&i| catalog.sdks()[i].wv_apps as f64 / total as f64)
                .collect();
            wv_pools.push(Pool {
                category: cat,
                adoption: total as f64 / n,
                multiplier_mean: mean_category_multiplier(cat, false),
                members,
                sample_weights: adjust_for_forcing(&weights),
                weights,
            });
        }
        let mut ct_pools = Vec::new();
        for &(cat, total) in &params.ct_pool_totals {
            let members: Vec<usize> = catalog
                .sdks()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.category == cat && !s.obfuscated && s.ct_apps > 0)
                .map(|(i, _)| i)
                .collect();
            let weights: Vec<f64> = members
                .iter()
                .map(|&i| catalog.sdks()[i].ct_apps as f64 / total as f64)
                .collect();
            ct_pools.push(Pool {
                category: cat,
                adoption: total as f64 / n,
                multiplier_mean: mean_category_multiplier(cat, true),
                members,
                sample_weights: adjust_for_forcing(&weights),
                weights,
            });
        }
        let obf_members: Vec<usize> = catalog
            .sdks()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.obfuscated)
            .map(|(i, _)| i)
            .collect();
        let obf_total: f64 = obf_members
            .iter()
            .map(|&i| catalog.sdks()[i].wv_apps as f64)
            .sum();
        let obf_weights: Vec<f64> = obf_members
            .iter()
            .map(|&i| catalog.sdks()[i].wv_apps as f64 / obf_total)
            .collect();
        let obf_pool = Pool {
            category: SdkCategory::Unknown,
            adoption: params.obfuscated_pool_total as f64 / n,
            multiplier_mean: 1.0,
            sample_weights: adjust_for_forcing(&obf_weights),
            weights: obf_weights,
            members: obf_members,
        };
        Ecosystem {
            params,
            catalog_categories: catalog.sdks().iter().map(|s| s.category).collect(),
            wv_pools,
            ct_pools,
            obf_pool,
        }
    }

    /// Parameters in effect.
    pub fn params(&self) -> &EcosystemParams {
        &self.params
    }

    /// Sample the included members of one pool: each member by weight,
    /// forcing at least one so pool adoption translates into usage.
    fn sample_pool<R: Rng + ?Sized>(rng: &mut R, pool: &Pool) -> Vec<usize> {
        let mut chosen: Vec<usize> = pool
            .members
            .iter()
            .zip(&pool.sample_weights)
            .filter(|&(_, &w)| coin(rng, w.min(1.0)))
            .map(|(&i, _)| i)
            .collect();
        if chosen.is_empty() && !pool.members.is_empty() {
            chosen.push(pool.members[weighted_index(rng, &pool.weights)]);
        }
        chosen
    }

    /// Sample the full behaviour of one app given its metadata.
    pub fn sample_app<R: Rng + ?Sized>(&self, rng: &mut R, meta: AppMeta) -> AppSpec {
        let p = &self.params;
        let mut wv_sdks: Vec<usize> = Vec::new();
        // The latent monetization trait: drawn first so engagement riding
        // and CT affinity survive what-if transforms that empty the
        // advertising WebView pool.
        let ads_adopted = coin(rng, p.ad_monetization_probability);

        for pool in &self.wv_pools {
            let mult =
                category_multiplier(meta.category, pool.category, false) / pool.multiplier_mean;
            let adopted = match pool.category {
                // Engagement rides on ads rather than adopting independently.
                SdkCategory::Engagement => ads_adopted && coin(rng, p.engagement_given_ads),
                // The ad pool is the monetization trait expressed through
                // this mechanism: conditional on the latent draw.
                SdkCategory::Advertising => {
                    let conditional =
                        (pool.adoption * mult / p.ad_monetization_probability).min(1.0);
                    ads_adopted && coin(rng, conditional)
                }
                _ => coin(rng, (pool.adoption * mult).min(0.95)),
            };
            if adopted {
                wv_sdks.extend(Self::sample_pool(rng, pool));
            }
        }
        if coin(rng, self.obf_pool.adoption) {
            wv_sdks.extend(Self::sample_pool(rng, &self.obf_pool));
        }

        // CT pools sample within the latent affinity subset.
        let affinity = if ads_adopted {
            p.ct_affinity_given_ads
        } else {
            p.ct_affinity_otherwise
        };
        let marginal_affinity = 0.30; // implied population-level affinity
        let mut ct_sdks: Vec<usize> = Vec::new();
        if coin(rng, affinity) {
            for pool in &self.ct_pools {
                let mult =
                    category_multiplier(meta.category, pool.category, true) / pool.multiplier_mean;
                let conditional = (pool.adoption * mult / marginal_affinity).min(0.95);
                if coin(rng, conditional) {
                    ct_sdks.extend(Self::sample_pool(rng, pool));
                }
            }
        }

        // Merge into SdkUse entries (an SDK may appear in both pools).
        let mut sdks: Vec<SdkUse> = Vec::new();
        for idx in wv_sdks {
            match sdks.iter_mut().find(|u| u.sdk_idx == idx) {
                Some(u) => u.webview = true,
                None => sdks.push(SdkUse {
                    sdk_idx: idx,
                    webview: true,
                    custom_tabs: false,
                }),
            }
        }
        for idx in ct_sdks {
            match sdks.iter_mut().find(|u| u.sdk_idx == idx) {
                Some(u) => u.custom_tabs = true,
                None => sdks.push(SdkUse {
                    sdk_idx: idx,
                    webview: false,
                    custom_tabs: true,
                }),
            }
        }
        sdks.sort_by_key(|u| u.sdk_idx);

        // Per-(app, category) SDK method sets (see `category_method_probs`).
        let mut wv_categories: Vec<SdkCategory> = sdks
            .iter()
            .filter(|u| u.webview)
            .map(|u| self.catalog_categories[u.sdk_idx])
            .collect();
        wv_categories.sort();
        wv_categories.dedup();
        let sdk_category_methods: Vec<(SdkCategory, MethodSet)> = wv_categories
            .into_iter()
            .map(|c| (c, sample_category_methods(rng, c)))
            .collect();

        // First-party usage. The `removeJavascriptInterface` entry of the
        // probability table is conditional on `addJavascriptInterface`.
        let direct_wv = coin(rng, p.direct_webview_probability);
        let mut direct_wv_methods = MethodSet::EMPTY;
        if direct_wv {
            for (i, &pi) in p.direct_method_probabilities.iter().enumerate() {
                if i == M_REMOVE_JS_IFACE {
                    continue;
                }
                if coin(rng, pi) {
                    direct_wv_methods.insert(i);
                }
            }
            if direct_wv_methods.contains(M_ADD_JS_IFACE)
                && coin(rng, p.direct_method_probabilities[M_REMOVE_JS_IFACE])
            {
                direct_wv_methods.insert(M_REMOVE_JS_IFACE);
            }
            if direct_wv_methods.is_empty() {
                let i = weighted_index(rng, &p.direct_method_probabilities);
                direct_wv_methods.insert(i);
            }
        }
        let direct_wv_subclass = direct_wv && coin(rng, p.direct_subclass_probability);
        let direct_ct = coin(rng, p.direct_ct_probability);

        let deep_link = if coin(rng, p.deep_link_probability) {
            Some(DeepLinkSpec {
                host: format!("www.{}.example.com", meta.package.replace('.', "-")),
                uses_webview: coin(rng, p.deep_link_webview_probability),
            })
        } else {
            None
        };

        AppSpec {
            meta,
            sdks,
            sdk_category_methods,
            direct_wv_methods,
            direct_wv_subclass,
            direct_ct,
            deep_link,
            dead_code_webview: coin(rng, p.dead_code_probability),
            noise_classes: rng.gen_range(2..10),
        }
    }
}

/// The ten WebView-IAB apps of Table 8 plus Discord (the lone CT IAB),
/// with their download counts and UGC surfaces.
pub fn named_top_apps() -> Vec<TopAppSpec> {
    let named: &[(&str, &str, u64, UgcSurface, LinkBehavior)] = &[
        (
            "Facebook",
            "com.facebook.katana",
            8_400_000_000,
            UgcSurface::Post,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Instagram",
            "com.instagram.android",
            4_600_000_000,
            UgcSurface::DirectMessage,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Snapchat",
            "com.snapchat.android",
            2_340_000_000,
            UgcSurface::Story,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Twitter",
            "com.twitter.android",
            1_380_000_000,
            UgcSurface::DirectMessage,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "LinkedIn",
            "com.linkedin.android",
            1_200_000_000,
            UgcSurface::Post,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Pinterest",
            "com.pinterest",
            840_000_000,
            UgcSurface::DirectMessage,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Moj",
            "in.mohalla.video",
            289_000_000,
            UgcSurface::Profile,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Kik",
            "kik.android",
            176_500_000,
            UgcSurface::DirectMessage,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Reddit",
            "com.reddit.frontpage",
            124_000_000,
            UgcSurface::DirectMessage,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Chingari",
            "io.chingari.app",
            97_500_000,
            UgcSurface::Bio,
            LinkBehavior::OpensWebViewIab,
        ),
        (
            "Discord",
            "com.discord",
            500_000_000,
            UgcSurface::DirectMessage,
            LinkBehavior::OpensCustomTab,
        ),
    ];
    named
        .iter()
        .map(
            |&(name, package, downloads, ugc, link_behavior)| TopAppSpec {
                name: name.to_owned(),
                package: package.to_owned(),
                downloads,
                category: if name == "LinkedIn" {
                    PlayCategory::Business
                } else {
                    PlayCategory::Social
                },
                is_browser: false,
                gate: None,
                ugc: Some(ugc),
                link_behavior,
            },
        )
        .collect()
}

/// Generate the top-1K population of Table 6: the 11 named IAB apps, 27
/// browser-opening link apps, 9 browsers, 48 gated apps, and 905 apps
/// without user-generated links. Order is randomized (by `seed`) but the
/// composition is the planted ground truth the classifier must *discover*
/// by driving each app in the device simulator.
pub fn top_thousand(seed: u64) -> Vec<TopAppSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = named_top_apps();

    let filler_downloads =
        |rng: &mut StdRng| -> u64 { 10f64.powf(rng.gen_range(7.94..9.3)) as u64 };

    // 27 social/communication apps where links open in the browser.
    for i in 0..27 {
        let surface = match i % 3 {
            0 => UgcSurface::Post,
            1 => UgcSurface::DirectMessage,
            _ => UgcSurface::Bio,
        };
        out.push(TopAppSpec {
            name: format!("SocialApp{i:02}"),
            package: format!("com.socialnet{i:02}.app"),
            downloads: filler_downloads(&mut rng),
            category: if i % 2 == 0 {
                PlayCategory::Social
            } else {
                PlayCategory::Communication
            },
            is_browser: false,
            gate: None,
            ugc: Some(surface),
            link_behavior: LinkBehavior::OpensBrowser,
        });
    }

    // 9 browser apps.
    for i in 0..9 {
        out.push(TopAppSpec {
            name: format!("Browser{i}"),
            package: format!("com.browser{i}.android"),
            downloads: filler_downloads(&mut rng),
            category: PlayCategory::Communication,
            is_browser: true,
            gate: None,
            ugc: None,
            link_behavior: LinkBehavior::OpensBrowser,
        });
    }

    // 48 gated apps: 24 phone-number, 22 incompatible, 2 paid.
    let gates = std::iter::repeat_n(AccessGate::PhoneNumber, 24)
        .chain(std::iter::repeat_n(AccessGate::Incompatible, 22))
        .chain(std::iter::repeat_n(AccessGate::PaidAccount, 2));
    for (i, gate) in gates.enumerate() {
        out.push(TopAppSpec {
            name: format!("GatedApp{i:02}"),
            package: format!("com.gated{i:02}.app"),
            downloads: filler_downloads(&mut rng),
            category: PlayCategory::Communication,
            is_browser: false,
            gate: Some(gate),
            ugc: None,
            link_behavior: LinkBehavior::OpensBrowser,
        });
    }

    // 905 apps without user-generated content: "predominantly utility apps
    // such as media players, entertainment, stock, and gaming apps".
    let no_ugc_cats = [
        PlayCategory::Video,
        PlayCategory::Entertainment,
        PlayCategory::Finance,
        PlayCategory::Arcade,
        PlayCategory::Puzzle,
        PlayCategory::Tools,
        PlayCategory::Music,
        PlayCategory::Education,
    ];
    for i in 0..905 {
        out.push(TopAppSpec {
            name: format!("App{i:03}"),
            package: format!("com.popular{i:03}.app"),
            downloads: filler_downloads(&mut rng),
            category: no_ugc_cats[i % no_ugc_cats.len()],
            is_browser: false,
            gate: None,
            ugc: None,
            link_behavior: LinkBehavior::OpensBrowser,
        });
    }

    // Shuffle so position encodes nothing (Fisher–Yates).
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::playstore::{MetadataUniverse, UniverseConfig};

    fn catalog() -> SdkIndex {
        SdkIndex::paper()
    }

    fn sample_specs(n: u64, seed: u64) -> (SdkIndex, Vec<AppSpec>) {
        let cat = catalog();
        let eco = Ecosystem::new(&cat, EcosystemParams::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let metas: Vec<AppMeta> = MetadataUniverse::new(UniverseConfig {
            total_apps: n * 20,
            ..UniverseConfig::default()
        })
        .filter(|m| crate::playstore::FilterSpec::default().accepts(m))
        .take(n as usize)
        .collect();
        let specs = metas
            .into_iter()
            .map(|m| eco.sample_app(&mut rng, m))
            .collect();
        (cat, specs)
    }

    #[test]
    fn method_set_ops() {
        let mut s = MethodSet::EMPTY;
        assert!(s.is_empty());
        s.insert(M_LOAD_URL);
        s.insert(M_EVAL_JS);
        assert!(s.contains(M_LOAD_URL));
        assert!(!s.contains(M_POST_URL));
        assert_eq!(s.len(), 2);
        let names: Vec<_> = s.names().collect();
        assert_eq!(names, ["loadUrl", "evaluateJavascript"]);
    }

    #[test]
    fn sdk_methods_deterministic() {
        let cat = catalog();
        for sdk in cat.sdks() {
            assert_eq!(sdk_wv_methods(sdk), sdk_wv_methods(sdk), "{}", sdk.name);
            if sdk.mechanism.uses_webview() {
                assert!(!sdk_wv_methods(sdk).is_empty(), "{}", sdk.name);
            } else {
                assert!(sdk_wv_methods(sdk).is_empty(), "{}", sdk.name);
            }
        }
    }

    #[test]
    fn user_support_sdks_all_load_local_data() {
        // §4.1.5: "all apps using WebViews for user support load local data
        // into the WebView using the loadDataWithBaseURL method".
        let cat = catalog();
        for sdk in cat
            .sdks()
            .iter()
            .filter(|s| s.category == SdkCategory::UserSupport)
        {
            assert!(
                sdk_wv_methods(sdk).contains(M_LOAD_DATA_BASE),
                "{}",
                sdk.name
            );
        }
    }

    #[test]
    fn population_shares_match_paper_shape() {
        let (cat, specs) = sample_specs(6_000, 42);
        let n = specs.len() as f64;
        let wv = specs.iter().filter(|s| s.uses_webview(&cat)).count() as f64 / n;
        let ct = specs.iter().filter(|s| s.uses_custom_tabs()).count() as f64 / n;
        let both = specs
            .iter()
            .filter(|s| s.uses_webview(&cat) && s.uses_custom_tabs())
            .count() as f64
            / n;
        // Paper: 55.7% / ~20% / ~15%. Allow generous sampling tolerance.
        assert!((wv - 0.557).abs() < 0.04, "webview share {wv}");
        assert!((ct - 0.199).abs() < 0.04, "ct share {ct}");
        assert!((both - 0.15).abs() < 0.04, "both share {both}");
        // Orderings that define the paper's story.
        assert!(wv > ct && ct > both);
    }

    #[test]
    fn advertising_is_dominant_webview_use_case() {
        let (cat, specs) = sample_specs(4_000, 7);
        let ad_apps = specs
            .iter()
            .filter(|s| {
                s.sdks.iter().any(|u| {
                    u.webview && cat.sdks()[u.sdk_idx].category == SdkCategory::Advertising
                })
            })
            .count() as f64;
        let share = ad_apps / specs.len() as f64;
        // 39,163 / 146,558 ≈ 26.7%. The realized share rides on the
        // metadata universe's category mix, which is a deterministic
        // function of the RNG stream (vendor/README.md) — so the band is
        // wider than per-app binomial noise alone would suggest.
        assert!((share - 0.267).abs() < 0.06, "ad share {share}");
    }

    #[test]
    fn facebook_dominates_ct_social() {
        let (cat, specs) = sample_specs(4_000, 9);
        let fb_idx = cat
            .sdks()
            .iter()
            .position(|s| s.name == "Facebook")
            .unwrap();
        let soc_ct = specs
            .iter()
            .filter(|s| {
                s.sdks
                    .iter()
                    .any(|u| u.custom_tabs && cat.sdks()[u.sdk_idx].category == SdkCategory::Social)
            })
            .count() as f64;
        let fb = specs
            .iter()
            .filter(|s| s.sdks.iter().any(|u| u.custom_tabs && u.sdk_idx == fb_idx))
            .count() as f64;
        assert!(fb / soc_ct > 0.9, "facebook share {}", fb / soc_ct);
    }

    #[test]
    fn sampling_is_deterministic() {
        let (_, a) = sample_specs(200, 5);
        let (_, b) = sample_specs(200, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn sdk_uses_are_unique_and_sorted() {
        let (_, specs) = sample_specs(500, 3);
        for s in &specs {
            for w in s.sdks.windows(2) {
                assert!(w[0].sdk_idx < w[1].sdk_idx);
            }
            for u in &s.sdks {
                assert!(u.webview || u.custom_tabs);
            }
        }
    }

    #[test]
    fn top_thousand_composition_matches_table6_ground_truth() {
        let apps = top_thousand(99);
        assert_eq!(apps.len(), 1_000);
        assert_eq!(apps.iter().filter(|a| a.ugc.is_some()).count(), 38);
        assert_eq!(apps.iter().filter(|a| a.is_browser).count(), 9);
        assert_eq!(apps.iter().filter(|a| a.gate.is_some()).count(), 48);
        assert_eq!(
            apps.iter()
                .filter(|a| a.link_behavior == LinkBehavior::OpensWebViewIab && a.ugc.is_some())
                .count(),
            10
        );
        assert_eq!(
            apps.iter()
                .filter(|a| a.link_behavior == LinkBehavior::OpensCustomTab)
                .count(),
            1
        );
        // Everyone in the top 1K has at least ~86M downloads (paper §5).
        assert!(apps.iter().all(|a| a.downloads >= 86_000_000));
    }

    #[test]
    fn named_apps_have_paper_downloads() {
        let named = named_top_apps();
        let get = |n: &str| named.iter().find(|a| a.name == n).unwrap().downloads;
        assert_eq!(get("Facebook"), 8_400_000_000);
        assert_eq!(get("Kik"), 176_500_000);
        assert_eq!(get("Chingari"), 97_500_000);
    }

    #[test]
    fn category_multipliers_shape() {
        assert!(
            category_multiplier(PlayCategory::Education, SdkCategory::Advertising, false) < 1.0
        );
        assert!(category_multiplier(PlayCategory::Education, SdkCategory::Payments, false) > 1.0);
        assert!(category_multiplier(PlayCategory::Puzzle, SdkCategory::Social, true) > 1.0);
        assert_eq!(
            category_multiplier(PlayCategory::Tools, SdkCategory::Social, true),
            1.0
        );
    }
}

impl EcosystemParams {
    /// What-if transform for §5's recommendations: SDKs of `categories`
    /// migrate `fraction` of their WebView-path adoption to Custom Tabs
    /// (as Facebook and NAVER already did, and as the paper urges payment
    /// and identity SDKs to do; Google's Ad SDK began this in March 2024).
    ///
    /// Only the *adoption mass* moves between the per-category pools;
    /// within-pool SDK attribution keeps the catalog's weights. Shares of
    /// apps using WebViews / CTs / both are the meaningful outputs.
    pub fn simulate_ct_migration(mut self, categories: &[SdkCategory], fraction: f64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        for (cat, total) in &mut self.wv_pool_totals {
            if !categories.contains(cat) {
                continue;
            }
            let moved = (*total as f64 * fraction) as u64;
            *total -= moved;
            match self.ct_pool_totals.iter_mut().find(|(c, _)| c == cat) {
                Some((_, ct_total)) => *ct_total += moved,
                None => self.ct_pool_totals.push((*cat, moved)),
            }
        }
        // Remove emptied pools so sampling skips them cleanly.
        self.wv_pool_totals.retain(|(_, t)| *t > 0);
        self
    }
}

#[cfg(test)]
mod migration_tests {
    use super::*;

    #[test]
    fn migration_moves_mass_between_pools() {
        let base = EcosystemParams::default();
        let migrated = base
            .clone()
            .simulate_ct_migration(&[SdkCategory::Advertising], 1.0);
        // Advertising WebView pool is gone…
        assert!(!migrated
            .wv_pool_totals
            .iter()
            .any(|(c, _)| *c == SdkCategory::Advertising));
        // …and its mass landed on the CT side.
        let base_ct = base
            .ct_pool_totals
            .iter()
            .find(|(c, _)| *c == SdkCategory::Advertising)
            .unwrap()
            .1;
        let new_ct = migrated
            .ct_pool_totals
            .iter()
            .find(|(c, _)| *c == SdkCategory::Advertising)
            .unwrap()
            .1;
        assert_eq!(new_ct, base_ct + 39_163);
    }

    #[test]
    fn partial_migration_keeps_both_pools() {
        let migrated =
            EcosystemParams::default().simulate_ct_migration(&[SdkCategory::Payments], 0.5);
        let wv = migrated
            .wv_pool_totals
            .iter()
            .find(|(c, _)| *c == SdkCategory::Payments)
            .unwrap()
            .1;
        assert_eq!(wv, 3_212 - 1_606);
    }

    #[test]
    fn migrated_ecosystem_shifts_shares() {
        let catalog = SdkIndex::paper();
        let base_params = EcosystemParams::default();
        let migrated_params = base_params
            .clone()
            .simulate_ct_migration(&[SdkCategory::Advertising, SdkCategory::Payments], 1.0);
        let sample = |params: EcosystemParams| {
            let eco = Ecosystem::new(&catalog, params);
            let mut rng = StdRng::seed_from_u64(5);
            let metas: Vec<AppMeta> =
                crate::playstore::MetadataUniverse::new(crate::playstore::UniverseConfig {
                    total_apps: 60_000,
                    ..Default::default()
                })
                .filter(|m| crate::playstore::FilterSpec::default().accepts(m))
                .take(2_500)
                .collect();
            let specs: Vec<AppSpec> = metas
                .into_iter()
                .map(|m| eco.sample_app(&mut rng, m))
                .collect();
            let n = specs.len() as f64;
            (
                specs.iter().filter(|s| s.uses_webview(&catalog)).count() as f64 / n,
                specs.iter().filter(|s| s.uses_custom_tabs()).count() as f64 / n,
            )
        };
        let (base_wv, base_ct) = sample(base_params);
        let (mig_wv, mig_ct) = sample(migrated_params);
        assert!(mig_wv < base_wv - 0.05, "wv {base_wv} -> {mig_wv}");
        assert!(mig_ct > base_ct + 0.05, "ct {base_ct} -> {mig_ct}");
    }
}
