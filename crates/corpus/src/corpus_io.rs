//! Corpus disk I/O: materialize a generated corpus as files, the way a
//! downloaded AndroZoo slice looks on disk, and read one back.
//!
//! Layout:
//!
//! ```text
//! <dir>/metadata.csv          # package,downloads,category,last_update_day
//! <dir>/apks/<package>.sapk   # container bytes (possibly corrupted)
//! ```
//!
//! The reader consumes only the files — ground truth is *not* persisted —
//! so a directory written here can drive the pipeline exactly like a real
//! downloaded corpus, or feed external tooling.
//!
//! Two durability properties mirror how the paper's crawler had to behave
//! against a real mirror:
//!
//! * **Writes are atomic.** Every file goes to a `.tmp` sibling first and
//!   is renamed into place, so a crash mid-write leaves stale temp files
//!   (which the reader ignores) rather than a truncated `metadata.csv` or
//!   a half-written `.sapk` that would be silently miscounted as a broken
//!   container.
//! * **Reads are fault-isolated.** One malformed metadata row or one
//!   missing `.sapk` no longer aborts the whole ingest: the entry is
//!   skipped and counted under a taxonomy label in [`IngestStats`], the
//!   same philosophy as the pipeline's per-app `AnalysisPanic` isolation.
//!   Only a missing/unreadable `metadata.csv` itself is a hard error.

use crate::generator::GeneratedApp;
use crate::playstore::{AppMeta, PlayCategory};
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Write `bytes` to `path` atomically: write a `.tmp` sibling, then rename
/// it into place. A crash between the two steps leaves only the temp file,
/// never a truncated target.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Write `apps` to `dir` (created if missing). Every file is written
/// atomically via [`write_atomic`].
pub fn write_corpus(dir: &Path, apps: &[GeneratedApp]) -> io::Result<()> {
    let apk_dir = dir.join("apks");
    fs::create_dir_all(&apk_dir)?;
    let mut csv = String::from("package,downloads,category,last_update_day\n");
    for app in apps {
        let m = &app.spec.meta;
        csv.push_str(&format!(
            "{},{},{},{}\n",
            m.package,
            m.downloads,
            m.category.label(),
            m.last_update_day
        ));
        write_atomic(&apk_dir.join(format!("{}.sapk", m.package)), &app.bytes)?;
    }
    // The CSV lands last, so a crash mid-corpus leaves no metadata claiming
    // containers that were never written.
    write_atomic(&dir.join("metadata.csv"), csv.as_bytes())
}

/// A corpus entry read back from disk: metadata plus raw bytes.
#[derive(Debug, Clone)]
pub struct DiskApp {
    /// Play metadata parsed from the CSV.
    pub meta: AppMeta,
    /// Container bytes.
    pub bytes: Vec<u8>,
}

/// Counters from a fault-isolated corpus ingest.
///
/// `rows == read + skipped`; `skip_kinds` breaks the skips down by stable
/// taxonomy label, mirroring `PipelineStats::failure_kinds`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Metadata rows seen (excluding the header and blank lines).
    pub rows: usize,
    /// Entries successfully read (metadata parsed and `.sapk` loaded).
    pub read: usize,
    /// Entries skipped because of a per-entry failure.
    pub skipped: usize,
    /// Skip taxonomy: label → count. Labels are stable strings:
    /// `bad-field-count`, `bad-downloads`, `bad-category`,
    /// `bad-update-day`, `missing-apk`, `unreadable-apk`.
    pub skip_kinds: BTreeMap<&'static str, usize>,
}

impl IngestStats {
    fn skip(&mut self, kind: &'static str) {
        self.skipped += 1;
        *self.skip_kinds.entry(kind).or_insert(0) += 1;
    }
}

/// Result of [`read_corpus_counted`]: the readable entries plus counters
/// describing what was skipped and why.
#[derive(Debug, Clone)]
pub struct CorpusRead {
    /// Entries that survived ingest, in metadata order.
    pub apps: Vec<DiskApp>,
    /// Per-entry failure accounting.
    pub stats: IngestStats,
}

/// Read a corpus directory written by [`write_corpus`], skipping and
/// counting malformed entries instead of aborting.
///
/// A missing or unreadable `metadata.csv` is still a hard error — there is
/// no corpus without it — but every per-entry failure (short row, bad
/// number, unknown category, missing or unreadable container file) only
/// increments the matching [`IngestStats`] counter.
pub fn read_corpus_counted(dir: &Path) -> io::Result<CorpusRead> {
    let csv = fs::read_to_string(dir.join("metadata.csv"))?;
    let apk_dir = dir.join("apks");
    let mut apps = Vec::new();
    let mut stats = IngestStats::default();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        stats.rows += 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            stats.skip("bad-field-count");
            continue;
        }
        let downloads: u64 = match fields[1].parse() {
            Ok(d) => d,
            Err(_) => {
                stats.skip("bad-downloads");
                continue;
            }
        };
        let category = match PlayCategory::from_label(fields[2]) {
            Some(c) => c,
            None => {
                stats.skip("bad-category");
                continue;
            }
        };
        let last_update_day: u32 = match fields[3].parse() {
            Ok(d) => d,
            Err(_) => {
                stats.skip("bad-update-day");
                continue;
            }
        };
        let meta = AppMeta {
            package: fields[0].to_owned(),
            on_play_store: true,
            downloads,
            category,
            last_update_day,
        };
        let bytes = match fs::read(apk_dir.join(format!("{}.sapk", meta.package))) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                stats.skip("missing-apk");
                continue;
            }
            Err(_) => {
                stats.skip("unreadable-apk");
                continue;
            }
        };
        stats.read += 1;
        apps.push(DiskApp { meta, bytes });
    }
    Ok(CorpusRead { apps, stats })
}

/// Read a corpus directory written by [`write_corpus`].
///
/// Thin wrapper over [`read_corpus_counted`] for callers that only want
/// the readable entries; skipped entries are silently dropped, not errors.
pub fn read_corpus(dir: &Path) -> io::Result<Vec<DiskApp>> {
    Ok(read_corpus_counted(dir)?.apps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, Generator};
    use wla_sdk_index::SdkIndex;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wla-corpus-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_through_disk() {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 4_000,
            seed: 77,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, cfg).generate();
        let dir = temp_dir("roundtrip");
        write_corpus(&dir, &apps).unwrap();

        let back = read_corpus_counted(&dir).unwrap();
        assert_eq!(back.apps.len(), apps.len());
        assert_eq!(back.stats.rows, apps.len());
        assert_eq!(back.stats.read, apps.len());
        assert_eq!(back.stats.skipped, 0);
        for (orig, disk) in apps.iter().zip(&back.apps) {
            assert_eq!(orig.spec.meta, disk.meta);
            assert_eq!(orig.bytes, disk.bytes);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_corpus_drives_the_pipeline() {
        // The on-disk form carries everything the analysis needs.
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 8_000,
            seed: 5,
            corrupt_fraction: 0.0,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, cfg).generate();
        let dir = temp_dir("pipeline");
        write_corpus(&dir, &apps).unwrap();
        let disk = read_corpus(&dir).unwrap();
        for app in &disk {
            // Container decodes — full analysis is exercised elsewhere;
            // here the claim is about the persisted bytes.
            assert!(
                wla_apk::Sapk::decode(&app.bytes).is_ok(),
                "{}",
                app.meta.package
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_leave_no_temp_files() {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 8_000,
            seed: 11,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, cfg).generate();
        let dir = temp_dir("notmp");
        write_corpus(&dir, &apps).unwrap();
        let mut names: Vec<String> = fs::read_dir(dir.join("apks"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.extend(
            fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned()),
        );
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "temp files survived the write: {names:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_rows_are_counted_not_fatal() {
        let dir = temp_dir("badrows");
        fs::create_dir_all(dir.join("apks")).unwrap();
        fs::write(dir.join("apks").join("com.good.app.sapk"), b"payload").unwrap();
        fs::write(
            dir.join("metadata.csv"),
            "package,downloads,category,last_update_day\n\
             only,three,fields\n\
             com.bad.dl,not-a-number,Tools,500\n\
             com.bad.cat,100000,NotACategory,500\n\
             com.bad.day,100000,Tools,eventually\n\
             com.good.app,100000,Tools,500\n",
        )
        .unwrap();
        let read = read_corpus_counted(&dir).unwrap();
        assert_eq!(read.apps.len(), 1);
        assert_eq!(read.apps[0].meta.package, "com.good.app");
        assert_eq!(read.stats.rows, 5);
        assert_eq!(read.stats.read, 1);
        assert_eq!(read.stats.skipped, 4);
        assert_eq!(read.stats.skip_kinds["bad-field-count"], 1);
        assert_eq!(read.stats.skip_kinds["bad-downloads"], 1);
        assert_eq!(read.stats.skip_kinds["bad-category"], 1);
        assert_eq!(read.stats.skip_kinds["bad-update-day"], 1);
        assert_eq!(
            read.stats.skip_kinds.values().sum::<usize>(),
            read.stats.skipped
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_apk_is_counted_not_fatal() {
        let dir = temp_dir("missing");
        fs::create_dir_all(dir.join("apks")).unwrap();
        fs::write(dir.join("apks").join("com.here.sapk"), b"bytes").unwrap();
        fs::write(
            dir.join("metadata.csv"),
            "package,downloads,category,last_update_day\n\
             com.gone,100000,Tools,500\n\
             com.here,100000,Tools,500\n",
        )
        .unwrap();
        let read = read_corpus_counted(&dir).unwrap();
        assert_eq!(read.apps.len(), 1);
        assert_eq!(read.apps[0].meta.package, "com.here");
        assert_eq!(read.stats.skip_kinds["missing-apk"], 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_metadata_csv_is_still_fatal() {
        let dir = temp_dir("nocsv");
        fs::create_dir_all(dir.join("apks")).unwrap();
        assert!(read_corpus_counted(&dir).is_err());
        assert!(read_corpus(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_write_is_detected_not_miscounted() {
        // Simulate a writer that crashed between the temp write and the
        // rename: the `.tmp` leftover must be invisible to ingest (the
        // entry counts as missing, not as a silently truncated container).
        let dir = temp_dir("interrupted");
        fs::create_dir_all(dir.join("apks")).unwrap();
        fs::write(dir.join("apks").join("com.ok.sapk"), b"full container").unwrap();
        // Crashed mid-write: only a truncated temp file exists.
        fs::write(dir.join("apks").join("com.crashed.sapk.tmp"), b"half a co").unwrap();
        fs::write(
            dir.join("metadata.csv"),
            "package,downloads,category,last_update_day\n\
             com.ok,100000,Tools,500\n\
             com.crashed,100000,Tools,500\n",
        )
        .unwrap();
        let read = read_corpus_counted(&dir).unwrap();
        // The truncated temp bytes were NOT returned as com.crashed's
        // container — that would miscount it as a broken APK downstream.
        assert_eq!(read.apps.len(), 1);
        assert_eq!(read.apps[0].meta.package, "com.ok");
        assert_eq!(read.apps[0].bytes, b"full container");
        assert_eq!(read.stats.skipped, 1);
        assert_eq!(read.stats.skip_kinds["missing-apk"], 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
