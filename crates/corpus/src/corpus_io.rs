//! Corpus disk I/O: materialize a generated corpus as files, the way a
//! downloaded AndroZoo slice looks on disk, and read one back.
//!
//! Layout:
//!
//! ```text
//! <dir>/metadata.csv          # package,downloads,category,last_update_day
//! <dir>/apks/<package>.sapk   # container bytes (possibly corrupted)
//! ```
//!
//! The reader consumes only the files — ground truth is *not* persisted —
//! so a directory written here can drive the pipeline exactly like a real
//! downloaded corpus, or feed external tooling.

use crate::generator::GeneratedApp;
use crate::playstore::{AppMeta, PlayCategory};
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Write `apps` to `dir` (created if missing).
pub fn write_corpus(dir: &Path, apps: &[GeneratedApp]) -> io::Result<()> {
    let apk_dir = dir.join("apks");
    fs::create_dir_all(&apk_dir)?;
    let mut csv = fs::File::create(dir.join("metadata.csv"))?;
    writeln!(csv, "package,downloads,category,last_update_day")?;
    for app in apps {
        let m = &app.spec.meta;
        writeln!(
            csv,
            "{},{},{},{}",
            m.package,
            m.downloads,
            m.category.label(),
            m.last_update_day
        )?;
        fs::write(apk_dir.join(format!("{}.sapk", m.package)), &app.bytes)?;
    }
    Ok(())
}

/// A corpus entry read back from disk: metadata plus raw bytes.
#[derive(Debug, Clone)]
pub struct DiskApp {
    /// Play metadata parsed from the CSV.
    pub meta: AppMeta,
    /// Container bytes.
    pub bytes: Vec<u8>,
}

fn category_from_label(label: &str) -> Option<PlayCategory> {
    PlayCategory::ALL
        .iter()
        .copied()
        .find(|c| c.label() == label)
}

/// Read a corpus directory written by [`write_corpus`].
pub fn read_corpus(dir: &Path) -> io::Result<Vec<DiskApp>> {
    let csv = fs::read_to_string(dir.join("metadata.csv"))?;
    let apk_dir = dir.join("apks");
    let mut out = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("metadata.csv line {}: expected 4 fields", lineno + 1),
            ));
        }
        let parse_err =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}"));
        let meta = AppMeta {
            package: fields[0].to_owned(),
            on_play_store: true,
            downloads: fields[1].parse().map_err(|_| parse_err("downloads"))?,
            category: category_from_label(fields[2]).ok_or_else(|| parse_err("category"))?,
            last_update_day: fields[3]
                .parse()
                .map_err(|_| parse_err("last_update_day"))?,
        };
        let bytes = fs::read(apk_dir.join(format!("{}.sapk", meta.package)))?;
        out.push(DiskApp { meta, bytes });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, Generator};
    use wla_sdk_index::SdkIndex;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wla-corpus-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_through_disk() {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 4_000,
            seed: 77,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, cfg).generate();
        let dir = temp_dir("roundtrip");
        write_corpus(&dir, &apps).unwrap();

        let back = read_corpus(&dir).unwrap();
        assert_eq!(back.len(), apps.len());
        for (orig, disk) in apps.iter().zip(&back) {
            assert_eq!(orig.spec.meta, disk.meta);
            assert_eq!(orig.bytes, disk.bytes);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_corpus_drives_the_pipeline() {
        // The on-disk form carries everything the analysis needs.
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 8_000,
            seed: 5,
            corrupt_fraction: 0.0,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, cfg).generate();
        let dir = temp_dir("pipeline");
        write_corpus(&dir, &apps).unwrap();
        let disk = read_corpus(&dir).unwrap();
        for app in &disk {
            // Container decodes — full analysis is exercised elsewhere;
            // here the claim is about the persisted bytes.
            assert!(
                wla_apk::Sapk::decode(&app.bytes).is_ok(),
                "{}",
                app.meta.package
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_csv_rejected() {
        let dir = temp_dir("badcsv");
        fs::create_dir_all(dir.join("apks")).unwrap();
        fs::write(dir.join("metadata.csv"), "header\nonly,three,fields\n").unwrap();
        assert!(read_corpus(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_apk_file_rejected() {
        let dir = temp_dir("missing");
        fs::create_dir_all(dir.join("apks")).unwrap();
        fs::write(
            dir.join("metadata.csv"),
            "package,downloads,category,last_update_day\ncom.x.y,100000,Tools,500\n",
        )
        .unwrap();
        assert!(read_corpus(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
