//! # wla-intern — the interned-symbol IR shared by the static pipeline
//!
//! At corpus scale the static path (§3.1) is dominated by string churn:
//! every call site used to materialize owned `String`s for method names,
//! caller classes, and dotted packages, and every aggregation pass hashed
//! those strings again. This crate replaces them with `u32` handles:
//!
//! * [`Symbol`] — a handle into an interner; [`PkgId`] — a symbol known to
//!   be a dotted Java package;
//! * [`LocalInterner`] — the unsynchronized per-worker interner the
//!   analysis stages write into (hot path, no locks);
//! * [`Interner`] — the sharded, read-mostly global table per-worker
//!   lexicons merge into at pipeline join;
//! * [`SymbolTable`] — an immutable snapshot of the global table for
//!   display-time resolution at the report boundary;
//! * [`SymbolRemap`] — the local→global rewrite cache used during the
//!   merge, filled in input order (lazily, or batch-resolved via
//!   [`Interner::intern_ordered`]) so global symbol ids are deterministic
//!   regardless of worker count or scheduling;
//! * [`FxBuildHasher`] / [`U32BuildHasher`] — the multiplicative hashers
//!   the hot maps use (strings hashed once at intern time, `u32` keys
//!   everywhere after).
//!
//! Symbol lifecycle: decode → per-worker intern → merge (remap) →
//! report-time resolve. A `Symbol` is only meaningful relative to the
//! interner that produced it; the pipeline upholds this by remapping every
//! analysis into the global namespace before results leave the join.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An interned string handle. `Copy`, 4 bytes, hashes in one multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw table index (shard-encoded for global symbols).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A [`Symbol`] known to resolve to a dotted Java package name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PkgId(pub Symbol);

impl PkgId {
    /// The underlying symbol.
    pub fn symbol(self) -> Symbol {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Hashers
// ---------------------------------------------------------------------------

/// FxHash-style multiplicative hasher (the rustc one): fast on short
/// segment/package strings, vendored here because the workspace builds
/// hermetically offline.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                word |= (b as u64) << (8 * i);
            }
            self.add(word);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] — use for string-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Single-multiply hasher for `u32`-sized keys ([`Symbol`], [`PkgId`],
/// catalog indices): the key is already unique, so one Fibonacci multiply
/// spreads it across buckets.
#[derive(Default, Clone)]
pub struct U32Hasher {
    hash: u64,
}

impl Hasher for U32Hasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u32 writes (e.g. derived Hash on wrappers).
        for &b in bytes {
            self.hash = (self.hash ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.hash = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        // Pointer-sized keys (e.g. `Arc` identities) get the same
        // single-multiply treatment; the multiplier mixes the zeroed
        // alignment bits into the bucket index.
        self.hash = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`U32Hasher`] — use for symbol-keyed hot maps.
pub type U32BuildHasher = BuildHasherDefault<U32Hasher>;

/// String-keyed map with the fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

// ---------------------------------------------------------------------------
// LocalInterner
// ---------------------------------------------------------------------------

/// Unsynchronized interner owned by one pipeline worker.
///
/// Symbols are dense indices into the local table (`0..len`). Storage is
/// `Arc<str>` so [`resolve_arc`](Self::resolve_arc) can hand out a cheap
/// clone that outlives any later mutation, and so the global merge can
/// move the allocation instead of copying bytes.
#[derive(Debug, Default, Clone)]
pub struct LocalInterner {
    map: FxHashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
    bytes: usize,
    hits: u64,
    misses: u64,
}

impl LocalInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol (stable for the interner's life).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&idx) = self.map.get(s) {
            self.hits += 1;
            return Symbol(idx);
        }
        self.misses += 1;
        let idx = self.strings.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.bytes += s.len();
        self.strings.push(Arc::clone(&arc));
        self.map.insert(arc, idx);
        Symbol(idx)
    }

    /// Non-inserting lookup: the symbol of `s` if already interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).map(|&idx| Symbol(idx))
    }

    /// Resolve a symbol produced by this interner.
    pub fn resolve(&self, s: Symbol) -> &str {
        &self.strings[s.0 as usize]
    }

    /// Resolve to a shared allocation (cheap `Arc` clone, no copy).
    pub fn resolve_arc(&self, s: Symbol) -> Arc<str> {
        Arc::clone(&self.strings[s.0 as usize])
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total bytes of distinct interned strings.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// `intern` calls that found the string already present.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// `intern` calls that inserted a new string.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

// ---------------------------------------------------------------------------
// Global sharded Interner
// ---------------------------------------------------------------------------

const SHARD_BITS: u32 = 4;
/// Number of shards in the global [`Interner`].
pub const SHARDS: usize = 1 << SHARD_BITS;
const SHARD_MASK: u32 = SHARDS as u32 - 1;

#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
    bytes: usize,
}

/// Thread-safe sharded interner: the global table per-worker lexicons
/// merge into at pipeline join.
///
/// A global symbol encodes its shard in the low [`SHARD_BITS`] bits
/// (`(idx << SHARD_BITS) | shard`), so resolution never searches. Lookup
/// is read-mostly: a read lock probes the shard map; only a genuine miss
/// upgrades to the write lock (with a double-check, since another thread
/// may have raced the insert).
#[derive(Debug, Default)]
pub struct Interner {
    shards: [RwLock<Shard>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

fn shard_of(s: &str) -> usize {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    (h.finish() as u32 & SHARD_MASK) as usize
}

/// Batch size below which [`Interner::intern_ordered`] stays serial even
/// on wide hosts — the scatter/gather overhead only pays off for big
/// merges.
const ORDERED_PARALLEL_MIN: usize = 4096;

impl Interner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table pre-sized for roughly `total` distinct strings.
    ///
    /// The pipeline join knows an upper bound up front (the summed sizes
    /// of the worker lexicons), so the shard maps can reserve once instead
    /// of rehashing as the merge inserts. The fx-hash shard split is not
    /// perfectly even, so each shard reserves a quarter more than the even
    /// share.
    pub fn with_capacity(total: usize) -> Self {
        let per_shard = total.div_ceil(SHARDS) + total.div_ceil(SHARDS * 4);
        Interner {
            shards: std::array::from_fn(|_| {
                RwLock::new(Shard {
                    map: FxHashMap::with_capacity_and_hasher(per_shard, FxBuildHasher::default()),
                    strings: Vec::with_capacity(per_shard),
                    bytes: 0,
                })
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Intern `s` into the global table.
    pub fn intern(&self, s: &str) -> Symbol {
        let shard = shard_of(s);
        {
            let guard = self.shards[shard].read();
            if let Some(&idx) = guard.map.get(s) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Symbol((idx << SHARD_BITS) | shard as u32);
            }
        }
        let mut guard = self.shards[shard].write();
        if let Some(&idx) = guard.map.get(s) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Symbol((idx << SHARD_BITS) | shard as u32);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = guard.strings.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        guard.bytes += s.len();
        guard.strings.push(Arc::clone(&arc));
        guard.map.insert(arc, idx);
        Symbol((idx << SHARD_BITS) | shard as u32)
    }

    /// Intern an already-shared allocation (no byte copy on miss).
    pub fn intern_arc(&self, s: Arc<str>) -> Symbol {
        let shard = shard_of(&s);
        {
            let guard = self.shards[shard].read();
            if let Some(&idx) = guard.map.get(&*s) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Symbol((idx << SHARD_BITS) | shard as u32);
            }
        }
        let mut guard = self.shards[shard].write();
        if let Some(&idx) = guard.map.get(&*s) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Symbol((idx << SHARD_BITS) | shard as u32);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = guard.strings.len() as u32;
        guard.bytes += s.len();
        guard.strings.push(Arc::clone(&s));
        guard.map.insert(s, idx);
        Symbol((idx << SHARD_BITS) | shard as u32)
    }

    /// Intern a batch of strings, assigning exactly the ids a serial
    /// `intern_arc` loop over `items` would — a global id depends only on
    /// the order of first occurrences within the item's shard, which is
    /// the serial order restricted to that shard. Each shard's write lock
    /// is taken once for the whole batch instead of once per miss, and on
    /// hosts with spare parallelism large batches fill their shards
    /// concurrently (id assignment stays deterministic because no shard's
    /// ids depend on another shard's progress).
    pub fn intern_ordered(&self, items: &[Arc<str>]) -> Vec<Symbol> {
        let wide = items.len() >= ORDERED_PARALLEL_MIN
            && std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
        self.intern_ordered_impl(items, wide)
    }

    fn intern_ordered_impl(&self, items: &[Arc<str>], parallel: bool) -> Vec<Symbol> {
        // Group item positions by target shard, preserving batch order
        // within each group.
        let mut by_shard: Vec<Vec<u32>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for (i, s) in items.iter().enumerate() {
            by_shard[shard_of(s)].push(i as u32);
        }
        let fill_shard = |shard: usize, positions: &[u32]| -> Vec<Symbol> {
            let mut guard = self.shards[shard].write();
            let (mut hits, mut misses) = (0u64, 0u64);
            let symbols = positions
                .iter()
                .map(|&p| {
                    let s = &items[p as usize];
                    let idx = match guard.map.get(&**s) {
                        Some(&idx) => {
                            hits += 1;
                            idx
                        }
                        None => {
                            misses += 1;
                            let idx = guard.strings.len() as u32;
                            guard.bytes += s.len();
                            guard.strings.push(Arc::clone(s));
                            guard.map.insert(Arc::clone(s), idx);
                            idx
                        }
                    };
                    Symbol((idx << SHARD_BITS) | shard as u32)
                })
                .collect();
            self.hits.fetch_add(hits, Ordering::Relaxed);
            self.misses.fetch_add(misses, Ordering::Relaxed);
            symbols
        };
        let per_shard: Vec<Vec<Symbol>> = if parallel {
            std::thread::scope(|scope| {
                let fill_shard = &fill_shard;
                let handles: Vec<_> = by_shard
                    .iter()
                    .enumerate()
                    .map(|(shard, positions)| scope.spawn(move || fill_shard(shard, positions)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard fill does not panic"))
                    .collect()
            })
        } else {
            by_shard
                .iter()
                .enumerate()
                .map(|(shard, positions)| fill_shard(shard, positions))
                .collect()
        };
        // Scatter per-shard results back to batch order.
        let mut out = vec![Symbol(0); items.len()];
        for (positions, symbols) in by_shard.iter().zip(&per_shard) {
            for (&p, &sym) in positions.iter().zip(symbols) {
                out[p as usize] = sym;
            }
        }
        out
    }

    /// Non-inserting lookup.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        let shard = shard_of(s);
        let guard = self.shards[shard].read();
        guard
            .map
            .get(s)
            .map(|&idx| Symbol((idx << SHARD_BITS) | shard as u32))
    }

    /// Resolve to a shared allocation.
    pub fn resolve_arc(&self, s: Symbol) -> Arc<str> {
        let shard = (s.0 & SHARD_MASK) as usize;
        let idx = (s.0 >> SHARD_BITS) as usize;
        Arc::clone(&self.shards[shard].read().strings[idx])
    }

    /// Number of distinct strings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().strings.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of distinct interned strings.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.read().bytes).sum()
    }

    /// Intern calls that found the string present (dedup across workers).
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Intern calls that inserted a new string.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Immutable snapshot for display-time resolution. `Arc` clones only —
    /// no string bytes are copied.
    pub fn snapshot(&self) -> SymbolTable {
        SymbolTable {
            shards: self
                .shards
                .iter()
                .map(|s| s.read().strings.clone())
                .collect(),
        }
    }
}

/// Immutable snapshot of a global [`Interner`], used by the report layer
/// to resolve symbols without touching any lock.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    shards: Vec<Vec<Arc<str>>>,
}

impl SymbolTable {
    /// Resolve a global symbol.
    pub fn resolve(&self, s: Symbol) -> &str {
        &self.shards[(s.0 & SHARD_MASK) as usize][(s.0 >> SHARD_BITS) as usize]
    }

    /// Number of symbols in the snapshot.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }
}

// ---------------------------------------------------------------------------
// SymbolRemap
// ---------------------------------------------------------------------------

/// Local→global symbol rewrite cache for one worker lexicon.
///
/// Global id assignment must depend only on the corpus, never on worker
/// count or scheduling — the property the `parallel_matches_serial`
/// determinism tests pin down. Two usage styles uphold it:
///
/// * lazy ([`map`](Self::map)): walk results in *input order* and intern
///   each local symbol globally on first encounter;
/// * batched ([`set`](Self::set) + [`get`](Self::get)): record first
///   occurrences in input order, intern them as one
///   [`Interner::intern_ordered`] batch, write the resolved pairs back,
///   then rewrite. The pipeline join uses this style.
#[derive(Debug, Default)]
pub struct SymbolRemap {
    cache: Vec<Option<Symbol>>,
}

impl SymbolRemap {
    /// A remap able to translate symbols `0..len` of one local interner.
    pub fn new(len: usize) -> Self {
        SymbolRemap {
            cache: vec![None; len],
        }
    }

    /// Translate `local`, calling `fill` (which should intern the resolved
    /// string globally) only on first encounter.
    pub fn map(&mut self, local: Symbol, fill: impl FnOnce() -> Symbol) -> Symbol {
        let i = local.0 as usize;
        if let Some(s) = self.cache[i] {
            return s;
        }
        let s = fill();
        self.cache[i] = Some(s);
        s
    }

    /// The cached translation of `local`, if one has been recorded.
    pub fn get(&self, local: Symbol) -> Option<Symbol> {
        self.cache[local.0 as usize]
    }

    /// Record `local` → `global` directly (batched resolution style).
    pub fn set(&mut self, local: Symbol, global: Symbol) {
        self.cache[local.0 as usize] = Some(global);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn local_intern_dedups_and_resolves() {
        let mut lex = LocalInterner::new();
        let a = lex.intern("loadUrl");
        let b = lex.intern("launchUrl");
        let a2 = lex.intern("loadUrl");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(lex.resolve(a), "loadUrl");
        assert_eq!(lex.resolve(b), "launchUrl");
        assert_eq!(lex.len(), 2);
        assert_eq!(lex.bytes(), "loadUrl".len() + "launchUrl".len());
        assert_eq!((lex.hits(), lex.misses()), (1, 2));
        assert_eq!(lex.get("loadUrl"), Some(a));
        assert_eq!(lex.get("never-seen"), None);
    }

    #[test]
    fn resolve_arc_outlives_later_interning() {
        let mut lex = LocalInterner::new();
        let a = lex.intern("com.applovin.adview");
        let arc = lex.resolve_arc(a);
        for i in 0..100 {
            lex.intern(&format!("filler.{i}"));
        }
        assert_eq!(&*arc, "com.applovin.adview");
    }

    #[test]
    fn global_interner_dedups_across_threads() {
        let global = Interner::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..64 {
                        global.intern(&format!("pkg.{}", i % 16));
                    }
                });
            }
        });
        assert_eq!(global.len(), 16);
        assert_eq!(global.miss_count(), 16);
        assert_eq!(global.hit_count(), 4 * 64 - 16);
        let s = global.intern("pkg.3");
        assert_eq!(&*global.resolve_arc(s), "pkg.3");
        let table = global.snapshot();
        assert_eq!(table.resolve(s), "pkg.3");
        assert_eq!(table.len(), 16);
    }

    #[test]
    fn snapshot_resolves_every_symbol() {
        let global = Interner::new();
        let syms: Vec<(Symbol, String)> = (0..200)
            .map(|i| {
                let s = format!("com.example.seg{i}");
                (global.intern(&s), s)
            })
            .collect();
        let table = global.snapshot();
        for (sym, s) in syms {
            assert_eq!(table.resolve(sym), s);
        }
    }

    #[test]
    fn remap_is_lazy_and_stable() {
        let mut lex = LocalInterner::new();
        let a = lex.intern("alpha");
        let b = lex.intern("beta");
        let global = Interner::new();
        let mut remap = SymbolRemap::new(lex.len());
        let mut fills = 0;
        let ga = remap.map(a, || {
            fills += 1;
            global.intern_arc(lex.resolve_arc(a))
        });
        let ga2 = remap.map(a, || unreachable!("cached"));
        let gb = remap.map(b, || {
            fills += 1;
            global.intern_arc(lex.resolve_arc(b))
        });
        assert_eq!(ga, ga2);
        assert_ne!(ga, gb);
        assert_eq!(fills, 2);
        assert_eq!(&*global.resolve_arc(ga), "alpha");
    }

    /// Batch fixture with duplicates, shard collisions, and strings that
    /// partly pre-exist in the table.
    fn ordered_fixture() -> Vec<Arc<str>> {
        (0..300)
            .map(|i| Arc::from(format!("com.example.seg{}", i % 97).as_str()))
            .collect()
    }

    #[test]
    fn intern_ordered_matches_serial_intern_arc() {
        // Both internal paths must assign exactly the ids a serial
        // `intern_arc` loop assigns, including over a pre-populated table.
        for parallel in [false, true] {
            let serial = Interner::new();
            let batched = Interner::new();
            serial.intern("pre.existing");
            batched.intern("pre.existing");
            let items = ordered_fixture();
            let expect: Vec<Symbol> = items
                .iter()
                .map(|s| serial.intern_arc(Arc::clone(s)))
                .collect();
            let got = batched.intern_ordered_impl(&items, parallel);
            assert_eq!(got, expect, "parallel={parallel}");
            assert_eq!(batched.len(), serial.len());
            assert_eq!(batched.hit_count(), serial.hit_count());
            assert_eq!(batched.miss_count(), serial.miss_count());
            for &sym in &got {
                assert_eq!(batched.resolve_arc(sym), serial.resolve_arc(sym));
            }
        }
    }

    #[test]
    fn with_capacity_assigns_same_ids_as_new() {
        let plain = Interner::new();
        let presized = Interner::with_capacity(1000);
        let items = ordered_fixture();
        for s in &items {
            assert_eq!(
                presized.intern_arc(Arc::clone(s)),
                plain.intern_arc(Arc::clone(s))
            );
        }
        assert_eq!(presized.len(), plain.len());
        assert_eq!(presized.bytes(), plain.bytes());
    }

    proptest! {
        /// Interning is a bijection between distinct strings and symbols,
        /// locally and globally, and snapshot resolution inverts it.
        #[test]
        fn prop_intern_roundtrip(strings in proptest::collection::vec("[ -~]{0,24}", 1..64)) {
            let mut lex = LocalInterner::new();
            let global = Interner::new();
            let locals: Vec<Symbol> = strings.iter().map(|s| lex.intern(s)).collect();
            let globals: Vec<Symbol> = strings.iter().map(|s| global.intern(s)).collect();
            let table = global.snapshot();
            for ((s, l), g) in strings.iter().zip(&locals).zip(&globals) {
                prop_assert_eq!(lex.resolve(*l), s.as_str());
                prop_assert_eq!(table.resolve(*g), s.as_str());
            }
            // Equal strings ⇒ equal symbols; distinct ⇒ distinct.
            for (i, a) in strings.iter().enumerate() {
                for (j, b) in strings.iter().enumerate() {
                    prop_assert_eq!(a == b, locals[i] == locals[j]);
                    prop_assert_eq!(a == b, globals[i] == globals[j]);
                }
            }
            let distinct: std::collections::HashSet<&str> =
                strings.iter().map(String::as_str).collect();
            prop_assert_eq!(lex.len(), distinct.len());
            prop_assert_eq!(global.len(), distinct.len());
        }
    }
}
