//! # wla-callgraph — whole-app call graphs (Androguard analog)
//!
//! Steps (4)–(5) of the paper's pipeline (Figure 1): "generate call graphs
//! for each APK and record the instances where a WebView method is called
//! or a CT is initialized", traversing "the app's entire call graph via all
//! entry points" because Android apps have no `main` (§3.1.3).
//!
//! * [`graph`] — builds the call graph from SDEX bytecode as a
//!   compressed-sparse-row edge arena over dense method indices: one node
//!   per defined method, edges from `invoke-*` sites, virtual dispatch
//!   resolved through a lazily built per-class flattened vtable
//!   (CHA-style), with every call site retained (caller, callee reference,
//!   invoke kind, URL-argument [`graph::Provenance`]);
//! * [`entrypoints`] — discovers traversal roots from the manifest:
//!   lifecycle methods of declared components (including components whose
//!   class *transitively* extends a declared component class) plus GUI/event
//!   callbacks;
//! * [`reach`] — bitset + worklist reachability over the CSR arena
//!   (reusable [`reach::ReachScratch`], allocation-free in steady state)
//!   and the recording of WebView / Custom-Tabs call sites with their
//!   reachability status. Recorded sites carry *interned* names
//!   ([`wla_intern::Symbol`]) plus record-time package labels, so later
//!   pipeline stages never touch strings;
//! * [`oracle`] — the pre-CSR hash-based path, kept as `reach_oracle` for
//!   equivalence tests and the ablation bench;
//! * [`provenance_oracle`] — the linear pending-string heuristic for URL
//!   provenance, kept as the baseline the dataflow pass is pinned against.

pub mod entrypoints;
pub mod graph;
pub mod oracle;
pub mod provenance_oracle;
pub mod reach;
pub mod scc;

pub use entrypoints::entry_points;
pub use graph::{annotate_provenance, BuildStats, CallGraph, CallSite, Provenance, UrlOrigin};
pub use oracle::{reachable_methods_oracle, record_web_calls_oracle, HashCallGraph};
pub use reach::{
    record_web_calls, record_web_calls_with, CallGraphCounters, CtSite, ReachScratch,
    WebCallRecord, WebViewSite,
};
pub use scc::{graph_shape, strongly_connected_components, GraphShape};
