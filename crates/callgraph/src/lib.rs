//! # wla-callgraph — whole-app call graphs (Androguard analog)
//!
//! Steps (4)–(5) of the paper's pipeline (Figure 1): "generate call graphs
//! for each APK and record the instances where a WebView method is called
//! or a CT is initialized", traversing "the app's entire call graph via all
//! entry points" because Android apps have no `main` (§3.1.3).
//!
//! * [`graph`] — builds the call graph from SDEX bytecode: one node per
//!   method-table entry, edges from `invoke-*` sites, virtual dispatch
//!   resolved through the superclass chain (CHA-style), with every call
//!   site retained (caller, callee reference, invoke kind, preceding
//!   string constant);
//! * [`entrypoints`] — discovers traversal roots from the manifest:
//!   lifecycle methods of declared components (including components whose
//!   class *transitively* extends a declared component class) plus GUI/event
//!   callbacks;
//! * [`reach`] — BFS reachability over the graph and the recording of
//!   WebView / Custom-Tabs call sites with their reachability status.
//!   Recorded sites carry *interned* names ([`wla_intern::Symbol`]) plus
//!   record-time package labels, so later pipeline stages never touch
//!   strings.

pub mod entrypoints;
pub mod graph;
pub mod reach;
pub mod scc;

pub use entrypoints::entry_points;
pub use graph::{CallGraph, CallSite};
pub use reach::{record_web_calls, CtSite, WebCallRecord, WebViewSite};
pub use scc::{graph_shape, strongly_connected_components, GraphShape};
