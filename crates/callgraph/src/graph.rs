//! Call-graph construction from SDEX bytecode.
//!
//! The graph is a **compressed-sparse-row (CSR) edge arena over dense
//! method indices**: every method defined in the dex gets a dense `u32`
//! node index (assigned in class/method order), out-edges live in one
//! contiguous `targets` array sliced by an `offsets` array, and the
//! `MethodId → dense` translation is a direct-indexed table sized from
//! `dex.method_count()` — no hashing on any traversal path. Virtual and
//! interface dispatch resolve through a per-class **flattened vtable**
//! built lazily (once per receiver class) instead of walking the
//! superclass chain at every invoke site. The pre-CSR hash-based build is
//! preserved verbatim in [`crate::oracle`] as the correctness reference.

use std::collections::HashMap;
use wla_apk::sdex::{Dex, Instruction, InvokeKind, MethodDef, MethodId, TypeId};

/// What is known about the string argument of a call site after provenance
/// analysis. Produced by an annotator ([`crate::provenance_oracle`] or the
/// dataflow pass in `wla-static`), never by graph construction itself —
/// freshly built graphs carry [`Provenance::Unknown`] everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// No single string constant is known to reach the argument.
    Unknown,
    /// Exactly this string-pool constant reaches the argument on every
    /// path to the site.
    Const(u32),
    /// Different constants merge at a join point in front of the site.
    Conflict,
}

impl Provenance {
    /// The constant's string-pool index, when resolved.
    pub fn constant(self) -> Option<u32> {
        match self {
            Provenance::Const(s) => Some(s),
            _ => None,
        }
    }

    /// Collapse to the pool-independent shape for summaries.
    pub fn origin(self) -> UrlOrigin {
        match self {
            Provenance::Unknown => UrlOrigin::Unknown,
            Provenance::Const(_) => UrlOrigin::Resolved,
            Provenance::Conflict => UrlOrigin::Conflict,
        }
    }
}

/// [`Provenance`] without the dex-local string-pool index: what summaries
/// and aggregation carry once the constant itself has been interned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UrlOrigin {
    /// A single constant URL/data string was recovered.
    Resolved,
    /// Nothing recoverable statically.
    Unknown,
    /// Multiple candidate constants merge before the call.
    Conflict,
}

/// One `invoke-*` site in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Method containing the call.
    pub caller: MethodId,
    /// Class defining the caller.
    pub caller_class: TypeId,
    /// The callee *reference* as written in the bytecode (its class is the
    /// static receiver type — possibly a WebView subclass).
    pub callee_ref: MethodId,
    /// Dispatch kind.
    pub kind: InvokeKind,
    /// Resolved string-argument provenance (§3.1.4's URL extraction).
    /// [`Provenance::Unknown`] until an annotator runs over the sites.
    pub provenance: Provenance,
}

/// Sentinel in the `MethodId → dense` table for method-table entries with
/// no definition in this dex (framework references).
const NOT_DEFINED: u32 = u32::MAX;

/// Counters from one [`CallGraph::build`], surfaced through the pipeline's
/// observability (`PipelineStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Virtual/interface resolutions served by an already-built vtable.
    pub vtable_hits: u64,
    /// Vtables built (one per receiver class that needed hierarchy search).
    pub vtable_misses: u64,
    /// Repeated same-callee invokes collapsed by the CSR dedup.
    pub duplicate_edges: u64,
}

/// A whole-app call graph over a [`Dex`], stored as CSR over dense method
/// indices.
#[derive(Debug)]
pub struct CallGraph<'d> {
    dex: &'d Dex,
    /// `MethodId.0 → dense node index`; [`NOT_DEFINED`] for external refs.
    dense: Vec<u32>,
    /// dense index → method-table id.
    nodes: Vec<MethodId>,
    /// dense index → class defining the method.
    node_class: Vec<TypeId>,
    /// CSR row starts into `targets`; `len == nodes.len() + 1`.
    offsets: Vec<u32>,
    /// CSR edge arena: dense callee indices, sorted and deduped per caller.
    targets: Vec<u32>,
    /// Every call site, resolved or not, in program order.
    sites: Vec<CallSite>,
    stats: BuildStats,
}

impl<'d> CallGraph<'d> {
    /// Build the graph with a two-pass count-then-fill CSR construction:
    /// pass one assigns dense indices and counts invoke sites to pre-size
    /// every arena; pass two resolves each site (vtable-cached) into a
    /// flat edge list that is then bucketed, sorted, and deduped in place.
    pub fn build(dex: &'d Dex) -> Self {
        CallGraph::build_with(dex, true)
    }

    /// [`CallGraph::build`] with an explicit vtable layout.
    ///
    /// `hash_vtables == true` (what `build` uses) lays each per-class
    /// flattened vtable out as an open-addressing hash over `(name,
    /// descriptor)`, making virtual/interface binding an O(1) probe per
    /// site. `false` keeps the earlier sorted-array layout with
    /// binary-search lookup — same results, kept for the ablation bench
    /// row and as an in-tree correctness foil.
    pub fn build_with(dex: &'d Dex, hash_vtables: bool) -> Self {
        // Pass 1 (count): dense index per defined method, signature index
        // for resolution, and the invoke-site count for exact pre-sizing.
        let mut dense = vec![NOT_DEFINED; dex.method_count()];
        let mut defined_methods = 0usize;
        let mut invoke_sites = 0usize;
        for class in dex.classes() {
            for m in &class.methods {
                defined_methods += 1;
                invoke_sites += m
                    .code
                    .iter()
                    .filter(|i| matches!(i, Instruction::Invoke { .. }))
                    .count();
            }
        }
        let mut nodes: Vec<MethodId> = Vec::with_capacity(defined_methods);
        let mut node_class: Vec<TypeId> = Vec::with_capacity(defined_methods);
        let mut by_signature: HashMap<(u32, u32, u32), u32> =
            HashMap::with_capacity(defined_methods);
        for class in dex.classes() {
            for m in &class.methods {
                let slot = &mut dense[m.method.0 as usize];
                let idx = if *slot == NOT_DEFINED {
                    let idx = nodes.len() as u32;
                    *slot = idx;
                    nodes.push(m.method);
                    node_class.push(class.ty);
                    idx
                } else {
                    // Re-defined method id: merge edges into one node and
                    // let the later defining class win, matching the
                    // hash-path's insert-overwrites semantics.
                    let idx = *slot;
                    node_class[idx as usize] = class.ty;
                    idx
                };
                let r = dex.method_ref(m.method);
                by_signature.insert((class.ty.0, r.name, r.descriptor), idx);
            }
        }

        // Pass 2 (fill): record sites and resolve internal edges into a
        // flat (caller, callee) list, then bucket it into CSR.
        let mut stats = BuildStats::default();
        let mut vtables = VtableCache::new(dex.type_count(), hash_vtables);
        let mut sites: Vec<CallSite> = Vec::with_capacity(invoke_sites);
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(invoke_sites);
        for class in dex.classes() {
            for m in &class.methods {
                let caller = dense[m.method.0 as usize];
                for ins in &m.code {
                    if let Instruction::Invoke { kind, method, .. } = ins {
                        sites.push(CallSite {
                            caller: m.method,
                            caller_class: class.ty,
                            callee_ref: *method,
                            kind: *kind,
                            provenance: Provenance::Unknown,
                        });
                        if let Some(target) = resolve(
                            dex,
                            &by_signature,
                            &dense,
                            &mut vtables,
                            &mut stats,
                            *method,
                            *kind,
                        ) {
                            pairs.push((caller, target));
                        }
                    }
                }
            }
        }

        let (offsets, targets, duplicate_edges) = csr_from_pairs(nodes.len(), &pairs);
        stats.duplicate_edges = duplicate_edges;

        CallGraph {
            dex,
            dense,
            nodes,
            node_class,
            offsets,
            targets,
            sites,
            stats,
        }
    }

    /// The dex this graph was built over.
    pub fn dex(&self) -> &'d Dex {
        self.dex
    }

    /// Every call site in program order.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Mutable site access for provenance annotators — sites stay in
    /// program order; only the `provenance` field is meant to change.
    pub fn sites_mut(&mut self) -> &mut [CallSite] {
        &mut self.sites
    }

    /// Number of graph nodes (methods defined in this dex).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Dense node index of `m`, or `None` for external (framework) refs.
    #[inline]
    pub fn node_index(&self, m: MethodId) -> Option<u32> {
        let d = *self.dense.get(m.0 as usize)?;
        (d != NOT_DEFINED).then_some(d)
    }

    /// Method-table id of a dense node.
    #[inline]
    pub fn method_at(&self, idx: u32) -> MethodId {
        self.nodes[idx as usize]
    }

    /// Defining class of a dense node.
    #[inline]
    pub fn class_at(&self, idx: u32) -> TypeId {
        self.node_class[idx as usize]
    }

    /// CSR out-edge slice of a dense node (sorted, deduped dense indices).
    #[inline]
    pub fn callee_indices(&self, idx: u32) -> &[u32] {
        let start = self.offsets[idx as usize] as usize;
        let end = self.offsets[idx as usize + 1] as usize;
        &self.targets[start..end]
    }

    /// Resolved internal callees of `m` as method ids (compat wrapper over
    /// the dense CSR slice).
    pub fn callees(&self, m: MethodId) -> impl Iterator<Item = MethodId> + '_ {
        let slice = match self.node_index(m) {
            Some(i) => self.callee_indices(i),
            None => &[],
        };
        slice.iter().map(|&t| self.method_at(t))
    }

    /// Class defining `m`, if `m` is defined in this dex.
    pub fn defining_class(&self, m: MethodId) -> Option<TypeId> {
        self.node_index(m).map(|i| self.class_at(i))
    }

    /// Number of defined methods (graph nodes with potential out-edges).
    pub fn defined_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total internal edge count (after per-caller dedup).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Build-time resolution counters.
    pub fn build_stats(&self) -> BuildStats {
        self.stats
    }
}

/// Bucket a flat `(caller, callee)` edge list into CSR: count per caller,
/// prefix-sum into row starts, scatter-fill, then sort + dedup each row in
/// place (compacting the arena). Returns `(offsets, targets, duplicates)`.
fn csr_from_pairs(n: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>, u64) {
    let mut offsets = vec![0u32; n + 1];
    for &(c, _) in pairs {
        offsets[c as usize + 1] += 1;
    }
    for i in 1..=n {
        offsets[i] += offsets[i - 1];
    }
    let mut targets = vec![0u32; pairs.len()];
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for &(c, t) in pairs {
        let pos = &mut cursor[c as usize];
        targets[*pos as usize] = t;
        *pos += 1;
    }
    // Dedup row by row; `write` trails `start`, so in-place is safe.
    let mut write = 0usize;
    let mut start = 0usize;
    for i in 0..n {
        let end = offsets[i + 1] as usize;
        targets[start..end].sort_unstable();
        offsets[i] = write as u32;
        let mut prev: Option<u32> = None;
        for r in start..end {
            let t = targets[r];
            if prev != Some(t) {
                targets[write] = t;
                write += 1;
                prev = Some(t);
            }
        }
        start = end;
    }
    offsets[n] = write as u32;
    let duplicates = (targets.len() - write) as u64;
    targets.truncate(write);
    (offsets, targets, duplicates)
}

/// Assign provenance to every call site of a graph built over `dex`.
///
/// `per_method` returns one [`Provenance`] per invoke, in code order, for
/// each defined method. Sites are walked in the same class/method/
/// instruction order [`CallGraph::build`] (and the hash oracle) pushed
/// them, so the two streams zip positionally; both builders over the same
/// dex therefore receive bit-identical annotations from the same resolver.
pub fn annotate_provenance(
    dex: &Dex,
    sites: &mut [CallSite],
    mut per_method: impl FnMut(&MethodDef) -> Vec<Provenance>,
) {
    let mut cursor = 0usize;
    for class in dex.classes() {
        for m in &class.methods {
            let invokes = m
                .code
                .iter()
                .filter(|i| matches!(i, Instruction::Invoke { .. }))
                .count();
            let resolved = per_method(m);
            debug_assert_eq!(
                resolved.len(),
                invokes,
                "resolver must yield one provenance per invoke"
            );
            for p in resolved.into_iter().take(invokes) {
                if let Some(site) = sites.get_mut(cursor) {
                    site.provenance = p;
                }
                cursor += 1;
            }
        }
    }
    debug_assert_eq!(cursor, sites.len(), "site stream out of sync with dex");
}

/// One flattened vtable entry: `(name, descriptor) → dense method index`,
/// with the nearest definition in the hierarchy winning.
type VtEntry = (u32, u32, u32);

/// Empty slot in a hash-layout vtable. A real entry's dense index is
/// always a *defined* method, so [`NOT_DEFINED`] can never collide.
const VT_EMPTY: VtEntry = (0, 0, NOT_DEFINED);

/// Mix a `(name, descriptor)` signature into a probe start. Two odd
/// multipliers decorrelate the pair — plenty for tables kept at ≤ 0.5 load.
#[inline]
fn vt_hash(name: u32, descriptor: u32) -> u32 {
    name.wrapping_mul(0x9E37_79B1) ^ descriptor.wrapping_mul(0x85EB_CA77)
}

/// Lazily built per-class flattened vtables, direct-indexed by `TypeId`.
/// Each table is the class's own methods plus every inherited signature —
/// computed once per receiver class instead of re-walking the superclass
/// chain at every virtual invoke site. Layout is chosen at construction:
/// an open-addressing hash over `(name, descriptor)` (O(1) probe per
/// binding, the default), or the earlier sorted array with binary-search
/// lookup (kept for ablation).
struct VtableCache {
    tables: Vec<Option<Box<[VtEntry]>>>,
    scratch: Vec<VtEntry>,
    hash: bool,
}

impl VtableCache {
    fn new(type_count: usize, hash: bool) -> Self {
        VtableCache {
            tables: (0..type_count).map(|_| None).collect(),
            scratch: Vec::new(),
            hash,
        }
    }

    fn lookup(
        &mut self,
        dex: &Dex,
        dense: &[u32],
        ty: TypeId,
        name: u32,
        descriptor: u32,
        stats: &mut BuildStats,
    ) -> Option<u32> {
        let slot = self.tables.get_mut(ty.0 as usize)?;
        if slot.is_none() {
            stats.vtable_misses += 1;
            self.scratch.clear();
            // Scan order = hierarchy order (class, then ancestors), so the
            // *nearest* definition of a signature is seen first whichever
            // layout is built below.
            let mut collect = |t: TypeId| {
                if let Some(class) = dex.class(t) {
                    for m in &class.methods {
                        let r = dex.method_ref(m.method);
                        self.scratch
                            .push((r.name, r.descriptor, dense[m.method.0 as usize]));
                    }
                }
            };
            collect(ty);
            for ancestor in dex.superclasses(ty) {
                collect(ancestor);
            }
            *slot = Some(if self.hash {
                // Open addressing with linear probing at ≤ 0.5 load;
                // first-wins insertion in hierarchy order keeps the nearest
                // definition and drops shadowed ancestors.
                let cap = (self.scratch.len() * 2).next_power_of_two();
                let mask = cap - 1;
                let mut table = vec![VT_EMPTY; cap].into_boxed_slice();
                'insert: for &(n, d, idx) in &self.scratch {
                    let mut i = vt_hash(n, d) as usize & mask;
                    loop {
                        let e = table[i];
                        if e.2 == NOT_DEFINED {
                            table[i] = (n, d, idx);
                            continue 'insert;
                        }
                        if e.0 == n && e.1 == d {
                            // A nearer definition already claimed the slot.
                            continue 'insert;
                        }
                        i = (i + 1) & mask;
                    }
                }
                table
            } else {
                // Sorted layout: a stable sort keyed on the signature keeps
                // the nearest definition first and dedup drops the rest.
                self.scratch.sort_by_key(|&(n, d, _)| (n, d));
                self.scratch.dedup_by_key(|&mut (n, d, _)| (n, d));
                self.scratch.as_slice().into()
            });
        } else {
            stats.vtable_hits += 1;
        }
        let table = slot.as_deref().expect("just built");
        if self.hash {
            let mask = table.len() - 1;
            let mut i = vt_hash(name, descriptor) as usize & mask;
            loop {
                let e = table[i];
                if e.2 == NOT_DEFINED {
                    return None;
                }
                if e.0 == name && e.1 == descriptor {
                    return Some(e.2);
                }
                i = (i + 1) & mask;
            }
        } else {
            table
                .binary_search_by_key(&(name, descriptor), |&(n, d, _)| (n, d))
                .ok()
                .map(|i| table[i].2)
        }
    }
}

/// Resolve a callee reference to the dense index of a *defined* method, or
/// `None` for external (framework) targets. Virtual/interface/super
/// dispatch searches the receiver class then its defined ancestors via the
/// flattened vtable (class-hierarchy analysis on the static type — the
/// paper's tooling does the same).
#[allow(clippy::too_many_arguments)]
fn resolve(
    dex: &Dex,
    by_signature: &HashMap<(u32, u32, u32), u32>,
    dense: &[u32],
    vtables: &mut VtableCache,
    stats: &mut BuildStats,
    callee_ref: MethodId,
    kind: InvokeKind,
) -> Option<u32> {
    let r = dex.method_ref(callee_ref);
    if let Some(&idx) = by_signature.get(&(r.class.0, r.name, r.descriptor)) {
        return Some(idx);
    }
    match kind {
        InvokeKind::Static | InvokeKind::Direct => None,
        InvokeKind::Virtual | InvokeKind::Interface | InvokeKind::Super => {
            vtables.lookup(dex, dense, r.class, r.name, r.descriptor, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance_oracle;
    use wla_apk::sdex::{ClassFlags, DexBuilder, MethodDef, Reg};

    fn def(b: &mut DexBuilder, class: &str, name: &str, code: Vec<Instruction>) -> MethodDef {
        MethodDef::new(b.intern_method(class, name, "()V"), true, false, code)
    }

    #[test]
    fn static_edges_resolved() {
        let mut b = DexBuilder::new();
        let callee = b.intern_method("com/x/B", "run", "()V");
        let a = def(
            &mut b,
            "com/x/A",
            "go",
            vec![
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: callee,
                    args: vec![],
                },
                Instruction::ReturnVoid,
            ],
        );
        let b_run = def(&mut b, "com/x/B", "run", vec![Instruction::ReturnVoid]);
        b.define_class("com/x/A", None, ClassFlags::default(), vec![a])
            .unwrap();
        b.define_class("com/x/B", None, ClassFlags::default(), vec![b_run])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        let a_id = dex
            .classes()
            .iter()
            .find(|c| dex.type_name(c.ty) == "com/x/A")
            .unwrap()
            .methods[0]
            .method;
        assert_eq!(g.callees(a_id).count(), 1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.defined_count(), 2);
    }

    #[test]
    fn virtual_dispatch_through_superclass() {
        // C extends B extends A; call site references C.handle but only A
        // defines it — resolution must walk up.
        let mut b = DexBuilder::new();
        let _a_handle = b.intern_method("com/x/A", "handle", "()V");
        let c_handle = b.intern_method("com/x/C", "handle", "()V");
        let caller = def(
            &mut b,
            "com/x/Main",
            "go",
            vec![
                Instruction::Invoke {
                    kind: InvokeKind::Virtual,
                    method: c_handle,
                    args: vec![],
                },
                Instruction::ReturnVoid,
            ],
        );
        let a_def = def(&mut b, "com/x/A", "handle", vec![Instruction::ReturnVoid]);
        b.define_class("com/x/A", None, ClassFlags::default(), vec![a_def])
            .unwrap();
        b.define_class("com/x/B", Some("com/x/A"), ClassFlags::default(), vec![])
            .unwrap();
        b.define_class("com/x/C", Some("com/x/B"), ClassFlags::default(), vec![])
            .unwrap();
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        let main = dex.class_by_name("com/x/Main").unwrap().methods[0].method;
        let callees: Vec<MethodId> = g.callees(main).collect();
        assert_eq!(callees.len(), 1);
        assert_eq!(
            dex.type_name(g.defining_class(callees[0]).unwrap()),
            "com/x/A"
        );
        // The walk went through the vtable cache, not an exact-probe hit.
        assert_eq!(g.build_stats().vtable_misses, 1);
    }

    #[test]
    fn nearest_override_wins_in_vtable() {
        // A and B both define handle; a call through C must bind to B's
        // (nearest) definition, not A's.
        let mut b = DexBuilder::new();
        let c_handle = b.intern_method("com/x/C", "handle", "()V");
        let caller = def(
            &mut b,
            "com/x/Main",
            "go",
            vec![
                Instruction::Invoke {
                    kind: InvokeKind::Virtual,
                    method: c_handle,
                    args: vec![],
                },
                Instruction::ReturnVoid,
            ],
        );
        let a_def = def(&mut b, "com/x/A", "handle", vec![Instruction::ReturnVoid]);
        let b_def = def(&mut b, "com/x/B", "handle", vec![Instruction::ReturnVoid]);
        b.define_class("com/x/A", None, ClassFlags::default(), vec![a_def])
            .unwrap();
        b.define_class(
            "com/x/B",
            Some("com/x/A"),
            ClassFlags::default(),
            vec![b_def],
        )
        .unwrap();
        b.define_class("com/x/C", Some("com/x/B"), ClassFlags::default(), vec![])
            .unwrap();
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        let main = dex.class_by_name("com/x/Main").unwrap().methods[0].method;
        let callees: Vec<MethodId> = g.callees(main).collect();
        assert_eq!(callees.len(), 1);
        assert_eq!(
            dex.type_name(g.defining_class(callees[0]).unwrap()),
            "com/x/B"
        );
    }

    #[test]
    fn repeated_call_sites_dedup_to_one_edge() {
        // Three invokes of the same callee in one method: three sites but
        // exactly one CSR edge (regression pin for the dedup satellite).
        let mut b = DexBuilder::new();
        let callee = b.intern_method("com/x/B", "run", "()V");
        let other = b.intern_method("com/x/B", "other", "()V");
        let call = |m| Instruction::Invoke {
            kind: InvokeKind::Static,
            method: m,
            args: vec![],
        };
        let a = def(
            &mut b,
            "com/x/A",
            "go",
            vec![
                call(callee),
                call(callee),
                call(other),
                call(callee),
                Instruction::ReturnVoid,
            ],
        );
        let b_run = def(&mut b, "com/x/B", "run", vec![Instruction::ReturnVoid]);
        let b_other = def(&mut b, "com/x/B", "other", vec![Instruction::ReturnVoid]);
        b.define_class("com/x/A", None, ClassFlags::default(), vec![a])
            .unwrap();
        b.define_class("com/x/B", None, ClassFlags::default(), vec![b_run, b_other])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        assert_eq!(g.sites().len(), 4, "every invoke site is retained");
        assert_eq!(g.edge_count(), 2, "edges are deduped per caller");
        assert_eq!(g.build_stats().duplicate_edges, 2);
        let a_id = dex.class_by_name("com/x/A").unwrap().methods[0].method;
        assert_eq!(g.callees(a_id).count(), 2);
    }

    #[test]
    fn external_calls_have_no_edge_but_keep_site() {
        let mut b = DexBuilder::new();
        let load = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let url = b.intern_string("https://x.example");
        let caller = def(
            &mut b,
            "com/x/Main",
            "go",
            vec![
                Instruction::ConstString {
                    dst: Reg(0),
                    string: url,
                },
                Instruction::Invoke {
                    kind: InvokeKind::Virtual,
                    method: load,
                    args: vec![Reg(0)],
                },
                Instruction::ReturnVoid,
            ],
        );
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let mut g = CallGraph::build(&dex);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.sites().len(), 1);
        assert_eq!(
            g.sites()[0].provenance,
            Provenance::Unknown,
            "sites start unannotated"
        );
        provenance_oracle::annotate(&dex, g.sites_mut());
        let site = g.sites()[0];
        assert_eq!(dex.method_name(site.callee_ref), "loadUrl");
        assert_eq!(
            dex.string(site.provenance.constant().unwrap()),
            "https://x.example"
        );
        assert_eq!(site.provenance.origin(), UrlOrigin::Resolved);
    }

    #[test]
    fn pending_string_does_not_leak_across_calls() {
        let mut b = DexBuilder::new();
        let f = b.intern_method("com/x/Ext", "f", "()V");
        let gm = b.intern_method("com/x/Ext", "g", "()V");
        let s = b.intern_string("only-for-f");
        let caller = def(
            &mut b,
            "com/x/Main",
            "go",
            vec![
                Instruction::ConstString {
                    dst: Reg(0),
                    string: s,
                },
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: f,
                    args: vec![Reg(0)],
                },
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: gm,
                    args: vec![Reg(0)],
                },
                Instruction::ReturnVoid,
            ],
        );
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let mut g = CallGraph::build(&dex);
        provenance_oracle::annotate(&dex, g.sites_mut());
        assert_eq!(g.sites().len(), 2);
        assert_eq!(g.sites()[0].provenance, Provenance::Const(s));
        assert_eq!(g.sites()[1].provenance, Provenance::Unknown);
    }

    #[test]
    fn intervening_instructions_clear_the_pending_string() {
        // const-string, <something>, invoke — the heuristic must give up
        // when the intervening instruction could disturb the value, but
        // see through semantic no-ops. One invoke per intervening kind,
        // plus a control site with the const-string directly adjacent.
        let mut b = DexBuilder::new();
        let ty = b.intern_type("com/x/Obj");
        let f = b.intern_method("com/x/Ext", "f", "()V");
        let s = b.intern_string("stale-by-the-time-f-runs");
        let clobbers = [
            Instruction::NewInstance { ty },
            Instruction::Goto { offset: 1 },
            Instruction::IfTest { offset: 1 },
            Instruction::Move {
                dst: Reg(1),
                src: Reg(0),
            },
        ];
        let n_clobbers = clobbers.len();
        let mut code = Vec::new();
        for ins in clobbers {
            code.push(Instruction::ConstString {
                dst: Reg(0),
                string: s,
            });
            code.push(ins);
            code.push(Instruction::Invoke {
                kind: InvokeKind::Static,
                method: f,
                args: vec![Reg(0)],
            });
        }
        // Nop padding is transparent: the string still attaches.
        code.push(Instruction::ConstString {
            dst: Reg(0),
            string: s,
        });
        code.push(Instruction::Nop);
        code.push(Instruction::Invoke {
            kind: InvokeKind::Static,
            method: f,
            args: vec![Reg(0)],
        });
        code.push(Instruction::ReturnVoid);
        let caller = def(&mut b, "com/x/Main", "go", code);
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let mut g = CallGraph::build(&dex);
        provenance_oracle::annotate(&dex, g.sites_mut());
        assert_eq!(g.sites().len(), n_clobbers + 1);
        for (i, site) in g.sites().iter().take(n_clobbers).enumerate() {
            assert_eq!(
                site.provenance,
                Provenance::Unknown,
                "site {i}: intervening instruction must clear the string"
            );
        }
        assert_eq!(
            g.sites()[n_clobbers].provenance,
            Provenance::Const(s),
            "nop-separated const-string must still attach"
        );
    }

    #[test]
    fn hash_and_sorted_vtables_build_identical_graphs() {
        // A deep override chain plus an unresolved external call exercises
        // hit, miss, and shadowing paths; both layouts must agree edge for
        // edge and count for count.
        let mut b = DexBuilder::new();
        let c_handle = b.intern_method("com/x/C", "handle", "()V");
        let c_other = b.intern_method("com/x/C", "other", "(I)V");
        let missing = b.intern_method("com/x/C", "absent", "()V");
        let mut code = Vec::new();
        for _ in 0..3 {
            code.push(Instruction::Invoke {
                kind: InvokeKind::Virtual,
                method: c_handle,
                args: vec![],
            });
        }
        code.push(Instruction::Invoke {
            kind: InvokeKind::Virtual,
            method: c_other,
            args: vec![Reg(0)],
        });
        code.push(Instruction::Invoke {
            kind: InvokeKind::Virtual,
            method: missing,
            args: vec![],
        });
        code.push(Instruction::ReturnVoid);
        let caller = def(&mut b, "com/x/Main", "go", code);
        let a_def = def(&mut b, "com/x/A", "handle", vec![Instruction::ReturnVoid]);
        let a_other = MethodDef::new(
            b.intern_method("com/x/A", "other", "(I)V"),
            true,
            false,
            vec![Instruction::ReturnVoid],
        );
        let b_def = def(&mut b, "com/x/B", "handle", vec![Instruction::ReturnVoid]);
        b.define_class("com/x/A", None, ClassFlags::default(), vec![a_def, a_other])
            .unwrap();
        b.define_class(
            "com/x/B",
            Some("com/x/A"),
            ClassFlags::default(),
            vec![b_def],
        )
        .unwrap();
        b.define_class("com/x/C", Some("com/x/B"), ClassFlags::default(), vec![])
            .unwrap();
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();

        let hashed = CallGraph::build_with(&dex, true);
        let sorted = CallGraph::build_with(&dex, false);
        assert_eq!(hashed.edge_count(), sorted.edge_count());
        assert_eq!(hashed.defined_count(), sorted.defined_count());
        assert_eq!(hashed.sites(), sorted.sites());
        assert_eq!(hashed.build_stats(), sorted.build_stats());
        let main = dex.class_by_name("com/x/Main").unwrap().methods[0].method;
        let h: Vec<MethodId> = hashed.callees(main).collect();
        let s: Vec<MethodId> = sorted.callees(main).collect();
        assert_eq!(h, s);
        // Nearest override must win under the hash layout too.
        assert!(h
            .iter()
            .any(|&m| dex.type_name(hashed.defining_class(m).unwrap()) == "com/x/B"));
    }
}
