//! Call-graph construction from SDEX bytecode.

use std::collections::HashMap;
use wla_apk::sdex::{Dex, Instruction, InvokeKind, MethodId, TypeId};

/// One `invoke-*` site in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Method containing the call.
    pub caller: MethodId,
    /// Class defining the caller.
    pub caller_class: TypeId,
    /// The callee *reference* as written in the bytecode (its class is the
    /// static receiver type — possibly a WebView subclass).
    pub callee_ref: MethodId,
    /// Dispatch kind.
    pub kind: InvokeKind,
    /// String-pool index of the `const-string` immediately preceding the
    /// call, if any (the URL/JS argument heuristic the study uses).
    pub preceding_string: Option<u32>,
}

/// A whole-app call graph over a [`Dex`].
#[derive(Debug)]
pub struct CallGraph<'d> {
    dex: &'d Dex,
    /// method-table id -> index of the class defining it (for defined
    /// methods).
    defined: HashMap<MethodId, TypeId>,
    /// Resolved internal edges: caller -> defined callees.
    edges: HashMap<MethodId, Vec<MethodId>>,
    /// Every call site, resolved or not.
    sites: Vec<CallSite>,
}

impl<'d> CallGraph<'d> {
    /// Build the graph. Cost is linear in code size; virtual resolution
    /// walks superclass chains (bounded by hierarchy depth).
    pub fn build(dex: &'d Dex) -> Self {
        // Index defined methods: (class, name, desc) -> MethodId, and
        // MethodId -> defining class.
        let mut defined: HashMap<MethodId, TypeId> = HashMap::new();
        let mut by_signature: HashMap<(TypeId, u32, u32), MethodId> = HashMap::new();
        for class in dex.classes() {
            for m in &class.methods {
                let r = dex.method_ref(m.method);
                defined.insert(m.method, class.ty);
                by_signature.insert((class.ty, r.name, r.descriptor), m.method);
            }
        }

        let mut edges: HashMap<MethodId, Vec<MethodId>> = HashMap::new();
        let mut sites = Vec::new();
        for class in dex.classes() {
            for m in &class.methods {
                let mut pending_string: Option<u32> = None;
                for ins in &m.code {
                    match ins {
                        Instruction::ConstString { string } => {
                            pending_string = Some(*string);
                        }
                        Instruction::Invoke { kind, method } => {
                            sites.push(CallSite {
                                caller: m.method,
                                caller_class: class.ty,
                                callee_ref: *method,
                                kind: *kind,
                                preceding_string: pending_string.take(),
                            });
                            if let Some(target) = resolve(dex, &by_signature, *method, *kind) {
                                edges.entry(m.method).or_default().push(target);
                            }
                        }
                        // §3.1's heuristic attaches a const-string only when
                        // it *immediately* precedes the invoke: any other
                        // intervening instruction (goto, if, new-instance,
                        // …) invalidates the pending string.
                        _ => pending_string = None,
                    }
                }
            }
        }

        CallGraph {
            dex,
            defined,
            edges,
            sites,
        }
    }

    /// The dex this graph was built over.
    pub fn dex(&self) -> &'d Dex {
        self.dex
    }

    /// Every call site in program order.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Resolved internal callees of `m`.
    pub fn callees(&self, m: MethodId) -> &[MethodId] {
        self.edges.get(&m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Class defining `m`, if `m` is defined in this dex.
    pub fn defining_class(&self, m: MethodId) -> Option<TypeId> {
        self.defined.get(&m).copied()
    }

    /// Number of defined methods (graph nodes with potential out-edges).
    pub fn defined_count(&self) -> usize {
        self.defined.len()
    }

    /// Total internal edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }
}

/// Resolve a callee reference to a *defined* method, or `None` for external
/// (framework) targets. Virtual/interface/super dispatch searches the
/// receiver class then its defined ancestors (class-hierarchy analysis on
/// the static type — the paper's tooling does the same).
fn resolve(
    dex: &Dex,
    by_signature: &HashMap<(TypeId, u32, u32), MethodId>,
    callee_ref: MethodId,
    kind: InvokeKind,
) -> Option<MethodId> {
    let r = dex.method_ref(callee_ref);
    if let Some(&m) = by_signature.get(&(r.class, r.name, r.descriptor)) {
        return Some(m);
    }
    match kind {
        InvokeKind::Static | InvokeKind::Direct => None,
        InvokeKind::Virtual | InvokeKind::Interface | InvokeKind::Super => {
            // Walk defined ancestors of the static receiver type.
            for ancestor in dex.superclass_chain(r.class) {
                if let Some(&m) = by_signature.get(&(ancestor, r.name, r.descriptor)) {
                    return Some(m);
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_apk::sdex::{ClassFlags, DexBuilder, MethodDef};

    fn def(b: &mut DexBuilder, class: &str, name: &str, code: Vec<Instruction>) -> MethodDef {
        MethodDef {
            method: b.intern_method(class, name, "()V"),
            public: true,
            static_: false,
            code,
        }
    }

    #[test]
    fn static_edges_resolved() {
        let mut b = DexBuilder::new();
        let callee = b.intern_method("com/x/B", "run", "()V");
        let a = def(
            &mut b,
            "com/x/A",
            "go",
            vec![
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: callee,
                },
                Instruction::ReturnVoid,
            ],
        );
        let b_run = def(&mut b, "com/x/B", "run", vec![Instruction::ReturnVoid]);
        b.define_class("com/x/A", None, ClassFlags::default(), vec![a])
            .unwrap();
        b.define_class("com/x/B", None, ClassFlags::default(), vec![b_run])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        let a_id = dex
            .classes()
            .iter()
            .find(|c| dex.type_name(c.ty) == "com/x/A")
            .unwrap()
            .methods[0]
            .method;
        assert_eq!(g.callees(a_id).len(), 1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.defined_count(), 2);
    }

    #[test]
    fn virtual_dispatch_through_superclass() {
        // C extends B extends A; call site references C.handle but only A
        // defines it — resolution must walk up.
        let mut b = DexBuilder::new();
        let _a_handle = b.intern_method("com/x/A", "handle", "()V");
        let c_handle = b.intern_method("com/x/C", "handle", "()V");
        let caller = def(
            &mut b,
            "com/x/Main",
            "go",
            vec![
                Instruction::Invoke {
                    kind: InvokeKind::Virtual,
                    method: c_handle,
                },
                Instruction::ReturnVoid,
            ],
        );
        let a_def = def(&mut b, "com/x/A", "handle", vec![Instruction::ReturnVoid]);
        b.define_class("com/x/A", None, ClassFlags::default(), vec![a_def])
            .unwrap();
        b.define_class("com/x/B", Some("com/x/A"), ClassFlags::default(), vec![])
            .unwrap();
        b.define_class("com/x/C", Some("com/x/B"), ClassFlags::default(), vec![])
            .unwrap();
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        let main = dex.class_by_name("com/x/Main").unwrap().methods[0].method;
        let callees = g.callees(main);
        assert_eq!(callees.len(), 1);
        assert_eq!(
            dex.type_name(g.defining_class(callees[0]).unwrap()),
            "com/x/A"
        );
    }

    #[test]
    fn external_calls_have_no_edge_but_keep_site() {
        let mut b = DexBuilder::new();
        let load = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let url = b.intern_string("https://x.example");
        let caller = def(
            &mut b,
            "com/x/Main",
            "go",
            vec![
                Instruction::ConstString { string: url },
                Instruction::Invoke {
                    kind: InvokeKind::Virtual,
                    method: load,
                },
                Instruction::ReturnVoid,
            ],
        );
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.sites().len(), 1);
        let site = g.sites()[0];
        assert_eq!(dex.method_name(site.callee_ref), "loadUrl");
        assert_eq!(
            dex.string(site.preceding_string.unwrap()),
            "https://x.example"
        );
    }

    #[test]
    fn preceding_string_does_not_leak_across_calls() {
        let mut b = DexBuilder::new();
        let f = b.intern_method("com/x/Ext", "f", "()V");
        let gm = b.intern_method("com/x/Ext", "g", "()V");
        let s = b.intern_string("only-for-f");
        let caller = def(
            &mut b,
            "com/x/Main",
            "go",
            vec![
                Instruction::ConstString { string: s },
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: f,
                },
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: gm,
                },
                Instruction::ReturnVoid,
            ],
        );
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        assert_eq!(g.sites().len(), 2);
        assert!(g.sites()[0].preceding_string.is_some());
        assert!(g.sites()[1].preceding_string.is_none());
    }

    #[test]
    fn intervening_instructions_clear_the_pending_string() {
        // const-string, <something>, invoke — the string is no longer the
        // argument of the invoke and must not be attached. One invoke per
        // intervening-instruction kind, plus a control site with the
        // const-string directly adjacent.
        let mut b = DexBuilder::new();
        let ty = b.intern_type("com/x/Obj");
        let f = b.intern_method("com/x/Ext", "f", "()V");
        let s = b.intern_string("stale-by-the-time-f-runs");
        let interleaved = [
            Instruction::NewInstance { ty },
            Instruction::Goto { offset: 1 },
            Instruction::IfTest { offset: 1 },
            Instruction::Nop,
        ];
        let mut code = Vec::new();
        for ins in interleaved {
            code.push(Instruction::ConstString { string: s });
            code.push(ins);
            code.push(Instruction::Invoke {
                kind: InvokeKind::Static,
                method: f,
            });
        }
        // Adjacent const-string still attaches.
        code.push(Instruction::ConstString { string: s });
        code.push(Instruction::Invoke {
            kind: InvokeKind::Static,
            method: f,
        });
        code.push(Instruction::ReturnVoid);
        let caller = def(&mut b, "com/x/Main", "go", code);
        b.define_class("com/x/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        assert_eq!(g.sites().len(), 5);
        for (i, site) in g.sites().iter().take(4).enumerate() {
            assert!(
                site.preceding_string.is_none(),
                "site {i}: interleaved instruction must clear the string"
            );
        }
        assert_eq!(
            g.sites()[4].preceding_string,
            Some(s),
            "adjacent const-string must still attach"
        );
    }
}
