//! Reachability traversal and WebView / Custom-Tabs call-site recording —
//! step (5) of the pipeline.

use crate::graph::CallGraph;
use std::collections::HashSet;
use wla_apk::names::{framework, WEBVIEW_CONTENT_METHODS};
use wla_apk::sdex::MethodId;

/// A recorded call to a WebView content method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebViewSite {
    /// Method name (`loadUrl`, …).
    pub method: String,
    /// Binary name of the class containing the call.
    pub caller_class: String,
    /// Binary name of the static receiver type (WebView itself or a
    /// subclass).
    pub receiver_class: String,
    /// String constant preceding the call (URL / JS / bridge name).
    pub argument: Option<String>,
    /// Whether the call is reachable from an entry point.
    pub reachable: bool,
}

/// A recorded Custom-Tabs interaction (`CustomTabsIntent` construction or
/// `launchUrl`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtSite {
    /// `launchUrl`, `build`, or `<init>`.
    pub method: String,
    /// Binary name of the class containing the call.
    pub caller_class: String,
    /// Whether the call is reachable from an entry point.
    pub reachable: bool,
}

/// The complete record for one app.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WebCallRecord {
    /// WebView content-method calls.
    pub webview: Vec<WebViewSite>,
    /// Custom-Tabs interactions.
    pub custom_tabs: Vec<CtSite>,
}

/// BFS over internal edges from `roots`.
pub fn reachable_methods(graph: &CallGraph<'_>, roots: &[MethodId]) -> HashSet<MethodId> {
    let mut seen: HashSet<MethodId> = roots.iter().copied().collect();
    let mut queue: Vec<MethodId> = roots.to_vec();
    while let Some(m) = queue.pop() {
        for &callee in graph.callees(m) {
            if seen.insert(callee) {
                queue.push(callee);
            }
        }
    }
    seen
}

/// Record every WebView content-method call and CT interaction in `graph`,
/// marking reachability from `roots`. `webview_subclasses` is the set of
/// binary names the decompilation step found to extend WebView.
pub fn record_web_calls(
    graph: &CallGraph<'_>,
    roots: &[MethodId],
    webview_subclasses: &HashSet<String>,
) -> WebCallRecord {
    let dex = graph.dex();
    let reachable = reachable_methods(graph, roots);
    let mut record = WebCallRecord::default();

    for site in graph.sites() {
        let callee_ref = dex.method_ref(site.callee_ref);
        let receiver = dex.type_name(callee_ref.class);
        let name = dex.string(callee_ref.name);
        let caller_class = dex.type_name(site.caller_class).to_owned();
        let is_reachable = reachable.contains(&site.caller);

        let is_webview_receiver =
            receiver == framework::WEBVIEW || webview_subclasses.contains(receiver);
        if is_webview_receiver && WEBVIEW_CONTENT_METHODS.contains(&name) {
            record.webview.push(WebViewSite {
                method: name.to_owned(),
                caller_class: caller_class.clone(),
                receiver_class: receiver.to_owned(),
                argument: site.preceding_string.map(|s| dex.string(s).to_owned()),
                reachable: is_reachable,
            });
        }

        if receiver == framework::CUSTOM_TABS_INTENT || receiver == framework::CUSTOM_TABS_BUILDER {
            record.custom_tabs.push(CtSite {
                method: name.to_owned(),
                caller_class,
                reachable: is_reachable,
            });
        }
    }
    record
}

impl WebCallRecord {
    /// Reachable WebView sites only.
    pub fn reachable_webview(&self) -> impl Iterator<Item = &WebViewSite> {
        self.webview.iter().filter(|s| s.reachable)
    }

    /// Reachable CT sites only.
    pub fn reachable_custom_tabs(&self) -> impl Iterator<Item = &CtSite> {
        self.custom_tabs.iter().filter(|s| s.reachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entrypoints::entry_points;
    use wla_apk::sdex::{ClassFlags, DexBuilder, Instruction, InvokeKind, MethodDef};
    use wla_manifest::{Component, ComponentKind, Manifest};

    /// Activity whose onCreate reaches loadUrl through one hop; plus a dead
    /// class calling loadUrl; plus a CT launch; plus a subclass receiver.
    fn build_fixture() -> (wla_apk::Dex, Manifest) {
        let mut b = DexBuilder::new();
        let load = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let sub_load = b.intern_method("com/x/MyWebView", "loadUrl", "(Ljava/lang/String;)V");
        let launch = b.intern_method(
            "androidx/browser/customtabs/CustomTabsIntent",
            "launchUrl",
            "(Landroid/content/Context;Landroid/net/Uri;)V",
        );
        let url = b.intern_string("https://live.example");
        let dead_url = b.intern_string("https://dead.example");

        let helper = b.intern_method("com/x/Helper", "show", "()V");
        let on_create = b.intern_method("com/x/Main", "onCreate", "()V");
        let dead_m = b.intern_method("com/x/Dead", "zombie", "()V");

        b.define_class(
            "com/x/MyWebView",
            Some("android/webkit/WebView"),
            ClassFlags::default(),
            vec![],
        )
        .unwrap();
        b.define_class(
            "com/x/Helper",
            None,
            ClassFlags::default(),
            vec![MethodDef {
                method: helper,
                public: true,
                static_: true,
                code: vec![
                    Instruction::ConstString { string: url },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load,
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: sub_load,
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: launch,
                    },
                    Instruction::ReturnVoid,
                ],
            }],
        )
        .unwrap();
        b.define_class(
            "com/x/Main",
            Some("android/app/Activity"),
            ClassFlags::default(),
            vec![MethodDef {
                method: on_create,
                public: true,
                static_: false,
                code: vec![
                    Instruction::Invoke {
                        kind: InvokeKind::Static,
                        method: helper,
                    },
                    Instruction::ReturnVoid,
                ],
            }],
        )
        .unwrap();
        b.define_class(
            "com/x/Dead",
            None,
            ClassFlags::default(),
            vec![MethodDef {
                method: dead_m,
                public: false,
                static_: true,
                code: vec![
                    Instruction::ConstString { string: dead_url },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load,
                    },
                    Instruction::ReturnVoid,
                ],
            }],
        )
        .unwrap();

        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::simple(ComponentKind::Activity, "com/x/Main"));
        (b.build(), manifest)
    }

    #[test]
    fn reachable_and_dead_sites_distinguished() {
        let (dex, manifest) = build_fixture();
        let g = CallGraph::build(&dex);
        let roots = entry_points(&g, &manifest);
        let subs: HashSet<String> = ["com/x/MyWebView".to_owned()].into();
        let rec = record_web_calls(&g, &roots, &subs);

        // Three WebView sites total: two live (framework + subclass), one dead.
        assert_eq!(rec.webview.len(), 3);
        assert_eq!(rec.reachable_webview().count(), 2);
        let dead: Vec<_> = rec.webview.iter().filter(|s| !s.reachable).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].caller_class, "com/x/Dead");
        assert_eq!(dead[0].argument.as_deref(), Some("https://dead.example"));

        // Subclass receiver recorded as WebView usage.
        assert!(rec
            .webview
            .iter()
            .any(|s| s.receiver_class == "com/x/MyWebView" && s.reachable));

        // CT launch recorded and reachable.
        assert_eq!(rec.custom_tabs.len(), 1);
        assert!(rec.custom_tabs[0].reachable);
        assert_eq!(rec.custom_tabs[0].method, "launchUrl");
    }

    #[test]
    fn subclass_calls_invisible_without_subclass_set() {
        // Without the decompiler's subclass knowledge, the subclass call is
        // missed — this is exactly why the pipeline needs step (3).
        let (dex, manifest) = build_fixture();
        let g = CallGraph::build(&dex);
        let roots = entry_points(&g, &manifest);
        let rec = record_web_calls(&g, &roots, &HashSet::new());
        assert_eq!(
            rec.webview
                .iter()
                .filter(|s| s.receiver_class == "com/x/MyWebView")
                .count(),
            0
        );
    }

    #[test]
    fn reachability_is_transitive_and_terminates_on_cycles() {
        let mut b = DexBuilder::new();
        let f = b.intern_method("com/x/A", "f", "()V");
        let gm = b.intern_method("com/x/A", "g", "()V");
        b.define_class(
            "com/x/A",
            None,
            ClassFlags::default(),
            vec![
                MethodDef {
                    method: f,
                    public: true,
                    static_: true,
                    code: vec![
                        Instruction::Invoke {
                            kind: InvokeKind::Static,
                            method: gm,
                        },
                        Instruction::ReturnVoid,
                    ],
                },
                MethodDef {
                    method: gm,
                    public: true,
                    static_: true,
                    code: vec![
                        Instruction::Invoke {
                            kind: InvokeKind::Static,
                            method: f,
                        },
                        Instruction::ReturnVoid,
                    ],
                },
            ],
        )
        .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        let reach = reachable_methods(&g, &[f]);
        assert_eq!(reach.len(), 2);
    }
}
