//! Reachability traversal and WebView / Custom-Tabs call-site recording —
//! step (5) of the pipeline.
//!
//! Recording is also where strings leave the hot path: every name a site
//! carries (method, classes, package, argument) is interned into the
//! worker's [`LocalInterner`] here, and the caller package is labeled
//! against the SDK catalog while its dotted text is still at hand.
//! Downstream stages (summaries, aggregation) operate purely on the
//! resulting `u32` handles.

use crate::graph::CallGraph;
use std::collections::{HashMap, HashSet};
use wla_apk::names::{
    framework, package_of_into, CT_LAUNCH_METHOD, WEBVIEW_CONTENT_METHODS, WEBVIEW_LOAD_METHODS,
};
use wla_apk::sdex::MethodId;
use wla_intern::{LocalInterner, PkgId, Symbol, U32BuildHasher};
use wla_sdk_index::{LabelCache, LabelId, SdkIndex};

/// A recorded call to a WebView content method. All names are symbols in
/// the interner `record_web_calls` was handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebViewSite {
    /// Method name (`loadUrl`, …).
    pub method: Symbol,
    /// Position of the method in [`WEBVIEW_CONTENT_METHODS`] — Table 7
    /// accounting indexes by this instead of comparing names.
    pub method_idx: u8,
    /// Whether the method *populates* content ([`WEBVIEW_LOAD_METHODS`]).
    pub is_load_method: bool,
    /// Binary name of the class containing the call.
    pub caller_class: Symbol,
    /// Binary name of the static receiver type (WebView itself or a
    /// subclass).
    pub receiver_class: Symbol,
    /// Dotted package of the caller class (`None` for the default package).
    pub caller_package: Option<PkgId>,
    /// Catalog label of the caller package, resolved at record time.
    pub label: LabelId,
    /// String constant preceding the call (URL / JS / bridge name).
    pub argument: Option<Symbol>,
    /// Whether the call is reachable from an entry point.
    pub reachable: bool,
}

/// A recorded Custom-Tabs interaction (`CustomTabsIntent` construction or
/// `launchUrl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtSite {
    /// `launchUrl`, `build`, or `<init>`.
    pub method: Symbol,
    /// Whether this is the content-populating [`CT_LAUNCH_METHOD`].
    pub is_launch: bool,
    /// Binary name of the class containing the call.
    pub caller_class: Symbol,
    /// Dotted package of the caller class (`None` for the default package).
    pub caller_package: Option<PkgId>,
    /// Catalog label of the caller package, resolved at record time.
    pub label: LabelId,
    /// Whether the call is reachable from an entry point.
    pub reachable: bool,
}

/// The complete record for one app.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WebCallRecord {
    /// WebView content-method calls.
    pub webview: Vec<WebViewSite>,
    /// Custom-Tabs interactions.
    pub custom_tabs: Vec<CtSite>,
}

/// BFS over internal edges from `roots`.
pub fn reachable_methods(graph: &CallGraph<'_>, roots: &[MethodId]) -> HashSet<MethodId> {
    let mut seen: HashSet<MethodId> = roots.iter().copied().collect();
    let mut queue: Vec<MethodId> = roots.to_vec();
    while let Some(m) = queue.pop() {
        for &callee in graph.callees(m) {
            if seen.insert(callee) {
                queue.push(callee);
            }
        }
    }
    seen
}

/// Record every WebView content-method call and CT interaction in `graph`,
/// marking reachability from `roots`.
///
/// `webview_subclasses` is the set of (interned) binary names the
/// decompilation step found to extend WebView; its symbols must come from
/// `lexicon`. Caller classes are interned once per dex type (memoized),
/// their packages extracted into a reused scratch buffer and labeled
/// through `labels`.
pub fn record_web_calls(
    graph: &CallGraph<'_>,
    roots: &[MethodId],
    webview_subclasses: &HashSet<Symbol>,
    catalog: &SdkIndex,
    lexicon: &mut LocalInterner,
    labels: &mut LabelCache,
) -> WebCallRecord {
    let dex = graph.dex();
    let reachable = reachable_methods(graph, roots);
    let mut record = WebCallRecord::default();

    // TypeId → (class symbol, package + label). TypeIds are per-dex, so
    // this memo must not outlive the call.
    type CallerInfo = (Symbol, Option<(PkgId, LabelId)>);
    let mut callers: HashMap<u32, CallerInfo, U32BuildHasher> = HashMap::default();
    let mut scratch = String::new();

    for site in graph.sites() {
        let callee_ref = dex.method_ref(site.callee_ref);
        let receiver = dex.type_name(callee_ref.class);
        let name = dex.string(callee_ref.name);

        // Non-inserting subclass probe: a subclass name absent from the
        // lexicon cannot be in `webview_subclasses` (whose symbols came
        // from it), so `get` suffices and framework receivers never bloat
        // the table.
        let is_webview_receiver = receiver == framework::WEBVIEW
            || lexicon
                .get(receiver)
                .is_some_and(|s| webview_subclasses.contains(&s));
        let is_ct_receiver =
            receiver == framework::CUSTOM_TABS_INTENT || receiver == framework::CUSTOM_TABS_BUILDER;
        let method_idx = if is_webview_receiver {
            WEBVIEW_CONTENT_METHODS.iter().position(|m| *m == name)
        } else {
            None
        };
        if method_idx.is_none() && !is_ct_receiver {
            continue;
        }

        let (caller_class, package) = *callers.entry(site.caller_class.0).or_insert_with(|| {
            let class_name = dex.type_name(site.caller_class);
            let sym = lexicon.intern(class_name);
            let pkg = package_of_into(class_name, &mut scratch).then(|| {
                let id = PkgId(lexicon.intern(&scratch));
                (id, labels.label(catalog, id, &scratch))
            });
            (sym, pkg)
        });
        let (caller_package, label) = match package {
            Some((id, l)) => (Some(id), l),
            None => (None, LabelId::Unlabeled),
        };
        let is_reachable = reachable.contains(&site.caller);

        if let Some(idx) = method_idx {
            record.webview.push(WebViewSite {
                method: lexicon.intern(name),
                method_idx: idx as u8,
                is_load_method: WEBVIEW_LOAD_METHODS.contains(&name),
                caller_class,
                receiver_class: lexicon.intern(receiver),
                caller_package,
                label,
                argument: site.preceding_string.map(|s| lexicon.intern(dex.string(s))),
                reachable: is_reachable,
            });
        }

        if is_ct_receiver {
            record.custom_tabs.push(CtSite {
                method: lexicon.intern(name),
                is_launch: name == CT_LAUNCH_METHOD,
                caller_class,
                caller_package,
                label,
                reachable: is_reachable,
            });
        }
    }
    record
}

impl WebCallRecord {
    /// Reachable WebView sites only.
    pub fn reachable_webview(&self) -> impl Iterator<Item = &WebViewSite> {
        self.webview.iter().filter(|s| s.reachable)
    }

    /// Reachable CT sites only.
    pub fn reachable_custom_tabs(&self) -> impl Iterator<Item = &CtSite> {
        self.custom_tabs.iter().filter(|s| s.reachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entrypoints::entry_points;
    use wla_apk::sdex::{ClassFlags, DexBuilder, Instruction, InvokeKind, MethodDef};
    use wla_manifest::{Component, ComponentKind, Manifest};

    /// Activity whose onCreate reaches loadUrl through one hop; plus a dead
    /// class calling loadUrl; plus a CT launch; plus a subclass receiver.
    fn build_fixture() -> (wla_apk::Dex, Manifest) {
        let mut b = DexBuilder::new();
        let load = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let sub_load = b.intern_method("com/x/MyWebView", "loadUrl", "(Ljava/lang/String;)V");
        let launch = b.intern_method(
            "androidx/browser/customtabs/CustomTabsIntent",
            "launchUrl",
            "(Landroid/content/Context;Landroid/net/Uri;)V",
        );
        let url = b.intern_string("https://live.example");
        let dead_url = b.intern_string("https://dead.example");

        let helper = b.intern_method("com/x/Helper", "show", "()V");
        let on_create = b.intern_method("com/x/Main", "onCreate", "()V");
        let dead_m = b.intern_method("com/x/Dead", "zombie", "()V");

        b.define_class(
            "com/x/MyWebView",
            Some("android/webkit/WebView"),
            ClassFlags::default(),
            vec![],
        )
        .unwrap();
        b.define_class(
            "com/x/Helper",
            None,
            ClassFlags::default(),
            vec![MethodDef {
                method: helper,
                public: true,
                static_: true,
                code: vec![
                    Instruction::ConstString { string: url },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load,
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: sub_load,
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: launch,
                    },
                    Instruction::ReturnVoid,
                ],
            }],
        )
        .unwrap();
        b.define_class(
            "com/x/Main",
            Some("android/app/Activity"),
            ClassFlags::default(),
            vec![MethodDef {
                method: on_create,
                public: true,
                static_: false,
                code: vec![
                    Instruction::Invoke {
                        kind: InvokeKind::Static,
                        method: helper,
                    },
                    Instruction::ReturnVoid,
                ],
            }],
        )
        .unwrap();
        b.define_class(
            "com/x/Dead",
            None,
            ClassFlags::default(),
            vec![MethodDef {
                method: dead_m,
                public: false,
                static_: true,
                code: vec![
                    Instruction::ConstString { string: dead_url },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load,
                    },
                    Instruction::ReturnVoid,
                ],
            }],
        )
        .unwrap();

        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::simple(ComponentKind::Activity, "com/x/Main"));
        (b.build(), manifest)
    }

    fn record(
        dex: &wla_apk::Dex,
        manifest: &Manifest,
        subclass_names: &[&str],
        lexicon: &mut LocalInterner,
    ) -> WebCallRecord {
        let g = CallGraph::build(dex);
        let roots = entry_points(&g, manifest);
        let subs: HashSet<Symbol> = subclass_names.iter().map(|n| lexicon.intern(n)).collect();
        let catalog = SdkIndex::new(vec![]);
        let mut labels = LabelCache::new();
        record_web_calls(&g, &roots, &subs, &catalog, lexicon, &mut labels)
    }

    #[test]
    fn reachable_and_dead_sites_distinguished() {
        let (dex, manifest) = build_fixture();
        let mut lexicon = LocalInterner::new();
        let rec = record(&dex, &manifest, &["com/x/MyWebView"], &mut lexicon);

        // Three WebView sites total: two live (framework + subclass), one dead.
        assert_eq!(rec.webview.len(), 3);
        assert_eq!(rec.reachable_webview().count(), 2);
        let dead: Vec<_> = rec.webview.iter().filter(|s| !s.reachable).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(lexicon.resolve(dead[0].caller_class), "com/x/Dead");
        assert_eq!(
            dead[0].argument.map(|s| lexicon.resolve(s)),
            Some("https://dead.example")
        );
        assert_eq!(
            dead[0].caller_package.map(|p| lexicon.resolve(p.symbol())),
            Some("com.x")
        );

        // Subclass receiver recorded as WebView usage, with the Table 7
        // index and load-method flag computed at record time.
        assert!(rec
            .webview
            .iter()
            .any(|s| lexicon.resolve(s.receiver_class) == "com/x/MyWebView" && s.reachable));
        for s in &rec.webview {
            assert_eq!(lexicon.resolve(s.method), "loadUrl");
            assert_eq!(s.method_idx, 0);
            assert!(s.is_load_method);
        }

        // CT launch recorded and reachable.
        assert_eq!(rec.custom_tabs.len(), 1);
        assert!(rec.custom_tabs[0].reachable);
        assert!(rec.custom_tabs[0].is_launch);
        assert_eq!(lexicon.resolve(rec.custom_tabs[0].method), "launchUrl");
    }

    #[test]
    fn subclass_calls_invisible_without_subclass_set() {
        // Without the decompiler's subclass knowledge, the subclass call is
        // missed — this is exactly why the pipeline needs step (3).
        let (dex, manifest) = build_fixture();
        let mut lexicon = LocalInterner::new();
        let rec = record(&dex, &manifest, &[], &mut lexicon);
        assert_eq!(
            rec.webview
                .iter()
                .filter(|s| lexicon.resolve(s.receiver_class) == "com/x/MyWebView")
                .count(),
            0
        );
    }

    #[test]
    fn caller_packages_are_labeled_at_record_time() {
        let (dex, manifest) = build_fixture();
        let g = CallGraph::build(&dex);
        let roots = entry_points(&g, &manifest);
        let mut lexicon = LocalInterner::new();
        let subs: HashSet<Symbol> = [lexicon.intern("com/x/MyWebView")].into();
        let catalog = SdkIndex::paper();
        let mut labels = LabelCache::new();
        let rec = record_web_calls(&g, &roots, &subs, &catalog, &mut lexicon, &mut labels);
        // `com.x` is in no catalog and not obfuscated-looking ("com" is 3
        // chars): everything here is Unlabeled, computed without any
        // downstream string resolution.
        for s in &rec.webview {
            assert_eq!(s.label, LabelId::Unlabeled);
        }
        // Only two distinct caller *classes* record sites (Helper, Dead);
        // the TypeId memo collapses Helper's three sites to one lookup, and
        // both classes share `com.x`, so the label cache sees exactly one
        // miss and one hit.
        assert_eq!((labels.hits, labels.misses), (1, 1));
    }

    #[test]
    fn reachability_is_transitive_and_terminates_on_cycles() {
        let mut b = DexBuilder::new();
        let f = b.intern_method("com/x/A", "f", "()V");
        let gm = b.intern_method("com/x/A", "g", "()V");
        b.define_class(
            "com/x/A",
            None,
            ClassFlags::default(),
            vec![
                MethodDef {
                    method: f,
                    public: true,
                    static_: true,
                    code: vec![
                        Instruction::Invoke {
                            kind: InvokeKind::Static,
                            method: gm,
                        },
                        Instruction::ReturnVoid,
                    ],
                },
                MethodDef {
                    method: gm,
                    public: true,
                    static_: true,
                    code: vec![
                        Instruction::Invoke {
                            kind: InvokeKind::Static,
                            method: f,
                        },
                        Instruction::ReturnVoid,
                    ],
                },
            ],
        )
        .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        let reach = reachable_methods(&g, &[f]);
        assert_eq!(reach.len(), 2);
    }
}
