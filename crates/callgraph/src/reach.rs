//! Reachability traversal and WebView / Custom-Tabs call-site recording —
//! step (5) of the pipeline.
//!
//! Traversal runs on a **reusable bitset + `Vec` worklist**
//! ([`ReachScratch`]): the visited bitmap is indexed by the graph's dense
//! node indices, shared across all of an app's entry-point roots (common
//! subgraphs are walked once), and *cleared, not reallocated* between apps
//! — the worker's `AnalysisCtx` owns one scratch for its whole shard.
//!
//! Recording is also where strings leave the hot path: every name a site
//! carries (method, classes, package, argument) is interned into the
//! worker's [`LocalInterner`] here, and the caller package is labeled
//! against the SDK catalog while its dotted text is still at hand.
//! Downstream stages (summaries, aggregation) operate purely on the
//! resulting `u32` handles.

use crate::graph::{BuildStats, CallGraph, CallSite, UrlOrigin};
use std::collections::{HashMap, HashSet};
use wla_apk::names::{
    framework, package_of_into, CT_LAUNCH_METHOD, WEBVIEW_CONTENT_METHODS, WEBVIEW_LOAD_METHODS,
};
use wla_apk::sdex::{Dex, MethodId};
use wla_intern::{LocalInterner, PkgId, Symbol, U32BuildHasher};
use wla_sdk_index::{LabelCache, LabelId, SdkIndex};

/// A recorded call to a WebView content method. All names are symbols in
/// the interner `record_web_calls` was handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebViewSite {
    /// Method name (`loadUrl`, …).
    pub method: Symbol,
    /// Position of the method in [`WEBVIEW_CONTENT_METHODS`] — Table 7
    /// accounting indexes by this instead of comparing names.
    pub method_idx: u8,
    /// Whether the method *populates* content ([`WEBVIEW_LOAD_METHODS`]).
    pub is_load_method: bool,
    /// Binary name of the class containing the call.
    pub caller_class: Symbol,
    /// Binary name of the static receiver type (WebView itself or a
    /// subclass).
    pub receiver_class: Symbol,
    /// Dotted package of the caller class (`None` for the default package).
    pub caller_package: Option<PkgId>,
    /// Catalog label of the caller package, resolved at record time.
    pub label: LabelId,
    /// Resolved string argument of the call (URL / JS / bridge name),
    /// when provenance analysis pinned it to a single constant.
    pub argument: Option<Symbol>,
    /// How the URL argument resolved (constant / unknown / conflicting).
    pub origin: UrlOrigin,
    /// Whether the call is reachable from an entry point.
    pub reachable: bool,
}

/// A recorded Custom-Tabs interaction (`CustomTabsIntent` construction or
/// `launchUrl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtSite {
    /// `launchUrl`, `build`, or `<init>`.
    pub method: Symbol,
    /// Whether this is the content-populating [`CT_LAUNCH_METHOD`].
    pub is_launch: bool,
    /// Binary name of the class containing the call.
    pub caller_class: Symbol,
    /// Dotted package of the caller class (`None` for the default package).
    pub caller_package: Option<PkgId>,
    /// Catalog label of the caller package, resolved at record time.
    pub label: LabelId,
    /// Resolved URL argument for `launchUrl` sites, when provenance
    /// analysis pinned it to a single constant.
    pub argument: Option<Symbol>,
    /// How the URL argument resolved (constant / unknown / conflicting).
    pub origin: UrlOrigin,
    /// Whether the call is reachable from an entry point.
    pub reachable: bool,
}

/// The complete record for one app.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WebCallRecord {
    /// WebView content-method calls.
    pub webview: Vec<WebViewSite>,
    /// Custom-Tabs interactions.
    pub custom_tabs: Vec<CtSite>,
}

/// Reusable traversal scratch: a visited bitmap over dense node indices
/// plus a worklist. Owned by the worker's `AnalysisCtx` and cleared (never
/// shrunk) between apps, so steady-state traversal is allocation-free.
#[derive(Debug, Default)]
pub struct ReachScratch {
    /// Visited bitmap, one bit per dense node index.
    visited: Vec<u64>,
    /// DFS worklist of dense node indices.
    worklist: Vec<u32>,
    /// Traversals served without growing the bitmap.
    pub reuses: u64,
    /// Traversals that had to grow the bitmap (first app, or a bigger dex).
    pub grows: u64,
    /// Total CSR edges scanned across all traversals.
    pub edges_traversed: u64,
}

impl ReachScratch {
    /// Fresh scratch (first traversal will count as a grow).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset the bitmap for a graph of `nodes` methods, growing only if a
    /// previous app's dex was smaller.
    fn begin(&mut self, nodes: usize) {
        let words = nodes.div_ceil(64);
        if self.visited.len() < words {
            self.visited.resize(words, 0);
            self.grows += 1;
        } else {
            self.reuses += 1;
        }
        self.visited[..words].fill(0);
        self.worklist.clear();
    }

    /// Set the bit for `idx`; true if it was previously unset.
    #[inline]
    fn mark(&mut self, idx: u32) -> bool {
        let word = &mut self.visited[(idx >> 6) as usize];
        let bit = 1u64 << (idx & 63);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Whether dense node `idx` was reached by the last [`mark_reachable`].
    ///
    /// [`mark_reachable`]: ReachScratch::mark_reachable
    #[inline]
    pub fn is_marked(&self, idx: u32) -> bool {
        self.visited[(idx >> 6) as usize] & (1u64 << (idx & 63)) != 0
    }

    /// Traverse `graph` from all `roots` at once, leaving the visited
    /// bitmap populated until the next call. Roots not defined in the dex
    /// (external refs) contribute nothing, matching the hash path where
    /// they had no out-edges.
    pub fn mark_reachable(&mut self, graph: &CallGraph<'_>, roots: &[MethodId]) {
        self.begin(graph.node_count());
        for &root in roots {
            if let Some(idx) = graph.node_index(root) {
                if self.mark(idx) {
                    self.worklist.push(idx);
                }
            }
        }
        while let Some(v) = self.worklist.pop() {
            let callees = graph.callee_indices(v);
            self.edges_traversed += callees.len() as u64;
            for &t in callees {
                if self.mark(t) {
                    self.worklist.push(t);
                }
            }
        }
    }
}

/// Per-worker call-graph counters, merged into `PipelineStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallGraphCounters {
    /// Call graphs built (≥ apps analyzed; one per dex).
    pub graphs: u64,
    /// Virtual resolutions served by an already-built vtable.
    pub vtable_hits: u64,
    /// Vtables built (one per receiver class needing hierarchy search).
    pub vtable_misses: u64,
    /// CSR edges across all graphs (after dedup).
    pub edges: u64,
    /// Duplicate same-callee invokes collapsed by the CSR dedup.
    pub duplicate_edges: u64,
    /// Traversals that reused the bitset without growing it.
    pub bitset_reuses: u64,
    /// Traversals that grew the bitset.
    pub bitset_grows: u64,
    /// CSR edges scanned by reachability traversals.
    pub edges_traversed: u64,
}

impl CallGraphCounters {
    /// Fold one graph's build stats in.
    pub fn absorb_build(&mut self, stats: &BuildStats, edge_count: usize) {
        self.graphs += 1;
        self.vtable_hits += stats.vtable_hits;
        self.vtable_misses += stats.vtable_misses;
        self.edges += edge_count as u64;
        self.duplicate_edges += stats.duplicate_edges;
    }

    /// Copy the scratch's traversal counters in (call once per worker,
    /// after its shard is done — the scratch accumulates across apps).
    pub fn absorb_scratch(&mut self, scratch: &ReachScratch) {
        self.bitset_reuses += scratch.reuses;
        self.bitset_grows += scratch.grows;
        self.edges_traversed += scratch.edges_traversed;
    }

    /// Merge another worker's counters.
    pub fn merge(&mut self, other: &CallGraphCounters) {
        self.graphs += other.graphs;
        self.vtable_hits += other.vtable_hits;
        self.vtable_misses += other.vtable_misses;
        self.edges += other.edges;
        self.duplicate_edges += other.duplicate_edges;
        self.bitset_reuses += other.bitset_reuses;
        self.bitset_grows += other.bitset_grows;
        self.edges_traversed += other.edges_traversed;
    }

    /// Fraction of virtual resolutions served from cache.
    pub fn vtable_hit_rate(&self) -> f64 {
        let total = self.vtable_hits + self.vtable_misses;
        if total == 0 {
            0.0
        } else {
            self.vtable_hits as f64 / total as f64
        }
    }
}

/// BFS over internal edges from `roots`, as a set of method ids.
///
/// Compat wrapper over [`ReachScratch::mark_reachable`] for callers that
/// want a queryable set; like the old hash path, the result contains every
/// root (even external refs) plus every defined method reached.
pub fn reachable_methods(graph: &CallGraph<'_>, roots: &[MethodId]) -> HashSet<MethodId> {
    let mut scratch = ReachScratch::new();
    scratch.mark_reachable(graph, roots);
    let mut seen: HashSet<MethodId> = roots.iter().copied().collect();
    for idx in 0..graph.node_count() as u32 {
        if scratch.is_marked(idx) {
            seen.insert(graph.method_at(idx));
        }
    }
    seen
}

/// Record every WebView content-method call and CT interaction in `graph`,
/// marking reachability from `roots`, using the caller-owned `scratch` for
/// the traversal (allocation-free after the first app).
///
/// `webview_subclasses` is the set of (interned) binary names the
/// decompilation step found to extend WebView; its symbols must come from
/// `lexicon`. Caller classes are interned once per dex type (memoized),
/// their packages extracted into a reused scratch buffer and labeled
/// through `labels`.
pub fn record_web_calls_with(
    graph: &CallGraph<'_>,
    roots: &[MethodId],
    webview_subclasses: &HashSet<Symbol>,
    catalog: &SdkIndex,
    lexicon: &mut LocalInterner,
    labels: &mut LabelCache,
    scratch: &mut ReachScratch,
) -> WebCallRecord {
    scratch.mark_reachable(graph, roots);
    record_sites(
        graph.dex(),
        graph.sites(),
        |caller| {
            graph
                .node_index(caller)
                .is_some_and(|idx| scratch.is_marked(idx))
        },
        webview_subclasses,
        catalog,
        lexicon,
        labels,
    )
}

/// [`record_web_calls_with`] with a throwaway scratch — convenience for
/// tests and one-shot callers.
pub fn record_web_calls(
    graph: &CallGraph<'_>,
    roots: &[MethodId],
    webview_subclasses: &HashSet<Symbol>,
    catalog: &SdkIndex,
    lexicon: &mut LocalInterner,
    labels: &mut LabelCache,
) -> WebCallRecord {
    let mut scratch = ReachScratch::new();
    record_web_calls_with(
        graph,
        roots,
        webview_subclasses,
        catalog,
        lexicon,
        labels,
        &mut scratch,
    )
}

/// The site-recording loop, shared between the CSR path and the hash
/// oracle so both provably apply identical semantics: only the
/// reachability predicate differs.
pub(crate) fn record_sites(
    dex: &Dex,
    sites: &[CallSite],
    mut is_reachable: impl FnMut(MethodId) -> bool,
    webview_subclasses: &HashSet<Symbol>,
    catalog: &SdkIndex,
    lexicon: &mut LocalInterner,
    labels: &mut LabelCache,
) -> WebCallRecord {
    let mut record = WebCallRecord::default();

    // TypeId → (class symbol, package + label). TypeIds are per-dex, so
    // this memo must not outlive the call.
    type CallerInfo = (Symbol, Option<(PkgId, LabelId)>);
    let mut callers: HashMap<u32, CallerInfo, U32BuildHasher> = HashMap::default();
    let mut scratch = String::new();

    for site in sites {
        let callee_ref = dex.method_ref(site.callee_ref);
        let receiver = dex.type_name(callee_ref.class);
        let name = dex.string(callee_ref.name);

        // Non-inserting subclass probe: a subclass name absent from the
        // lexicon cannot be in `webview_subclasses` (whose symbols came
        // from it), so `get` suffices and framework receivers never bloat
        // the table.
        let is_webview_receiver = receiver == framework::WEBVIEW
            || lexicon
                .get(receiver)
                .is_some_and(|s| webview_subclasses.contains(&s));
        let is_ct_receiver =
            receiver == framework::CUSTOM_TABS_INTENT || receiver == framework::CUSTOM_TABS_BUILDER;
        let method_idx = if is_webview_receiver {
            WEBVIEW_CONTENT_METHODS.iter().position(|m| *m == name)
        } else {
            None
        };
        if method_idx.is_none() && !is_ct_receiver {
            continue;
        }

        let (caller_class, package) = *callers.entry(site.caller_class.0).or_insert_with(|| {
            let class_name = dex.type_name(site.caller_class);
            let sym = lexicon.intern(class_name);
            let pkg = package_of_into(class_name, &mut scratch).then(|| {
                let id = PkgId(lexicon.intern(&scratch));
                (id, labels.label(catalog, id, &scratch))
            });
            (sym, pkg)
        });
        let (caller_package, label) = match package {
            Some((id, l)) => (Some(id), l),
            None => (None, LabelId::Unlabeled),
        };
        let reachable = is_reachable(site.caller);
        let argument = site
            .provenance
            .constant()
            .map(|s| lexicon.intern(dex.string(s)));
        let origin = site.provenance.origin();

        if let Some(idx) = method_idx {
            record.webview.push(WebViewSite {
                method: lexicon.intern(name),
                method_idx: idx as u8,
                is_load_method: WEBVIEW_LOAD_METHODS.contains(&name),
                caller_class,
                receiver_class: lexicon.intern(receiver),
                caller_package,
                label,
                argument,
                origin,
                reachable,
            });
        }

        if is_ct_receiver {
            record.custom_tabs.push(CtSite {
                method: lexicon.intern(name),
                is_launch: name == CT_LAUNCH_METHOD,
                caller_class,
                caller_package,
                label,
                argument,
                origin,
                reachable,
            });
        }
    }
    record
}

impl WebCallRecord {
    /// Reachable WebView sites only.
    pub fn reachable_webview(&self) -> impl Iterator<Item = &WebViewSite> {
        self.webview.iter().filter(|s| s.reachable)
    }

    /// Reachable CT sites only.
    pub fn reachable_custom_tabs(&self) -> impl Iterator<Item = &CtSite> {
        self.custom_tabs.iter().filter(|s| s.reachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entrypoints::entry_points;
    use crate::provenance_oracle;
    use wla_apk::sdex::{ClassFlags, DexBuilder, Instruction, InvokeKind, MethodDef, Reg};
    use wla_manifest::{Component, ComponentKind, Manifest};

    /// Activity whose onCreate reaches loadUrl through one hop; plus a dead
    /// class calling loadUrl; plus a CT launch; plus a subclass receiver.
    fn build_fixture() -> (wla_apk::Dex, Manifest) {
        let mut b = DexBuilder::new();
        let load = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let sub_load = b.intern_method("com/x/MyWebView", "loadUrl", "(Ljava/lang/String;)V");
        let launch = b.intern_method(
            "androidx/browser/customtabs/CustomTabsIntent",
            "launchUrl",
            "(Landroid/content/Context;Landroid/net/Uri;)V",
        );
        let url = b.intern_string("https://live.example");
        let dead_url = b.intern_string("https://dead.example");

        let helper = b.intern_method("com/x/Helper", "show", "()V");
        let on_create = b.intern_method("com/x/Main", "onCreate", "()V");
        let dead_m = b.intern_method("com/x/Dead", "zombie", "()V");

        b.define_class(
            "com/x/MyWebView",
            Some("android/webkit/WebView"),
            ClassFlags::default(),
            vec![],
        )
        .unwrap();
        b.define_class(
            "com/x/Helper",
            None,
            ClassFlags::default(),
            vec![MethodDef::new(
                helper,
                true,
                true,
                vec![
                    Instruction::ConstString {
                        dst: Reg(0),
                        string: url,
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load,
                        args: vec![Reg(0)],
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: sub_load,
                        args: vec![Reg(0)],
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: launch,
                        args: vec![Reg(0)],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        b.define_class(
            "com/x/Main",
            Some("android/app/Activity"),
            ClassFlags::default(),
            vec![MethodDef::new(
                on_create,
                true,
                false,
                vec![
                    Instruction::Invoke {
                        kind: InvokeKind::Static,
                        method: helper,
                        args: vec![],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        b.define_class(
            "com/x/Dead",
            None,
            ClassFlags::default(),
            vec![MethodDef::new(
                dead_m,
                false,
                true,
                vec![
                    Instruction::ConstString {
                        dst: Reg(0),
                        string: dead_url,
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load,
                        args: vec![Reg(0)],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();

        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::simple(ComponentKind::Activity, "com/x/Main"));
        (b.build(), manifest)
    }

    fn record(
        dex: &wla_apk::Dex,
        manifest: &Manifest,
        subclass_names: &[&str],
        lexicon: &mut LocalInterner,
    ) -> WebCallRecord {
        let mut g = CallGraph::build(dex);
        provenance_oracle::annotate(dex, g.sites_mut());
        let roots = entry_points(&g, manifest);
        let subs: HashSet<Symbol> = subclass_names.iter().map(|n| lexicon.intern(n)).collect();
        let catalog = SdkIndex::new(vec![]);
        let mut labels = LabelCache::new();
        record_web_calls(&g, &roots, &subs, &catalog, lexicon, &mut labels)
    }

    #[test]
    fn reachable_and_dead_sites_distinguished() {
        let (dex, manifest) = build_fixture();
        let mut lexicon = LocalInterner::new();
        let rec = record(&dex, &manifest, &["com/x/MyWebView"], &mut lexicon);

        // Three WebView sites total: two live (framework + subclass), one dead.
        assert_eq!(rec.webview.len(), 3);
        assert_eq!(rec.reachable_webview().count(), 2);
        let dead: Vec<_> = rec.webview.iter().filter(|s| !s.reachable).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(lexicon.resolve(dead[0].caller_class), "com/x/Dead");
        assert_eq!(
            dead[0].argument.map(|s| lexicon.resolve(s)),
            Some("https://dead.example")
        );
        assert_eq!(
            dead[0].caller_package.map(|p| lexicon.resolve(p.symbol())),
            Some("com.x")
        );

        // Subclass receiver recorded as WebView usage, with the Table 7
        // index and load-method flag computed at record time.
        assert!(rec
            .webview
            .iter()
            .any(|s| lexicon.resolve(s.receiver_class) == "com/x/MyWebView" && s.reachable));
        for s in &rec.webview {
            assert_eq!(lexicon.resolve(s.method), "loadUrl");
            assert_eq!(s.method_idx, 0);
            assert!(s.is_load_method);
        }

        // CT launch recorded and reachable.
        assert_eq!(rec.custom_tabs.len(), 1);
        assert!(rec.custom_tabs[0].reachable);
        assert!(rec.custom_tabs[0].is_launch);
        assert_eq!(lexicon.resolve(rec.custom_tabs[0].method), "launchUrl");
    }

    #[test]
    fn subclass_calls_invisible_without_subclass_set() {
        // Without the decompiler's subclass knowledge, the subclass call is
        // missed — this is exactly why the pipeline needs step (3).
        let (dex, manifest) = build_fixture();
        let mut lexicon = LocalInterner::new();
        let rec = record(&dex, &manifest, &[], &mut lexicon);
        assert_eq!(
            rec.webview
                .iter()
                .filter(|s| lexicon.resolve(s.receiver_class) == "com/x/MyWebView")
                .count(),
            0
        );
    }

    #[test]
    fn caller_packages_are_labeled_at_record_time() {
        let (dex, manifest) = build_fixture();
        let g = CallGraph::build(&dex);
        let roots = entry_points(&g, &manifest);
        let mut lexicon = LocalInterner::new();
        let subs: HashSet<Symbol> = [lexicon.intern("com/x/MyWebView")].into();
        let catalog = SdkIndex::paper();
        let mut labels = LabelCache::new();
        let rec = record_web_calls(&g, &roots, &subs, &catalog, &mut lexicon, &mut labels);
        // `com.x` is in no catalog and not obfuscated-looking ("com" is 3
        // chars): everything here is Unlabeled, computed without any
        // downstream string resolution.
        for s in &rec.webview {
            assert_eq!(s.label, LabelId::Unlabeled);
        }
        // Only two distinct caller *classes* record sites (Helper, Dead);
        // the TypeId memo collapses Helper's three sites to one lookup, and
        // both classes share `com.x`, so the label cache sees exactly one
        // miss and one hit.
        assert_eq!((labels.hits, labels.misses), (1, 1));
    }

    #[test]
    fn reachability_is_transitive_and_terminates_on_cycles() {
        let mut b = DexBuilder::new();
        let f = b.intern_method("com/x/A", "f", "()V");
        let gm = b.intern_method("com/x/A", "g", "()V");
        b.define_class(
            "com/x/A",
            None,
            ClassFlags::default(),
            vec![
                MethodDef::new(
                    f,
                    true,
                    true,
                    vec![
                        Instruction::Invoke {
                            kind: InvokeKind::Static,
                            method: gm,
                            args: vec![],
                        },
                        Instruction::ReturnVoid,
                    ],
                ),
                MethodDef::new(
                    gm,
                    true,
                    true,
                    vec![
                        Instruction::Invoke {
                            kind: InvokeKind::Static,
                            method: f,
                            args: vec![],
                        },
                        Instruction::ReturnVoid,
                    ],
                ),
            ],
        )
        .unwrap();
        let dex = b.build();
        let g = CallGraph::build(&dex);
        let reach = reachable_methods(&g, &[f]);
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn scratch_is_reused_across_graphs_without_state_leaks() {
        // Two different dexes through the same scratch: the second (smaller)
        // traversal must not see the first's visited bits, and the counters
        // must show one grow + one reuse.
        let (dex, manifest) = build_fixture();
        let g = CallGraph::build(&dex);
        let roots = entry_points(&g, &manifest);
        let mut scratch = ReachScratch::new();
        scratch.mark_reachable(&g, &roots);
        assert_eq!((scratch.grows, scratch.reuses), (1, 0));
        let first_marked: Vec<bool> = (0..g.node_count() as u32)
            .map(|i| scratch.is_marked(i))
            .collect();
        assert!(first_marked.iter().any(|&m| m));
        assert!(first_marked.iter().any(|&m| !m), "Dead::zombie stays dead");

        // Same graph, no roots: everything must read unvisited again.
        scratch.mark_reachable(&g, &[]);
        assert_eq!((scratch.grows, scratch.reuses), (1, 1));
        assert!((0..g.node_count() as u32).all(|i| !scratch.is_marked(i)));

        // And a re-run from the real roots reproduces the first bitmap.
        scratch.mark_reachable(&g, &roots);
        let third: Vec<bool> = (0..g.node_count() as u32)
            .map(|i| scratch.is_marked(i))
            .collect();
        assert_eq!(first_marked, third);
    }
}
