//! Entry-point discovery.
//!
//! "An Android app lacks a 'main' function … in order to exhaustively
//! identify the usage of WebViews and CTs in an app, we traversed the app's
//! entire call graph via all entry points" (§3.1.3). Entry points are:
//!
//! * lifecycle methods of every manifest-declared component, looked up on
//!   the component class *and its defined subclasses* (frameworks
//!   instantiate the manifest class, but apps often declare a base class
//!   and register a subclass — both directions are covered);
//! * GUI/system event callbacks (`onClick`, `onReceive`, `run`, …) defined
//!   on any class, since listeners can be registered from anywhere.

use crate::graph::CallGraph;
use wla_apk::sdex::MethodId;
use wla_manifest::Manifest;

/// Event-callback method names treated as externally invokable.
pub const CALLBACK_METHODS: [&str; 8] = [
    "onClick",
    "onTouch",
    "onLongClick",
    "onItemClick",
    "onMenuItemClick",
    "onPageFinished",
    "run",
    "call",
];

/// Compute the traversal roots for `graph` given the app manifest.
pub fn entry_points(graph: &CallGraph<'_>, manifest: &Manifest) -> Vec<MethodId> {
    let dex = graph.dex();
    let mut roots = Vec::new();

    for class in dex.classes() {
        let class_name = dex.type_name(class.ty);
        // Is this class (or any defined ancestor) a manifest component?
        let component = manifest.component_by_class(class_name).or_else(|| {
            dex.superclasses(class.ty)
                .find_map(|a| manifest.component_by_class(dex.type_name(a)))
        });

        for m in &class.methods {
            let name = dex.method_name(m.method);
            let is_lifecycle = component
                .map(|c| c.kind.lifecycle_methods().contains(&name))
                .unwrap_or(false);
            let is_callback = m.public && CALLBACK_METHODS.contains(&name);
            if is_lifecycle || is_callback {
                roots.push(m.method);
            }
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_apk::sdex::{ClassFlags, DexBuilder, Instruction, MethodDef};
    use wla_manifest::{Component, ComponentKind};

    fn dex_with_methods(defs: &[(&str, Option<&str>, &str, bool)]) -> wla_apk::Dex {
        // (class, superclass, method name, public)
        let mut b = DexBuilder::new();
        let mut per_class: std::collections::BTreeMap<String, Vec<MethodDef>> =
            std::collections::BTreeMap::new();
        let mut supers: std::collections::BTreeMap<String, Option<String>> =
            std::collections::BTreeMap::new();
        for &(class, sup, method, public) in defs {
            let m = b.intern_method(class, method, "()V");
            per_class
                .entry(class.to_owned())
                .or_default()
                .push(MethodDef::new(
                    m,
                    public,
                    false,
                    vec![Instruction::ReturnVoid],
                ));
            supers.insert(class.to_owned(), sup.map(str::to_owned));
        }
        for (class, methods) in per_class {
            b.define_class(
                &class,
                supers[&class].as_deref(),
                ClassFlags {
                    public: true,
                    ..Default::default()
                },
                methods,
            )
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn component_lifecycle_methods_are_roots() {
        let dex = dex_with_methods(&[
            ("com/x/Main", Some("android/app/Activity"), "onCreate", true),
            ("com/x/Main", Some("android/app/Activity"), "helper", true),
        ]);
        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::simple(ComponentKind::Activity, "com/x/Main"));
        let g = CallGraph::build(&dex);
        let roots = entry_points(&g, &manifest);
        let names: Vec<_> = roots.iter().map(|&m| dex.method_name(m)).collect();
        assert!(names.contains(&"onCreate"));
        assert!(!names.contains(&"helper"));
    }

    #[test]
    fn subclass_of_component_counts() {
        let dex = dex_with_methods(&[
            ("com/x/Base", Some("android/app/Activity"), "util", true),
            ("com/x/Child", Some("com/x/Base"), "onResume", true),
        ]);
        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::simple(ComponentKind::Activity, "com/x/Base"));
        let g = CallGraph::build(&dex);
        let roots = entry_points(&g, &manifest);
        let names: Vec<_> = roots.iter().map(|&m| dex.method_name(m)).collect();
        assert!(names.contains(&"onResume"));
    }

    #[test]
    fn service_lifecycle_differs_from_activity() {
        let dex = dex_with_methods(&[
            (
                "com/x/Svc",
                Some("android/app/Service"),
                "onStartCommand",
                true,
            ),
            ("com/x/Svc", Some("android/app/Service"), "onResume", true),
        ]);
        let mut manifest = Manifest::new("com.x");
        manifest
            .components
            .push(Component::simple(ComponentKind::Service, "com/x/Svc"));
        let g = CallGraph::build(&dex);
        let names: Vec<_> = entry_points(&g, &manifest)
            .iter()
            .map(|&m| dex.method_name(m))
            .collect();
        assert!(names.contains(&"onStartCommand"));
        // onResume is not a Service lifecycle method.
        assert!(!names.contains(&"onResume"));
    }

    #[test]
    fn public_callbacks_are_roots_anywhere() {
        let dex = dex_with_methods(&[
            ("com/x/Listener", None, "onClick", true),
            ("com/x/Listener", None, "onClickPrivateish", true),
            ("com/x/Hidden", None, "onClick", false),
        ]);
        let manifest = Manifest::new("com.x");
        let g = CallGraph::build(&dex);
        let roots = entry_points(&g, &manifest);
        assert_eq!(roots.len(), 1);
        assert_eq!(dex.method_name(roots[0]), "onClick");
    }

    #[test]
    fn no_components_no_lifecycle_roots() {
        let dex = dex_with_methods(&[("com/x/A", None, "onCreate", true)]);
        let manifest = Manifest::new("com.x");
        let g = CallGraph::build(&dex);
        assert!(entry_points(&g, &manifest).is_empty());
    }
}
