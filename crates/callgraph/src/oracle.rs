//! The pre-CSR hash-based call-graph path, kept as the correctness oracle
//! (`reach_oracle`). Deliberately not optimized — its value is being the
//! obviously-correct old semantics: `HashMap` adjacency with duplicate
//! edges retained, a superclass-chain walk per virtual invoke site, and a
//! `HashSet` BFS. `tests/reach_equivalence.rs` pins the CSR + bitset path
//! against it on randomized dexes; the `callgraph` bench uses it as the
//! ablation baseline.

use crate::graph::{CallSite, Provenance};
use crate::reach::{record_sites, WebCallRecord};
use std::collections::{HashMap, HashSet};
use wla_apk::sdex::{Dex, Instruction, InvokeKind, MethodId, TypeId};
use wla_intern::{LocalInterner, Symbol};
use wla_sdk_index::{LabelCache, SdkIndex};

/// The old hash-based call graph: adjacency lists keyed by `MethodId`,
/// duplicate edges preserved in call-site order.
#[derive(Debug)]
pub struct HashCallGraph<'d> {
    dex: &'d Dex,
    defined: HashMap<MethodId, TypeId>,
    edges: HashMap<MethodId, Vec<MethodId>>,
    sites: Vec<CallSite>,
}

impl<'d> HashCallGraph<'d> {
    /// Build with the original single-pass algorithm: exact-signature probe
    /// plus an ancestor-chain walk per virtual/interface/super site. Maps
    /// are pre-sized from the dex tables (the one optimization retained).
    pub fn build(dex: &'d Dex) -> Self {
        let mut defined: HashMap<MethodId, TypeId> = HashMap::with_capacity(dex.method_count());
        let mut by_signature: HashMap<(u32, u32, u32), MethodId> =
            HashMap::with_capacity(dex.method_count());
        for class in dex.classes() {
            for m in &class.methods {
                defined.insert(m.method, class.ty);
                let r = dex.method_ref(m.method);
                by_signature.insert((class.ty.0, r.name, r.descriptor), m.method);
            }
        }

        let mut edges: HashMap<MethodId, Vec<MethodId>> = HashMap::with_capacity(defined.len());
        let mut sites: Vec<CallSite> = Vec::with_capacity(dex.instruction_count());
        for class in dex.classes() {
            for m in &class.methods {
                for ins in &m.code {
                    if let Instruction::Invoke { kind, method, .. } = ins {
                        sites.push(CallSite {
                            caller: m.method,
                            caller_class: class.ty,
                            callee_ref: *method,
                            kind: *kind,
                            provenance: Provenance::Unknown,
                        });
                        if let Some(target) = resolve(dex, &by_signature, *method, *kind) {
                            edges.entry(m.method).or_default().push(target);
                        }
                    }
                }
            }
        }

        HashCallGraph {
            dex,
            defined,
            edges,
            sites,
        }
    }

    /// The dex this graph was built over.
    pub fn dex(&self) -> &'d Dex {
        self.dex
    }

    /// Every call site in program order.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Mutable view of the sites, for provenance annotation.
    pub fn sites_mut(&mut self) -> &mut [CallSite] {
        &mut self.sites
    }

    /// Resolved internal callees of `m` (duplicates included).
    pub fn callees(&self, m: MethodId) -> &[MethodId] {
        self.edges.get(&m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Class defining `m`, if `m` is defined in this dex.
    pub fn defining_class(&self, m: MethodId) -> Option<TypeId> {
        self.defined.get(&m).copied()
    }

    /// Number of defined methods.
    pub fn defined_count(&self) -> usize {
        self.defined.len()
    }

    /// Total internal edge count (duplicates included).
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }
}

/// The original per-site resolution: exact signature, then the superclass
/// chain for virtual-ish kinds.
fn resolve(
    dex: &Dex,
    by_signature: &HashMap<(u32, u32, u32), MethodId>,
    callee_ref: MethodId,
    kind: InvokeKind,
) -> Option<MethodId> {
    let r = dex.method_ref(callee_ref);
    if let Some(&m) = by_signature.get(&(r.class.0, r.name, r.descriptor)) {
        return Some(m);
    }
    match kind {
        InvokeKind::Static | InvokeKind::Direct => None,
        InvokeKind::Virtual | InvokeKind::Interface | InvokeKind::Super => dex
            .superclasses(r.class)
            .find_map(|a| by_signature.get(&(a.0, r.name, r.descriptor)).copied()),
    }
}

/// The old `HashSet` BFS from `roots`.
pub fn reachable_methods_oracle(
    graph: &HashCallGraph<'_>,
    roots: &[MethodId],
) -> HashSet<MethodId> {
    let mut seen: HashSet<MethodId> = roots.iter().copied().collect();
    let mut queue: Vec<MethodId> = roots.to_vec();
    while let Some(m) = queue.pop() {
        for &callee in graph.callees(m) {
            if seen.insert(callee) {
                queue.push(callee);
            }
        }
    }
    seen
}

/// Oracle analog of `record_web_calls`: identical recording loop (shared
/// via `record_sites`), reachability from the hash BFS.
pub fn record_web_calls_oracle(
    graph: &HashCallGraph<'_>,
    roots: &[MethodId],
    webview_subclasses: &HashSet<Symbol>,
    catalog: &SdkIndex,
    lexicon: &mut LocalInterner,
    labels: &mut LabelCache,
) -> WebCallRecord {
    let reachable = reachable_methods_oracle(graph, roots);
    record_sites(
        graph.dex(),
        graph.sites(),
        |caller| reachable.contains(&caller),
        webview_subclasses,
        catalog,
        lexicon,
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use wla_apk::sdex::{ClassFlags, DexBuilder, MethodDef};

    #[test]
    fn oracle_and_csr_agree_on_a_small_graph() {
        let mut b = DexBuilder::new();
        let callee = b.intern_method("com/x/B", "run", "()V");
        let a = MethodDef::new(
            b.intern_method("com/x/A", "go", "()V"),
            true,
            true,
            vec![
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: callee,
                    args: vec![],
                },
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: callee,
                    args: vec![],
                },
                Instruction::ReturnVoid,
            ],
        );
        let b_run = MethodDef::new(callee, true, false, vec![Instruction::ReturnVoid]);
        b.define_class("com/x/A", None, ClassFlags::default(), vec![a])
            .unwrap();
        b.define_class("com/x/B", None, ClassFlags::default(), vec![b_run])
            .unwrap();
        let dex = b.build();

        let oracle = HashCallGraph::build(&dex);
        let csr = CallGraph::build(&dex);
        let a_id = dex.class_by_name("com/x/A").unwrap().methods[0].method;

        // Oracle keeps the duplicate edge, CSR dedups it — but reachability
        // and sites agree.
        assert_eq!(oracle.edge_count(), 2);
        assert_eq!(csr.edge_count(), 1);
        assert_eq!(oracle.sites(), csr.sites());
        assert_eq!(
            reachable_methods_oracle(&oracle, &[a_id]),
            crate::reach::reachable_methods(&csr, &[a_id])
        );
        assert_eq!(oracle.defining_class(callee), csr.defining_class(callee));
    }
}
