//! Linear pending-string provenance oracle.
//!
//! This is the paper's original adjacency heuristic, extracted from the
//! call-graph builders into a standalone resolver: a `const-string`
//! "arms" a pending URL, the next invoke consumes it, and anything that
//! could disturb the value in between disarms it. It is deliberately
//! register-blind — it models the *textual* adjacency real decompiler
//! output exhibits, not the dataflow — which makes it the baseline the
//! constant-propagation pass must dominate.
//!
//! One deliberate refinement over the historical in-builder loop: `nop`
//! is transparent. The corpus generator pads method bodies with `Nop`
//! noise, and a padding instruction carries no semantics, so it must not
//! clear the pending string. (The old behaviour treated *every*
//! non-invoke instruction as clobbering, which silently dropped
//! provenance on padded methods; see the regression test below.)

use crate::graph::{annotate_provenance, CallSite, Provenance};
use wla_apk::sdex::{Dex, Instruction};

/// Resolve the provenance of each invoke in `code`, in program order.
///
/// Returns one [`Provenance`] per `Instruction::Invoke`, using the
/// linear pending-string heuristic: the most recent `const-string` wins
/// if only `Nop`s separate it from the invoke; an invoke consumes the
/// pending string; `move`, `new-instance`, and branches clear it.
pub fn pending_strings(code: &[Instruction]) -> Vec<Provenance> {
    let mut out = Vec::new();
    let mut pending: Option<u32> = None;
    for ins in code {
        match ins {
            Instruction::ConstString { string, .. } => pending = Some(*string),
            Instruction::Invoke { .. } => {
                out.push(match pending.take() {
                    Some(s) => Provenance::Const(s),
                    None => Provenance::Unknown,
                });
            }
            // Padding carries no semantics: the pending string survives.
            Instruction::Nop => {}
            // Anything else may disturb the value between the constant
            // and the call — the heuristic gives up.
            _ => pending = None,
        }
    }
    out
}

/// Annotate every call site of a graph built over `dex` with the
/// pending-string heuristic's verdict.
pub fn annotate(dex: &Dex, sites: &mut [CallSite]) {
    annotate_provenance(dex, sites, |m| pending_strings(&m.code));
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_apk::sdex::{InvokeKind, MethodId, Reg};

    fn call(method: u32) -> Instruction {
        Instruction::Invoke {
            kind: InvokeKind::Virtual,
            method: MethodId(method),
            args: vec![Reg(0)],
        }
    }

    fn const_str(s: u32) -> Instruction {
        Instruction::ConstString {
            dst: Reg(0),
            string: s,
        }
    }

    #[test]
    fn adjacent_const_resolves() {
        let got = pending_strings(&[const_str(7), call(0), Instruction::ReturnVoid]);
        assert_eq!(got, vec![Provenance::Const(7)]);
    }

    #[test]
    fn nop_padding_is_transparent() {
        // Regression: generator Nop padding between the const-string and
        // the invoke used to clear the pending string, so padded methods
        // lost provenance the un-padded ones kept.
        let got = pending_strings(&[
            const_str(3),
            Instruction::Nop,
            Instruction::Nop,
            call(0),
            Instruction::ReturnVoid,
        ]);
        assert_eq!(got, vec![Provenance::Const(3)]);
    }

    #[test]
    fn invoke_consumes_the_pending_string() {
        let got = pending_strings(&[const_str(1), call(0), call(1)]);
        assert_eq!(got, vec![Provenance::Const(1), Provenance::Unknown]);
    }

    #[test]
    fn later_const_shadows_earlier() {
        let got = pending_strings(&[const_str(1), const_str(2), call(0)]);
        assert_eq!(got, vec![Provenance::Const(2)]);
    }

    #[test]
    fn moves_branches_and_allocations_clear_pending() {
        for clobber in [
            Instruction::Move {
                dst: Reg(1),
                src: Reg(0),
            },
            Instruction::NewInstance {
                ty: wla_apk::sdex::TypeId(0),
            },
            Instruction::IfTest { offset: 1 },
            Instruction::Goto { offset: 1 },
        ] {
            let got = pending_strings(&[const_str(5), clobber.clone(), call(0)]);
            assert_eq!(got, vec![Provenance::Unknown], "clobber = {clobber:?}");
        }
    }

    #[test]
    fn no_const_means_unknown() {
        let got = pending_strings(&[Instruction::Nop, call(0)]);
        assert_eq!(got, vec![Provenance::Unknown]);
    }
}
