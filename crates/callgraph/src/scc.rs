//! Strongly connected components of the call graph (iterative Tarjan).
//!
//! Mutual recursion shows up as non-trivial SCCs; the analysis uses the
//! condensation to report call-graph shape metrics (depth, recursion), and
//! the traversal ablation bench uses component counts as a sanity check.
//! The algorithm runs directly on the graph's dense node indices —
//! per-node state is a flat `Vec`, and edges come from the CSR arena, so
//! no hashing happens anywhere in the traversal.

use crate::graph::CallGraph;
use wla_apk::sdex::MethodId;

/// SCCs of the internal call graph, each a list of method ids. Components
/// are emitted in reverse topological order (callees before callers), as
/// Tarjan produces them.
pub fn strongly_connected_components(graph: &CallGraph<'_>) -> Vec<Vec<MethodId>> {
    let n = graph.node_count();
    const UNVISITED: u32 = u32::MAX;

    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
    }

    let mut state = vec![
        NodeState {
            index: UNVISITED,
            lowlink: 0,
            on_stack: false,
        };
        n
    ];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;
    let mut components: Vec<Vec<MethodId>> = Vec::new();

    // Iterative Tarjan: explicit work stack of (node, child cursor).
    for root in 0..n as u32 {
        if state[root as usize].index != UNVISITED {
            continue;
        }
        let mut work: Vec<(u32, usize)> = vec![(root, 0)];
        state[root as usize] = NodeState {
            index: next_index,
            lowlink: next_index,
            on_stack: true,
        };
        stack.push(root);
        next_index += 1;

        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            let callees = graph.callee_indices(v);
            if *cursor < callees.len() {
                let w = callees[*cursor];
                *cursor += 1;
                let ws = state[w as usize];
                if ws.index == UNVISITED {
                    state[w as usize] = NodeState {
                        index: next_index,
                        lowlink: next_index,
                        on_stack: true,
                    };
                    stack.push(w);
                    next_index += 1;
                    work.push((w, 0));
                } else if ws.on_stack {
                    let vs = &mut state[v as usize];
                    vs.lowlink = vs.lowlink.min(ws.index);
                }
            } else {
                work.pop();
                let v_state = state[v as usize];
                if let Some(&(parent, _)) = work.last() {
                    let ps = &mut state[parent as usize];
                    ps.lowlink = ps.lowlink.min(v_state.lowlink);
                }
                if v_state.lowlink == v_state.index {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        state[w as usize].on_stack = false;
                        component.push(graph.method_at(w));
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Shape metrics derived from the SCC condensation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphShape {
    /// Defined methods.
    pub methods: usize,
    /// Internal edges.
    pub edges: usize,
    /// Number of SCCs.
    pub components: usize,
    /// Methods involved in recursion (members of SCCs of size > 1, plus
    /// self-loops).
    pub recursive_methods: usize,
}

/// Compute shape metrics for a graph.
pub fn graph_shape(graph: &CallGraph<'_>) -> GraphShape {
    let sccs = strongly_connected_components(graph);
    let recursive_methods = sccs
        .iter()
        .filter(|c| c.len() > 1 || (c.len() == 1 && graph.callees(c[0]).any(|m| m == c[0])))
        .map(Vec::len)
        .sum();
    GraphShape {
        methods: graph.defined_count(),
        edges: graph.edge_count(),
        components: sccs.len(),
        recursive_methods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_apk::sdex::{ClassFlags, DexBuilder, Instruction, InvokeKind, MethodDef};

    fn chain_with_cycle() -> wla_apk::Dex {
        // a -> b -> c -> b (cycle {b, c}), d self-loop, e isolated.
        let mut b = DexBuilder::new();
        let ids: Vec<_> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|n| b.intern_method("com/x/T", n, "()V"))
            .collect();
        let call = |m| Instruction::Invoke {
            kind: InvokeKind::Static,
            method: m,
            args: vec![],
        };
        let defs = vec![
            MethodDef::new(
                ids[0],
                true,
                true,
                vec![call(ids[1]), Instruction::ReturnVoid],
            ),
            MethodDef::new(
                ids[1],
                true,
                true,
                vec![call(ids[2]), Instruction::ReturnVoid],
            ),
            MethodDef::new(
                ids[2],
                true,
                true,
                vec![call(ids[1]), Instruction::ReturnVoid],
            ),
            MethodDef::new(
                ids[3],
                true,
                true,
                vec![call(ids[3]), Instruction::ReturnVoid],
            ),
            MethodDef::new(ids[4], true, true, vec![Instruction::ReturnVoid]),
        ];
        b.define_class("com/x/T", None, ClassFlags::default(), defs)
            .unwrap();
        b.build()
    }

    #[test]
    fn sccs_found() {
        let dex = chain_with_cycle();
        let graph = CallGraph::build(&dex);
        let sccs = strongly_connected_components(&graph);
        // {b,c} is one SCC; a, d, e are singletons → 4 components.
        assert_eq!(sccs.len(), 4);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = sccs.iter().map(Vec::len).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, [1, 1, 1, 2]);
    }

    #[test]
    fn callees_precede_callers() {
        // Reverse topological order: the {b,c} component must appear
        // before a's singleton.
        let dex = chain_with_cycle();
        let graph = CallGraph::build(&dex);
        let sccs = strongly_connected_components(&graph);
        let pos_of = |name: &str| {
            sccs.iter()
                .position(|c| c.iter().any(|&m| dex.method_name(m) == name))
                .unwrap()
        };
        assert!(pos_of("b") < pos_of("a"));
    }

    #[test]
    fn shape_metrics() {
        let dex = chain_with_cycle();
        let graph = CallGraph::build(&dex);
        let shape = graph_shape(&graph);
        assert_eq!(shape.methods, 5);
        assert_eq!(shape.edges, 4);
        assert_eq!(shape.components, 4);
        // {b, c} (2 methods) + d's self-loop (1) = 3 recursive methods.
        assert_eq!(shape.recursive_methods, 3);
    }

    #[test]
    fn acyclic_graph_all_singletons() {
        let mut b = DexBuilder::new();
        let f = b.intern_method("com/x/T", "f", "()V");
        let g = b.intern_method("com/x/T", "g", "()V");
        b.define_class(
            "com/x/T",
            None,
            ClassFlags::default(),
            vec![
                MethodDef::new(
                    f,
                    true,
                    true,
                    vec![
                        Instruction::Invoke {
                            kind: InvokeKind::Static,
                            method: g,
                            args: vec![],
                        },
                        Instruction::ReturnVoid,
                    ],
                ),
                MethodDef::new(g, true, true, vec![Instruction::ReturnVoid]),
            ],
        )
        .unwrap();
        let dex = b.build();
        let graph = CallGraph::build(&dex);
        let shape = graph_shape(&graph);
        assert_eq!(shape.components, 2);
        assert_eq!(shape.recursive_methods, 0);
    }

    #[test]
    fn empty_graph() {
        let dex = DexBuilder::new().build();
        let graph = CallGraph::build(&dex);
        assert!(strongly_connected_components(&graph).is_empty());
    }
}
