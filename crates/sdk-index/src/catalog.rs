//! The paper's SDK catalog.
//!
//! Every SDK named in Table 4 (WebView) or Table 5 (Custom Tabs) appears
//! here with its published app count as a calibration target. The paper
//! additionally *counted* SDKs it did not name (Table 3: 46 advertising
//! SDKs use WebViews, but Table 4 names only five, and §4.1.2 names
//! AdColony and Ogury with approximate counts). For those we synthesize
//! entries with real-world SDK names and plausible package prefixes so the
//! per-category SDK counts of Table 3 are met exactly:
//!
//! | Category            | WebView | CT | Both |
//! |---------------------|---------|----|------|
//! | Advertising         | 46      | 3  | 3    |
//! | Payments            | 15      | 6  | 5    |
//! | Development Tools   | 11      | 7  | 5    |
//! | Engagement          | 12      | 0  | 0    |
//! | Social              | 10      | 6  | 4    |
//! | Authentication      | 7       | 10 | 6    |
//! | Unknown             | 10      | 4  | 4    |
//! | Hybrid Functionality| 6       | 7  | 5    |
//! | Utility             | 4       | 2  | 2    |
//! | User Support        | 4       | 0  | 0    |
//! | **Total**           | **125** | **45** | **34** |
//!
//! Plus 4 obfuscated packages (not in Table 3's category counts) — with the
//! excluded `com.google.android`, that is the paper's 141 packages each used
//! by more than 100 apps.

use crate::{Sdk, SdkCategory, WebMechanism};

/// Shorthand constructor used by the tables below.
fn sdk(
    name: &str,
    category: SdkCategory,
    mechanism: WebMechanism,
    prefixes: &[&str],
    wv_apps: u32,
    ct_apps: u32,
) -> Sdk {
    Sdk {
        name: name.to_owned(),
        category,
        prefixes: prefixes.iter().map(|p| (*p).to_owned()).collect(),
        mechanism,
        wv_apps,
        ct_apps,
        obfuscated: false,
    }
}

/// Build the full catalog (140 entries: 136 categorized + 10 unknown-category
/// already included + 4 obfuscated).
pub fn paper_catalog() -> Vec<Sdk> {
    use SdkCategory::*;
    use WebMechanism::{Both, CustomTabs as Ct, WebView as Wv};

    let mut v: Vec<Sdk> = Vec::with_capacity(140);

    // ---------------- Advertising: 46 WV / 3 CT / 3 both ----------------
    // Table 4 names the top five; §4.1.2 names AdColony and Ogury; §4.1.1
    // says the three CT ad SDKs all also use WebViews.
    v.push(sdk(
        "AppLovin",
        Advertising,
        Wv,
        &["com.applovin"],
        27_397,
        0,
    ));
    v.push(sdk(
        "ironSource",
        Advertising,
        Wv,
        &["com.ironsource"],
        16_326,
        0,
    ));
    v.push(sdk(
        "ByteDance",
        Advertising,
        Wv,
        &["com.bytedance"],
        13_080,
        0,
    ));
    v.push(sdk("InMobi", Advertising, Wv, &["com.inmobi"], 10_066, 0));
    v.push(sdk(
        "Digital Turbine",
        Advertising,
        Wv,
        &["com.fyber", "com.digitalturbine"],
        8_654,
        0,
    ));
    v.push(sdk(
        "HyprMX",
        Advertising,
        Both,
        &["com.hyprmx"],
        1_257,
        1_257,
    ));
    v.push(sdk(
        "Linkvertise",
        Advertising,
        Both,
        &["com.linkvertise"],
        383,
        383,
    ));
    v.push(sdk(
        "Taboola",
        Advertising,
        Both,
        &["com.taboola"],
        317,
        317,
    ));
    // Unnamed members of the 46 (real ad networks, synthesized counts).
    let ad_fillers: &[(&str, &str, u32)] = &[
        ("AdColony", "com.adcolony", 10_600),
        ("Unity Ads", "com.unity3d.ads", 8_900),
        ("Vungle", "com.vungle", 7_200),
        ("Chartboost", "com.chartboost", 5_100),
        ("Mintegral", "com.mintegral", 4_800),
        ("Tapjoy", "com.tapjoy", 3_900),
        ("Start.io", "com.startapp", 3_400),
        ("Smaato", "com.smaato", 2_900),
        ("Appodeal", "com.appodeal", 2_600),
        ("Criteo", "com.criteo", 2_300),
        ("Amazon Ads", "com.amazon.device.ads", 2_100),
        ("Yandex Ads", "com.yandex.mobile.ads", 1_900),
        ("myTarget", "com.my.target", 1_700),
        ("MoPub", "com.mopub", 1_600),
        ("Ogury", "io.presage", 1_400),
        ("Adfurikun", "jp.tjkapp.adfurikun", 1_200),
        ("Five Ads", "com.five_corp", 1_100),
        ("Nend", "net.nend", 950),
        ("Maio", "jp.maio", 900),
        ("Zucks", "net.zucks", 850),
        ("Kakao AdFit", "com.kakao.adfit", 800),
        ("GreedyGame", "com.greedygame", 700),
        ("AdGeneration", "com.socdm.d.adgeneration", 650),
        ("i-mobile", "jp.co.imobile", 600),
        ("AdStir", "com.ad_stir", 550),
        ("Fluct", "jp.fluct", 500),
        ("AppNext", "com.appnext", 480),
        ("Adivery", "ir.adivery", 450),
        ("Tapsell", "ir.tapsell", 420),
        ("Verve", "net.pubnative", 400),
        ("BidMachine", "io.bidmachine", 380),
        ("Leadbolt", "com.apptracker", 350),
        ("Airpush", "com.airpush", 330),
        ("Madvertise", "de.madvertise", 310),
        ("AppBrain", "com.appbrain", 290),
        ("AdinCube", "com.adincube", 270),
        ("MobFox", "com.mobfox", 250),
        ("LoopMe", "com.loopme", 230),
    ];
    for &(name, prefix, n) in ad_fillers {
        v.push(sdk(name, Advertising, Wv, &[prefix], n, 0));
    }

    // ---------------- Engagement: 12 WV / 0 CT / 0 both -----------------
    v.push(sdk(
        "Open Measurement",
        Engagement,
        Wv,
        &["com.iab.omid"],
        11_333,
        0,
    ));
    v.push(sdk("SafeDK", Engagement, Wv, &["com.safedk"], 7_427, 0));
    v.push(sdk(
        "Airship",
        Engagement,
        Wv,
        &["com.urbanairship"],
        652,
        0,
    ));
    v.push(sdk("Branch", Engagement, Wv, &["io.branch"], 514, 0));
    let eng_fillers: &[(&str, &str, u32)] = &[
        ("Adjust", "com.adjust", 2_400),
        ("AppsFlyer", "com.appsflyer", 2_100),
        ("CleverTap", "com.clevertap", 900),
        ("MoEngage", "com.moengage", 700),
        ("Kochava", "com.kochava", 500),
        ("Singular", "com.singular", 400),
        ("Mixpanel", "com.mixpanel", 300),
        ("Amplitude", "com.amplitude", 200),
    ];
    for &(name, prefix, n) in eng_fillers {
        v.push(sdk(name, Engagement, Wv, &[prefix], n, 0));
    }

    // ------------- Development Tools: 11 WV / 7 CT / 5 both -------------
    v.push(sdk(
        "Flutter",
        DevelopmentTools,
        Wv,
        &["io.flutter"],
        5_568,
        0,
    ));
    v.push(sdk(
        "InAppWebView",
        DevelopmentTools,
        Wv,
        &["com.pichillilorenzo"],
        1_868,
        0,
    ));
    v.push(sdk(
        "Corona",
        DevelopmentTools,
        Wv,
        &["com.ansca.corona"],
        449,
        0,
    ));
    v.push(sdk(
        "AdvancedWebView",
        DevelopmentTools,
        Wv,
        &["im.delight.android.webview"],
        386,
        0,
    ));
    v.push(sdk(
        "Cordova",
        DevelopmentTools,
        Wv,
        &["org.apache.cordova"],
        900,
        0,
    ));
    v.push(sdk(
        "React Native WebView",
        DevelopmentTools,
        Wv,
        &["com.reactnativecommunity.webview"],
        750,
        0,
    ));
    v.push(sdk(
        "GoodBarber",
        DevelopmentTools,
        Both,
        &["com.goodbarber"],
        30,
        48,
    ));
    v.push(sdk(
        "Mobiroller",
        DevelopmentTools,
        Both,
        &["com.mobiroller"],
        20,
        27,
    ));
    v.push(sdk("Ionic", DevelopmentTools, Both, &["io.ionic"], 40, 15));
    v.push(sdk(
        "Median",
        DevelopmentTools,
        Both,
        &["co.median"],
        15,
        10,
    ));
    v.push(sdk(
        "Thunkable",
        DevelopmentTools,
        Both,
        &["com.thunkable"],
        12,
        8,
    ));
    v.push(sdk(
        "android-customtabs",
        DevelopmentTools,
        Ct,
        &["saschpe.android.customtabs"],
        0,
        53,
    ));
    v.push(sdk(
        "Capacitor Browser",
        DevelopmentTools,
        Ct,
        &["com.capacitorjs.browser"],
        0,
        11,
    ));

    // ------------------ Payments: 15 WV / 6 CT / 5 both -----------------
    v.push(sdk("Stripe", Payments, Wv, &["com.stripe"], 1_171, 0));
    v.push(sdk("RazorPay", Payments, Wv, &["com.razorpay"], 484, 0));
    v.push(sdk("PayTM", Payments, Wv, &["net.one97.paytm"], 400, 0));
    v.push(sdk(
        "Braintree",
        Payments,
        Wv,
        &["com.braintreepayments"],
        350,
        0,
    ));
    v.push(sdk("Square", Payments, Wv, &["com.squareup.sdk"], 300, 0));
    v.push(sdk(
        "MercadoPago",
        Payments,
        Wv,
        &["com.mercadopago"],
        280,
        0,
    ));
    v.push(sdk("Paystack", Payments, Wv, &["co.paystack"], 180, 0));
    v.push(sdk(
        "Flutterwave",
        Payments,
        Wv,
        &["com.flutterwave"],
        150,
        0,
    ));
    v.push(sdk("CCAvenue", Payments, Wv, &["com.ccavenue"], 130, 0));
    v.push(sdk("Mollie", Payments, Wv, &["com.mollie"], 110, 0));
    v.push(sdk(
        "Ticketmaster Checkout",
        Payments,
        Both,
        &["com.ticketmaster.purchase"],
        30,
        47,
    ));
    v.push(sdk("Checkout", Payments, Both, &["com.checkout"], 25, 47));
    v.push(sdk("PayPal", Payments, Both, &["com.paypal"], 200, 40));
    v.push(sdk("PayU", Payments, Both, &["com.payu"], 160, 30));
    v.push(sdk("Midtrans", Payments, Both, &["com.midtrans"], 90, 20));
    v.push(sdk("Juspay", Payments, Ct, &["in.juspay"], 0, 77));

    // ---------------- User Support: 4 WV / 0 CT / 0 both ----------------
    v.push(sdk(
        "Zendesk",
        UserSupport,
        Wv,
        &["zendesk", "com.zendesk"],
        1_000,
        0,
    ));
    v.push(sdk(
        "Freshchat",
        UserSupport,
        Wv,
        &["com.freshchat"],
        438,
        0,
    ));
    v.push(sdk(
        "LicensesDialog",
        UserSupport,
        Wv,
        &["de.psdev.licensesdialog"],
        129,
        0,
    ));
    v.push(sdk("Intercom", UserSupport, Wv, &["io.intercom"], 125, 0));

    // ------------------- Social: 10 WV / 6 CT / 4 both ------------------
    // Facebook deprecated WebView login in 2021 — CT only (§4.1.6).
    v.push(sdk("Facebook", Social, Ct, &["com.facebook"], 0, 23_234));
    v.push(sdk("VK", Social, Wv, &["com.vk"], 456, 0));
    v.push(sdk("NAVER", Social, Both, &["com.navercorp.nid"], 406, 157));
    v.push(sdk("Kakao", Social, Both, &["com.kakao"], 347, 54));
    v.push(sdk("LINE", Social, Both, &["jp.naver.line"], 130, 60));
    v.push(sdk("Weibo", Social, Both, &["com.sina.weibo"], 120, 40));
    v.push(sdk("Twitter", Social, Ct, &["com.twitter.sdk"], 0, 262));
    v.push(sdk("Odnoklassniki", Social, Wv, &["ru.ok"], 180, 0));
    v.push(sdk("Zalo", Social, Wv, &["com.zing.zalo"], 160, 0));
    v.push(sdk(
        "Tencent QQ",
        Social,
        Wv,
        &["com.tencent.tauth"],
        150,
        0,
    ));
    v.push(sdk(
        "WeChat",
        Social,
        Wv,
        &["com.tencent.mm.opensdk"],
        140,
        0,
    ));
    v.push(sdk("Tumblr", Social, Wv, &["com.tumblr"], 110, 0));

    // -------------------- Utility: 4 WV / 2 CT / 2 both -----------------
    v.push(sdk("NAVER Maps", Utility, Wv, &["com.naver.maps"], 130, 0));
    v.push(sdk(
        "Barcode Scanner",
        Utility,
        Wv,
        &["com.google.zxing"],
        129,
        0,
    ));
    v.push(sdk(
        "Ticketmaster",
        Utility,
        Both,
        &["com.ticketmaster.tickets"],
        64,
        55,
    ));
    v.push(sdk("MyChart", Utility, Both, &["epic.mychart"], 39, 16));

    // ---------------- Authentication: 7 WV / 10 CT / 6 both -------------
    v.push(sdk(
        "Google Firebase",
        Authentication,
        Ct,
        &["com.google.firebase"],
        0,
        7_565,
    ));
    v.push(sdk("Gigya", Authentication, Wv, &["com.gigya"], 120, 0));
    v.push(sdk(
        "NAVER Identity",
        Authentication,
        Both,
        &["com.navercorp.identity"],
        90,
        81,
    ));
    v.push(sdk(
        "Amazon Identity",
        Authentication,
        Both,
        &["com.amazon.identity"],
        37,
        20,
    ));
    v.push(sdk(
        "AdobePass",
        Authentication,
        Ct,
        &["com.adobe.adobepass"],
        0,
        55,
    ));
    v.push(sdk("Auth0", Authentication, Both, &["com.auth0"], 60, 95));
    v.push(sdk("Okta", Authentication, Both, &["com.okta"], 45, 50));
    v.push(sdk(
        "OneLogin",
        Authentication,
        Both,
        &["com.onelogin"],
        25,
        25,
    ));
    v.push(sdk(
        "Ping Identity",
        Authentication,
        Both,
        &["com.pingidentity"],
        20,
        15,
    ));
    v.push(sdk("Clerk", Authentication, Ct, &["com.clerk"], 0, 30));
    v.push(sdk(
        "LoginRadius",
        Authentication,
        Ct,
        &["com.loginradius"],
        0,
        25,
    ));

    // ----------- Hybrid Functionality: 6 WV / 7 CT / 5 both -------------
    v.push(sdk(
        "Baby Panda World",
        HybridFunctionality,
        Wv,
        &["com.sinyee.babybus"],
        194,
        0,
    ));
    v.push(sdk(
        "SoftCraft",
        HybridFunctionality,
        Both,
        &["com.softcraft"],
        15,
        8,
    ));
    v.push(sdk(
        "Cube Storm",
        HybridFunctionality,
        Both,
        &["com.cubestorm"],
        14,
        14,
    ));
    v.push(sdk(
        "WebMobi",
        HybridFunctionality,
        Both,
        &["com.webmobi"],
        12,
        12,
    ));
    v.push(sdk(
        "Appy Pie",
        HybridFunctionality,
        Both,
        &["com.appypie"],
        11,
        10,
    ));
    v.push(sdk(
        "SiberianCMS",
        HybridFunctionality,
        Both,
        &["com.siberiancms"],
        10,
        9,
    ));
    v.push(sdk(
        "Scripps News",
        HybridFunctionality,
        Ct,
        &["com.scripps.newsapps"],
        0,
        13,
    ));
    v.push(sdk(
        "GoNative",
        HybridFunctionality,
        Ct,
        &["io.gonative"],
        0,
        21,
    ));

    // ------------------- Unknown: 10 WV / 4 CT / 4 both -----------------
    // Conventional package names the paper "could not associate with any
    // known SDK".
    let unknown_wv: &[(&str, u32)] = &[
        ("com.dotc.sdk", 290),
        ("com.polestar.core", 260),
        ("net.appcloudbox", 230),
        ("com.ihandysoft.core", 200),
        ("mobi.oneway", 170),
        ("com.cootek.business", 140),
    ];
    for (i, &(prefix, n)) in unknown_wv.iter().enumerate() {
        v.push(sdk(
            &format!("Unknown #{} ({prefix})", i + 1),
            Unknown,
            Wv,
            &[prefix],
            n,
            0,
        ));
    }
    let unknown_both: &[(&str, u32, u32)] = &[
        ("com.tachikoma.core", 200, 110),
        ("org.hapjs.webviewapp", 180, 105),
        ("com.quickgame.web", 160, 100),
        ("io.dcloud.feature", 140, 102),
    ];
    for (i, &(prefix, wv, ct)) in unknown_both.iter().enumerate() {
        v.push(sdk(
            &format!("Unknown #{} ({prefix})", i + 7),
            Unknown,
            Both,
            &[prefix],
            wv,
            ct,
        ));
    }

    // -------------------- Obfuscated packages (4) -----------------------
    for (i, &(prefix, n)) in [("a.a", 400), ("b.bb", 300), ("c.ab", 220), ("d.e", 150)]
        .iter()
        .enumerate()
    {
        let mut s = sdk(
            &format!("Obfuscated #{}", i + 1),
            Unknown,
            Wv,
            &[prefix],
            n,
            0,
        );
        s.obfuscated = true;
        v.push(s);
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_size() {
        // 136 categorized + 4 obfuscated = 140; with the excluded
        // com.google.android this is the paper's 141 packages.
        assert_eq!(paper_catalog().len(), 140);
    }

    #[test]
    fn unknown_category_count_matches_paper() {
        let cat = paper_catalog();
        let unknown: Vec<_> = cat
            .iter()
            .filter(|s| s.category == SdkCategory::Unknown && !s.obfuscated)
            .collect();
        assert_eq!(unknown.len(), 10);
    }

    #[test]
    fn mechanism_consistent_with_targets() {
        for s in paper_catalog() {
            assert_eq!(
                s.mechanism.uses_webview(),
                s.wv_apps > 0,
                "{}: wv_apps inconsistent with mechanism",
                s.name
            );
            assert_eq!(
                s.mechanism.uses_custom_tabs(),
                s.ct_apps > 0,
                "{}: ct_apps inconsistent with mechanism",
                s.name
            );
        }
    }

    #[test]
    fn every_sdk_has_a_prefix() {
        for s in paper_catalog() {
            assert!(!s.prefixes.is_empty(), "{} has no prefixes", s.name);
            for p in &s.prefixes {
                assert!(!p.is_empty());
                assert!(!p.starts_with('.') && !p.ends_with('.'));
            }
        }
    }

    #[test]
    fn user_support_totals_match_table4_exactly() {
        // 1000 + 438 + 129 + 125 = 1692 — Table 4's category total.
        let total: u32 = paper_catalog()
            .iter()
            .filter(|s| s.category == SdkCategory::UserSupport)
            .map(|s| s.wv_apps)
            .sum();
        assert_eq!(total, 1_692);
    }

    #[test]
    fn hybrid_wv_totals_match_table4_exactly() {
        // 194 + 15 + 14 + 12 + 11 + 10 = 256.
        let total: u32 = paper_catalog()
            .iter()
            .filter(|s| s.category == SdkCategory::HybridFunctionality)
            .map(|s| s.wv_apps)
            .sum();
        assert_eq!(total, 256);
    }
}
