//! Segment-wise prefix trie for package → SDK labeling.
//!
//! Package prefixes match on whole dot-separated segments:
//! `com.applovin` matches `com.applovin.adview` but not `com.applovinx`.
//! Lookup is O(segments), independent of catalog size — the ablation bench
//! compares this against a linear scan of all prefixes.

use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<String, Node>,
    /// Value attached if a prefix terminates at this node.
    value: Option<u32>,
}

/// Maps dotted package prefixes to `u32` payloads with longest-match lookup.
#[derive(Debug, Clone, Default)]
pub struct PrefixTrie {
    root: Node,
    len: usize,
}

impl PrefixTrie {
    /// Empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `prefix` (dotted) with payload `value`. Re-inserting a prefix
    /// overwrites its payload.
    pub fn insert(&mut self, prefix: &str, value: u32) {
        let mut node = &mut self.root;
        for seg in prefix.split('.') {
            node = node.children.entry(seg.to_owned()).or_default();
        }
        if node.value.replace(value).is_none() {
            self.len += 1;
        }
    }

    /// Payload of the longest inserted prefix of `package`, if any.
    pub fn longest_match(&self, package: &str) -> Option<u32> {
        let mut node = &self.root;
        let mut best = node.value;
        for seg in package.split('.') {
            match node.children.get(seg) {
                Some(next) => {
                    node = next;
                    if node.value.is_some() {
                        best = node.value;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Whether `package` has any inserted prefix.
    pub fn contains_prefix_of(&self, package: &str) -> bool {
        self.longest_match(package).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_and_descendant_match() {
        let mut t = PrefixTrie::new();
        t.insert("com.applovin", 1);
        assert_eq!(t.longest_match("com.applovin"), Some(1));
        assert_eq!(t.longest_match("com.applovin.adview"), Some(1));
        assert_eq!(t.longest_match("com.applovinx"), None);
        assert_eq!(t.longest_match("com"), None);
    }

    #[test]
    fn longest_wins() {
        let mut t = PrefixTrie::new();
        t.insert("com.naver", 1);
        t.insert("com.naver.maps", 2);
        assert_eq!(t.longest_match("com.naver.maps.geo"), Some(2));
        assert_eq!(t.longest_match("com.naver.login"), Some(1));
    }

    #[test]
    fn reinsert_overwrites() {
        let mut t = PrefixTrie::new();
        t.insert("a.b", 1);
        t.insert("a.b", 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.longest_match("a.b.c"), Some(2));
    }

    #[test]
    fn empty_trie() {
        let t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.longest_match("anything.at.all"), None);
    }

    proptest! {
        #[test]
        fn prop_inserted_prefixes_match_themselves(
            prefixes in proptest::collection::hash_set("[a-z]{1,6}(\\.[a-z]{1,6}){0,3}", 1..20)
        ) {
            let mut t = PrefixTrie::new();
            let v: Vec<_> = prefixes.iter().cloned().collect();
            for (i, p) in v.iter().enumerate() {
                t.insert(p, i as u32);
            }
            prop_assert_eq!(t.len(), v.len());
            for (i, p) in v.iter().enumerate() {
                // Exact lookup returns this value or a longer prefix's value;
                // for exact strings it must be this one.
                prop_assert_eq!(t.longest_match(p), Some(i as u32));
                // Descendants match some inserted prefix.
                let child = format!("{p}.zz");
                prop_assert!(t.longest_match(&child).is_some());
            }
        }

        #[test]
        fn prop_no_false_positives(pkg in "[A-Z]{1,8}(\\.[A-Z]{1,8}){0,3}") {
            // Catalog prefixes are lowercase; uppercase packages never match.
            let mut t = PrefixTrie::new();
            t.insert("com.applovin", 1);
            t.insert("io.flutter", 2);
            prop_assert_eq!(t.longest_match(&pkg), None);
        }
    }
}
