//! Segment-wise prefix trie for package → SDK labeling.
//!
//! Package prefixes match on whole dot-separated segments:
//! `com.applovin` matches `com.applovin.adview` but not `com.applovinx`.
//! Lookup is O(segments), independent of catalog size — the ablation bench
//! compares this against a linear scan of all prefixes.

use std::collections::HashMap;
use wla_intern::{FxBuildHasher, U32BuildHasher};

#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<String, Node>,
    /// Value attached if a prefix terminates at this node.
    value: Option<u32>,
}

/// Maps dotted package prefixes to `u32` payloads with longest-match lookup.
#[derive(Debug, Clone, Default)]
pub struct PrefixTrie {
    root: Node,
    len: usize,
}

impl PrefixTrie {
    /// Empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `prefix` (dotted) with payload `value`. Re-inserting a prefix
    /// overwrites its payload.
    pub fn insert(&mut self, prefix: &str, value: u32) {
        let mut node = &mut self.root;
        for seg in prefix.split('.') {
            // Probe before `entry`: the entry API would allocate an owned
            // key for every segment even when the child already exists,
            // which for a catalog of shared roots (`com.*`) is most of them.
            node = if node.children.contains_key(seg) {
                node.children.get_mut(seg).expect("probed above")
            } else {
                node.children.entry(seg.to_owned()).or_default()
            };
        }
        if node.value.replace(value).is_none() {
            self.len += 1;
        }
    }

    /// Payload of the longest inserted prefix of `package`, if any.
    pub fn longest_match(&self, package: &str) -> Option<u32> {
        let mut node = &self.root;
        let mut best = node.value;
        for seg in package.split('.') {
            match node.children.get(seg) {
                Some(next) => {
                    node = next;
                    if node.value.is_some() {
                        best = node.value;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Whether `package` has any inserted prefix.
    pub fn contains_prefix_of(&self, package: &str) -> bool {
        self.longest_match(package).is_some()
    }
}

/// Arena node of [`InternedTrie`]: children keyed by interned segment id.
#[derive(Debug, Clone, Default)]
struct INode {
    children: HashMap<u32, u32, U32BuildHasher>,
    value: Option<u32>,
}

/// [`PrefixTrie`] variant keyed by *interned segments*.
///
/// Each distinct dot-separated segment (`com`, `applovin`, …) is assigned
/// a `u32` id in a private segment table; trie edges are then `u32 → node`
/// maps hashed with a single multiply. A lookup hashes each segment string
/// exactly once (the segment-table probe) and walks the rest of the trie
/// on integer keys; a segment never seen in any inserted prefix terminates
/// the walk immediately, without per-node string hashing. Nodes live in a
/// flat arena (`Vec`), so descent is index chasing, not pointer chasing.
#[derive(Debug, Clone)]
pub struct InternedTrie {
    /// Segment string → segment id.
    segments: HashMap<Box<str>, u32, FxBuildHasher>,
    /// Node arena; index 0 is the root.
    nodes: Vec<INode>,
    len: usize,
}

impl Default for InternedTrie {
    fn default() -> Self {
        InternedTrie {
            segments: HashMap::default(),
            nodes: vec![INode::default()],
            len: 0,
        }
    }
}

impl InternedTrie {
    /// Empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn segment_id(&mut self, seg: &str) -> u32 {
        if let Some(&id) = self.segments.get(seg) {
            return id;
        }
        let id = self.segments.len() as u32;
        self.segments.insert(Box::from(seg), id);
        id
    }

    /// Insert `prefix` (dotted) with payload `value`. Re-inserting a prefix
    /// overwrites its payload.
    pub fn insert(&mut self, prefix: &str, value: u32) {
        let mut node = 0usize;
        for seg in prefix.split('.') {
            let sid = self.segment_id(seg);
            node = match self.nodes[node].children.get(&sid) {
                Some(&child) => child as usize,
                None => {
                    let child = self.nodes.len();
                    self.nodes.push(INode::default());
                    self.nodes[node].children.insert(sid, child as u32);
                    child
                }
            };
        }
        if self.nodes[node].value.replace(value).is_none() {
            self.len += 1;
        }
    }

    /// Payload of the longest inserted prefix of `package`, if any.
    pub fn longest_match(&self, package: &str) -> Option<u32> {
        let mut node = &self.nodes[0];
        let mut best = node.value;
        for seg in package.split('.') {
            let Some(&sid) = self.segments.get(seg) else {
                break;
            };
            let Some(&child) = node.children.get(&sid) else {
                break;
            };
            node = &self.nodes[child as usize];
            if node.value.is_some() {
                best = node.value;
            }
        }
        best
    }

    /// Whether `package` has any inserted prefix.
    pub fn contains_prefix_of(&self, package: &str) -> bool {
        self.longest_match(package).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_and_descendant_match() {
        let mut t = PrefixTrie::new();
        t.insert("com.applovin", 1);
        assert_eq!(t.longest_match("com.applovin"), Some(1));
        assert_eq!(t.longest_match("com.applovin.adview"), Some(1));
        assert_eq!(t.longest_match("com.applovinx"), None);
        assert_eq!(t.longest_match("com"), None);
    }

    #[test]
    fn longest_wins() {
        let mut t = PrefixTrie::new();
        t.insert("com.naver", 1);
        t.insert("com.naver.maps", 2);
        assert_eq!(t.longest_match("com.naver.maps.geo"), Some(2));
        assert_eq!(t.longest_match("com.naver.login"), Some(1));
    }

    #[test]
    fn reinsert_overwrites() {
        let mut t = PrefixTrie::new();
        t.insert("a.b", 1);
        t.insert("a.b", 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.longest_match("a.b.c"), Some(2));
    }

    #[test]
    fn empty_trie() {
        let t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.longest_match("anything.at.all"), None);
    }

    proptest! {
        #[test]
        fn prop_inserted_prefixes_match_themselves(
            prefixes in proptest::collection::hash_set("[a-z]{1,6}(\\.[a-z]{1,6}){0,3}", 1..20)
        ) {
            let mut t = PrefixTrie::new();
            let v: Vec<_> = prefixes.iter().cloned().collect();
            for (i, p) in v.iter().enumerate() {
                t.insert(p, i as u32);
            }
            prop_assert_eq!(t.len(), v.len());
            for (i, p) in v.iter().enumerate() {
                // Exact lookup returns this value or a longer prefix's value;
                // for exact strings it must be this one.
                prop_assert_eq!(t.longest_match(p), Some(i as u32));
                // Descendants match some inserted prefix.
                let child = format!("{p}.zz");
                prop_assert!(t.longest_match(&child).is_some());
            }
        }

        #[test]
        fn prop_no_false_positives(pkg in "[A-Z]{1,8}(\\.[A-Z]{1,8}){0,3}") {
            // Catalog prefixes are lowercase; uppercase packages never match.
            let mut t = PrefixTrie::new();
            t.insert("com.applovin", 1);
            t.insert("io.flutter", 2);
            prop_assert_eq!(t.longest_match(&pkg), None);
        }

        /// The segment-interned trie, the string trie, and a linear scan
        /// agree on arbitrary dotted prefixes and probes — the interning
        /// refactor must not change a single label.
        #[test]
        fn prop_interned_trie_agrees_with_string_trie_and_linear_scan(
            prefixes in proptest::collection::hash_set("[a-z]{1,4}(\\.[a-z]{1,4}){0,3}", 1..16),
            probes in proptest::collection::vec("[a-z]{1,4}(\\.[a-z]{1,4}){0,5}", 1..32),
        ) {
            let prefixes: Vec<String> = prefixes.into_iter().collect();
            let mut strie = PrefixTrie::new();
            let mut itrie = InternedTrie::new();
            for (i, p) in prefixes.iter().enumerate() {
                strie.insert(p, i as u32);
                itrie.insert(p, i as u32);
            }
            prop_assert_eq!(itrie.len(), strie.len());
            // Probe both the random packages and the prefixes themselves
            // (plus a descendant of each) for boundary coverage.
            let mut all = probes;
            for p in &prefixes {
                all.push(p.clone());
                all.push(format!("{p}.zz"));
            }
            for probe in &all {
                // Linear-scan oracle: longest segment-aligned prefix wins.
                let linear = prefixes
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        probe == *p
                            || (probe.len() > p.len()
                                && probe.starts_with(p.as_str())
                                && probe.as_bytes()[p.len()] == b'.')
                    })
                    .max_by_key(|(_, p)| p.len())
                    .map(|(i, _)| i as u32);
                prop_assert_eq!(strie.longest_match(probe), linear, "string trie, {}", probe);
                prop_assert_eq!(itrie.longest_match(probe), linear, "interned trie, {}", probe);
            }
        }
    }

    #[test]
    fn interned_trie_basics() {
        let mut t = InternedTrie::new();
        t.insert("com.applovin", 1);
        t.insert("com.naver.maps", 2);
        t.insert("com.naver", 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.longest_match("com.applovin.adview"), Some(1));
        assert_eq!(t.longest_match("com.applovinx"), None);
        assert_eq!(t.longest_match("com.naver.maps.geo"), Some(2));
        assert_eq!(t.longest_match("com.naver.login"), Some(3));
        assert_eq!(t.longest_match("org.other"), None);
        assert!(t.contains_prefix_of("com.naver.x"));
        // Reinsert overwrites without growing.
        t.insert("com.applovin", 9);
        assert_eq!(t.len(), 3);
        assert_eq!(t.longest_match("com.applovin"), Some(9));
    }
}
