//! # wla-sdk-index — Google Play SDK Index analog
//!
//! §3.1.4 of the paper labels the Java packages that invoke content-loading
//! methods against the Google Play SDK Index (plus manual search), yielding
//! 141 packages used by >100 apps: 126 categorized, 1 excluded
//! (`com.google.android`), 4 obfuscated, 10 unknown.
//!
//! This crate provides:
//!
//! * [`SdkCategory`] — the paper's SDK taxonomy (Table 3 rows);
//! * [`Sdk`] — one catalog entry: name, package prefixes, which web
//!   mechanism(s) it uses, and its paper-scale app-count calibration targets;
//! * [`catalog::paper_catalog`] — the full catalog: every SDK named in
//!   Tables 4 and 5 with its published app count, plus synthesized filler
//!   SDKs so that per-category SDK *counts* match Table 3 exactly
//!   (46 WebView advertising SDKs, 10 CT authentication SDKs, …);
//! * [`trie::PrefixTrie`] and [`SdkIndex`] — longest-prefix package labeling,
//!   the pipeline's hot lookup.
//!
//! ```
//! use wla_sdk_index::{Label, SdkIndex};
//!
//! let index = SdkIndex::paper();
//! match index.label("com.applovin.adview") {
//!     Label::Sdk(sdk) => assert_eq!(sdk.name, "AppLovin"),
//!     other => panic!("{other:?}"),
//! }
//! assert!(matches!(index.label("com.google.android.gms.ads"), Label::CoreAndroid));
//! assert!(matches!(index.label("a.b.c"), Label::Obfuscated));
//! ```

pub mod catalog;
pub mod trie;

use serde::{Deserialize, Serialize};
use wla_intern::PkgId;

/// SDK functional categories — exactly the rows of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SdkCategory {
    /// In-app ad networks and mediation.
    Advertising,
    /// Engagement / ad-performance measurement (OM SDK, SafeDK, …).
    Engagement,
    /// Cross-platform frameworks and embeddable components (Flutter, …).
    DevelopmentTools,
    /// Payment processing (Stripe, RazorPay, …).
    Payments,
    /// In-app customer service (Zendesk, Freshchat, …).
    UserSupport,
    /// Social-platform integration (Facebook, VK, Kakao, …).
    Social,
    /// Feature utilities (maps, ticketing, barcode, health portals).
    Utility,
    /// Identity providers and auth flows (Firebase Auth, Gigya, …).
    Authentication,
    /// Hybrid web+native app engines.
    HybridFunctionality,
    /// Packages that could not be associated with any known SDK.
    Unknown,
}

impl SdkCategory {
    /// All categories in Table 3 row order.
    pub const ALL: [SdkCategory; 10] = [
        SdkCategory::Advertising,
        SdkCategory::Payments,
        SdkCategory::DevelopmentTools,
        SdkCategory::Engagement,
        SdkCategory::Social,
        SdkCategory::Authentication,
        SdkCategory::Unknown,
        SdkCategory::HybridFunctionality,
        SdkCategory::Utility,
        SdkCategory::UserSupport,
    ];

    /// Dense index of this category in [`SdkCategory::ALL`] (Table 3 row
    /// order) — lets aggregation use flat arrays instead of keyed maps.
    pub fn table3_index(self) -> usize {
        match self {
            SdkCategory::Advertising => 0,
            SdkCategory::Payments => 1,
            SdkCategory::DevelopmentTools => 2,
            SdkCategory::Engagement => 3,
            SdkCategory::Social => 4,
            SdkCategory::Authentication => 5,
            SdkCategory::Unknown => 6,
            SdkCategory::HybridFunctionality => 7,
            SdkCategory::Utility => 8,
            SdkCategory::UserSupport => 9,
        }
    }

    /// Human-readable label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            SdkCategory::Advertising => "Advertising",
            SdkCategory::Engagement => "Engagement",
            SdkCategory::DevelopmentTools => "Development Tools",
            SdkCategory::Payments => "Payments",
            SdkCategory::UserSupport => "User Support",
            SdkCategory::Social => "Social",
            SdkCategory::Utility => "Utility",
            SdkCategory::Authentication => "Authentication",
            SdkCategory::HybridFunctionality => "Hybrid Functionality",
            SdkCategory::Unknown => "Unknown",
        }
    }
}

/// Which web-content mechanism an SDK embeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WebMechanism {
    /// Uses `android.webkit.WebView` only.
    WebView,
    /// Uses Custom Tabs only.
    CustomTabs,
    /// Uses both (e.g. falls back to WebView when no CT-capable browser).
    Both,
}

impl WebMechanism {
    /// Does the SDK have a WebView code path?
    pub fn uses_webview(self) -> bool {
        matches!(self, WebMechanism::WebView | WebMechanism::Both)
    }

    /// Does the SDK have a Custom Tabs code path?
    pub fn uses_custom_tabs(self) -> bool {
        matches!(self, WebMechanism::CustomTabs | WebMechanism::Both)
    }
}

/// One SDK catalog entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sdk {
    /// Display name ("AppLovin", "Google Firebase", …).
    pub name: String,
    /// Functional category.
    pub category: SdkCategory,
    /// Dotted package prefixes attributable to this SDK.
    pub prefixes: Vec<String>,
    /// Which mechanism(s) the SDK's code contains.
    pub mechanism: WebMechanism,
    /// Paper-scale calibration target: apps observed using this SDK's
    /// WebView path (0 when it has none). From Table 4 for named SDKs.
    pub wv_apps: u32,
    /// Paper-scale calibration target for the CT path. From Table 5.
    pub ct_apps: u32,
    /// Whether the package naming is ProGuard-obfuscated (one of the 4
    /// packages the paper could not label for that reason).
    pub obfuscated: bool,
}

impl Sdk {
    /// Primary (first) package prefix.
    pub fn primary_prefix(&self) -> &str {
        &self.prefixes[0]
    }
}

/// Result of labeling a package name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label<'a> {
    /// Attributed to a cataloged SDK.
    Sdk(&'a Sdk),
    /// Part of the core Android SDK (`com.google.android`), excluded from
    /// SDK accounting "due to its multiple essential functions".
    CoreAndroid,
    /// ProGuard-style obfuscated package.
    Obfuscated,
    /// No catalog match.
    Unlabeled,
}

/// [`Label`] without the borrow: a `Copy` handle suitable for storing on
/// interned call-site summaries and for `u32`-keyed aggregation. `Sdk`
/// carries the catalog index of the matched entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabelId {
    /// Attributed to a cataloged SDK (catalog index).
    Sdk(u32),
    /// Part of the core Android SDK.
    CoreAndroid,
    /// ProGuard-style obfuscated package (heuristic or obfuscated catalog
    /// entry — merged, exactly as [`SdkIndex::label`] merges them).
    Obfuscated,
    /// No catalog match.
    Unlabeled,
}

/// The labeling index: catalog + prefix tries (string-keyed baseline and
/// segment-interned hot path).
#[derive(Debug, Clone)]
pub struct SdkIndex {
    sdks: Vec<Sdk>,
    trie: trie::PrefixTrie,
    interned_trie: trie::InternedTrie,
}

/// Prefix excluded from SDK attribution.
pub const CORE_ANDROID_PREFIX: &str = "com.google.android";

impl SdkIndex {
    /// Build an index over an arbitrary catalog.
    pub fn new(sdks: Vec<Sdk>) -> Self {
        let mut trie = trie::PrefixTrie::new();
        let mut interned_trie = trie::InternedTrie::new();
        for (i, sdk) in sdks.iter().enumerate() {
            for p in &sdk.prefixes {
                trie.insert(p, i as u32);
                interned_trie.insert(p, i as u32);
            }
        }
        SdkIndex {
            sdks,
            trie,
            interned_trie,
        }
    }

    /// The full paper catalog (Tables 3–5).
    pub fn paper() -> Self {
        SdkIndex::new(catalog::paper_catalog())
    }

    /// All catalog entries.
    pub fn sdks(&self) -> &[Sdk] {
        &self.sdks
    }

    /// Label a dotted package name. Longest-prefix match against the
    /// catalog; `com.google.android` takes precedence; unmatched packages
    /// fall back to the obfuscation heuristic.
    pub fn label(&self, package: &str) -> Label<'_> {
        if package == CORE_ANDROID_PREFIX || package.starts_with("com.google.android.") {
            return Label::CoreAndroid;
        }
        if let Some(idx) = self.trie.longest_match(package) {
            let sdk = &self.sdks[idx as usize];
            if sdk.obfuscated {
                return Label::Obfuscated;
            }
            return Label::Sdk(sdk);
        }
        if is_obfuscated_package(package) {
            return Label::Obfuscated;
        }
        Label::Unlabeled
    }

    /// Like [`label`](Self::label) but also returns a match for obfuscated
    /// catalog entries (for ground-truth bookkeeping in tests).
    pub fn lookup_any(&self, package: &str) -> Option<&Sdk> {
        self.trie
            .longest_match(package)
            .map(|idx| &self.sdks[idx as usize])
    }

    /// Linear-scan labeling with identical semantics to [`label`](Self::label)
    /// — kept as the baseline for the `sdk_labeling` ablation bench.
    pub fn label_linear(&self, package: &str) -> Label<'_> {
        if package == CORE_ANDROID_PREFIX || package.starts_with("com.google.android.") {
            return Label::CoreAndroid;
        }
        let mut best: Option<(usize, &Sdk)> = None;
        for sdk in &self.sdks {
            for p in &sdk.prefixes {
                let matches = package == p
                    || (package.len() > p.len()
                        && package.starts_with(p.as_str())
                        && package.as_bytes()[p.len()] == b'.');
                if matches {
                    let len = p.len();
                    if best.is_none_or(|(l, _)| len > l) {
                        best = Some((len, sdk));
                    }
                }
            }
        }
        match best {
            Some((_, sdk)) if sdk.obfuscated => Label::Obfuscated,
            Some((_, sdk)) => Label::Sdk(sdk),
            None if is_obfuscated_package(package) => Label::Obfuscated,
            None => Label::Unlabeled,
        }
    }

    /// [`label`](Self::label) on the segment-interned trie, returning the
    /// `Copy` [`LabelId`] the interned pipeline stores on call sites.
    /// Semantics are identical to `label`: `com.google.android` precedence,
    /// longest prefix match, obfuscated catalog entries and the obfuscation
    /// heuristic both collapse to [`LabelId::Obfuscated`].
    pub fn label_id(&self, package: &str) -> LabelId {
        if package == CORE_ANDROID_PREFIX || package.starts_with("com.google.android.") {
            return LabelId::CoreAndroid;
        }
        if let Some(idx) = self.interned_trie.longest_match(package) {
            if self.sdks[idx as usize].obfuscated {
                return LabelId::Obfuscated;
            }
            return LabelId::Sdk(idx);
        }
        if is_obfuscated_package(package) {
            return LabelId::Obfuscated;
        }
        LabelId::Unlabeled
    }
}

/// Per-worker package-label memo: [`PkgId`] → [`LabelId`].
///
/// Caller packages repeat massively across call sites and apps (every
/// AppLovin app calls from the same handful of packages), and within one
/// worker a [`PkgId`] is a stable dense key — so after the first trie walk
/// a label costs one `u32`-hash probe. Hit/miss counters feed the
/// pipeline's interner observability.
#[derive(Debug, Default)]
pub struct LabelCache {
    map: std::collections::HashMap<u32, LabelId, wla_intern::U32BuildHasher>,
    /// Labels served from the memo.
    pub hits: u64,
    /// Labels that walked the trie.
    pub misses: u64,
}

impl LabelCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Label `pkg` (whose resolved text is `package`), memoized.
    pub fn label(&mut self, catalog: &SdkIndex, pkg: PkgId, package: &str) -> LabelId {
        if let Some(&l) = self.map.get(&pkg.symbol().raw()) {
            self.hits += 1;
            return l;
        }
        self.misses += 1;
        let l = catalog.label_id(package);
        self.map.insert(pkg.symbol().raw(), l);
        l
    }
}

/// ProGuard-style obfuscation heuristic (shared with `wla-apk::names`; kept
/// here too so this crate stands alone for labeling).
fn is_obfuscated_package(pkg: &str) -> bool {
    let segments: Vec<&str> = pkg.split('.').collect();
    !segments.is_empty() && segments.iter().all(|s| !s.is_empty() && s.len() <= 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_matches_table3_counts() {
        let index = SdkIndex::paper();
        // Table 3: per-category (webview, ct, both) SDK counts.
        let expect: &[(SdkCategory, u32, u32, u32)] = &[
            (SdkCategory::Advertising, 46, 3, 3),
            (SdkCategory::Payments, 15, 6, 5),
            (SdkCategory::DevelopmentTools, 11, 7, 5),
            (SdkCategory::Engagement, 12, 0, 0),
            (SdkCategory::Social, 10, 6, 4),
            (SdkCategory::Authentication, 7, 10, 6),
            (SdkCategory::Unknown, 10, 4, 4),
            (SdkCategory::HybridFunctionality, 6, 7, 5),
            (SdkCategory::Utility, 4, 2, 2),
            (SdkCategory::UserSupport, 4, 0, 0),
        ];
        for &(cat, wv, ct, both) in expect {
            let of_cat: Vec<_> = index
                .sdks()
                .iter()
                .filter(|s| s.category == cat && !s.obfuscated)
                .collect();
            let n_wv = of_cat.iter().filter(|s| s.mechanism.uses_webview()).count() as u32;
            let n_ct = of_cat
                .iter()
                .filter(|s| s.mechanism.uses_custom_tabs())
                .count() as u32;
            let n_both = of_cat
                .iter()
                .filter(|s| s.mechanism == WebMechanism::Both)
                .count() as u32;
            assert_eq!((n_wv, n_ct, n_both), (wv, ct, both), "category {cat:?}");
        }
        // Totals row.
        let all: Vec<_> = index.sdks().iter().filter(|s| !s.obfuscated).collect();
        assert_eq!(
            all.iter().filter(|s| s.mechanism.uses_webview()).count(),
            125
        );
        assert_eq!(
            all.iter()
                .filter(|s| s.mechanism.uses_custom_tabs())
                .count(),
            45
        );
        assert_eq!(
            all.iter()
                .filter(|s| s.mechanism == WebMechanism::Both)
                .count(),
            34
        );
    }

    #[test]
    fn named_sdk_targets_match_table4_and_5() {
        let index = SdkIndex::paper();
        let get = |name: &str| {
            index
                .sdks()
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(get("AppLovin").wv_apps, 27_397);
        assert_eq!(get("ironSource").wv_apps, 16_326);
        assert_eq!(get("Facebook").ct_apps, 23_234);
        assert_eq!(get("Google Firebase").ct_apps, 7_565);
        assert_eq!(get("Stripe").wv_apps, 1_171);
        assert_eq!(get("HyprMX").ct_apps, 1_257);
        assert_eq!(get("Open Measurement").wv_apps, 11_333);
        assert_eq!(get("Juspay").ct_apps, 77);
        // Ticketmaster appears for payments and utility with both paths.
        assert!(get("Ticketmaster Checkout").mechanism.uses_custom_tabs());
        assert!(get("Ticketmaster").mechanism.uses_webview());
    }

    #[test]
    fn obfuscated_entries_exist() {
        let index = SdkIndex::paper();
        assert_eq!(index.sdks().iter().filter(|s| s.obfuscated).count(), 4);
    }

    #[test]
    fn labeling_basics() {
        let index = SdkIndex::paper();
        match index.label("com.applovin.adview") {
            Label::Sdk(sdk) => assert_eq!(sdk.name, "AppLovin"),
            other => panic!("expected AppLovin, got {other:?}"),
        }
        assert_eq!(index.label("com.google.android.gms"), Label::CoreAndroid);
        assert_eq!(index.label("a.b.c"), Label::Obfuscated);
        assert_eq!(index.label("org.nonexistent.thing"), Label::Unlabeled);
    }

    #[test]
    fn longest_prefix_wins() {
        // NAVER corporate (auth) vs NAVER social login share the com.navercorp root.
        let index = SdkIndex::paper();
        match index.label("com.navercorp.nid.oauth") {
            Label::Sdk(sdk) => assert_eq!(sdk.category, SdkCategory::Social),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prefix_is_segment_aligned() {
        let index = SdkIndex::paper();
        // "com.applovinx" must NOT match the "com.applovin" prefix.
        assert_eq!(index.label("com.applovinx.ads"), Label::Unlabeled);
    }

    #[test]
    fn trie_and_linear_agree_on_catalog() {
        let index = SdkIndex::paper();
        let probes = [
            "com.applovin.adview",
            "com.applovin",
            "com.applovinx",
            "com.google.android.gms",
            "com.google.firebase.auth.internal",
            "io.flutter.plugins.webview",
            "zendesk.support.ui",
            "a.b",
            "com.unknownthing.x",
            "epic.mychart.android",
        ];
        for p in probes {
            let a = format!("{:?}", index.label(p));
            let b = format!("{:?}", index.label_linear(p));
            assert_eq!(a, b, "mismatch for {p}");
        }
    }

    /// Project a borrow-carrying [`Label`] onto the `Copy` [`LabelId`]
    /// space for equality checks.
    fn label_as_id(index: &SdkIndex, l: Label<'_>) -> LabelId {
        match l {
            Label::Sdk(sdk) => LabelId::Sdk(
                index
                    .sdks()
                    .iter()
                    .position(|s| std::ptr::eq(s, sdk))
                    .expect("label borrows from the catalog") as u32,
            ),
            Label::CoreAndroid => LabelId::CoreAndroid,
            Label::Obfuscated => LabelId::Obfuscated,
            Label::Unlabeled => LabelId::Unlabeled,
        }
    }

    #[test]
    fn label_id_agrees_with_label_on_catalog_probes() {
        let index = SdkIndex::paper();
        let probes = [
            "com.applovin.adview",
            "com.applovin",
            "com.applovinx",
            "com.google.android",
            "com.google.android.gms.ads",
            "com.google.firebase.auth.internal",
            "io.flutter.plugins.webview",
            "zendesk.support.ui",
            "a.b",
            "ab.cd.ef",
            "com.unknownthing.x",
            "epic.mychart.android",
            "com.navercorp.nid.oauth",
        ];
        for p in probes {
            assert_eq!(
                index.label_id(p),
                label_as_id(&index, index.label(p)),
                "mismatch for {p}"
            );
        }
    }

    #[test]
    fn label_id_agrees_with_label_on_every_catalog_prefix() {
        let index = SdkIndex::paper();
        let prefixes: Vec<String> = index
            .sdks()
            .iter()
            .flat_map(|s| s.prefixes.iter().cloned())
            .collect();
        for p in &prefixes {
            for probe in [p.clone(), format!("{p}.internal.ui"), format!("{p}x")] {
                assert_eq!(
                    index.label_id(&probe),
                    label_as_id(&index, index.label(&probe)),
                    "mismatch for {probe}"
                );
            }
        }
    }

    #[test]
    fn label_cache_memoizes_by_pkgid() {
        use wla_intern::LocalInterner;
        let index = SdkIndex::paper();
        let mut lex = LocalInterner::new();
        let mut cache = LabelCache::new();
        let pkg = PkgId(lex.intern("com.applovin.adview"));
        let first = cache.label(&index, pkg, "com.applovin.adview");
        let second = cache.label(&index, pkg, "com.applovin.adview");
        assert_eq!(first, second);
        assert!(matches!(first, LabelId::Sdk(_)));
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn prefixes_are_unique_across_catalog() {
        let index = SdkIndex::paper();
        let mut seen = std::collections::HashSet::new();
        for sdk in index.sdks() {
            for p in &sdk.prefixes {
                assert!(
                    seen.insert(p.clone()),
                    "duplicate prefix {p} ({})",
                    sdk.name
                );
            }
        }
    }
}
