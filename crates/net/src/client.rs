//! Blocking `Connection: close` HTTP client.

use crate::http::{HttpError, Request, Response};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not connect.
    Connect(String),
    /// Protocol-level failure.
    Http(HttpError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Http(e) => write!(f, "http error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Http(e)
    }
}

/// Connect/read timeout for loopback measurement traffic.
const TIMEOUT: Duration = Duration::from_secs(5);

/// Send one request over a fresh connection and read the response.
///
/// One connection per request keeps the client trivially correct; the
/// measurement workload is tiny and latency-insensitive, and it mirrors the
/// `Connection: close` framing the codec emits.
pub fn fetch(addr: SocketAddr, request: Request) -> Result<Response, ClientError> {
    let stream = TcpStream::connect_timeout(&addr, TIMEOUT)
        .map_err(|e| ClientError::Connect(e.to_string()))?;
    stream
        .set_read_timeout(Some(TIMEOUT))
        .map_err(|e| ClientError::Connect(e.to_string()))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| ClientError::Connect(e.to_string()))?;
    request.write_to(&mut writer)?;
    let mut reader = BufReader::new(stream);
    Ok(Response::read_from(&mut reader)?)
}

/// A persistent keep-alive client connection.
///
/// Where [`fetch`] opens a fresh connection per request (`connection:
/// close` framing), this holds one socket open and frames every request
/// keep-alive — the client side of the nonblocking server's hot path, and
/// what the saturation bench and the equivalence suite drive. Pipelining
/// is explicit via [`ClientConn::send_pipelined`]: all requests are
/// written back-to-back before any response is read.
#[derive(Debug)]
pub struct ClientConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ClientConn {
    /// Open a persistent connection.
    pub fn connect(addr: SocketAddr) -> Result<ClientConn, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, TIMEOUT)
            .map_err(|e| ClientError::Connect(e.to_string()))?;
        stream
            .set_read_timeout(Some(TIMEOUT))
            .map_err(|e| ClientError::Connect(e.to_string()))?;
        stream.set_nodelay(true).ok();
        let writer = stream
            .try_clone()
            .map_err(|e| ClientError::Connect(e.to_string()))?;
        Ok(ClientConn {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// One keep-alive request/response exchange.
    pub fn send(&mut self, request: &Request) -> Result<Response, ClientError> {
        request.write_into(&mut self.writer, false)?;
        Ok(Response::read_from(&mut self.reader)?)
    }

    /// Write every request back-to-back (pipelined), then read the
    /// responses in order.
    pub fn send_pipelined(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let mut raw = Vec::new();
        for request in requests {
            request.write_into(&mut raw, false)?;
        }
        use std::io::Write as _;
        self.writer
            .write_all(&raw)
            .map_err(|e| ClientError::Http(HttpError::Io(e.to_string())))?;
        requests
            .iter()
            .map(|_| Response::read_from(&mut self.reader).map_err(ClientError::from))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_refused_is_error() {
        // Bind then drop to get a port that refuses connections.
        let addr = {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap()
        };
        let err = fetch(addr, Request::get("/")).unwrap_err();
        assert!(matches!(
            err,
            ClientError::Connect(_) | ClientError::Http(_)
        ));
    }
}
