//! Blocking `Connection: close` HTTP client.

use crate::http::{HttpError, Request, Response};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not connect.
    Connect(String),
    /// Protocol-level failure.
    Http(HttpError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Http(e) => write!(f, "http error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        ClientError::Http(e)
    }
}

/// Connect/read timeout for loopback measurement traffic.
const TIMEOUT: Duration = Duration::from_secs(5);

/// Send one request over a fresh connection and read the response.
///
/// One connection per request keeps the client trivially correct; the
/// measurement workload is tiny and latency-insensitive, and it mirrors the
/// `Connection: close` framing the codec emits.
pub fn fetch(addr: SocketAddr, request: Request) -> Result<Response, ClientError> {
    let stream = TcpStream::connect_timeout(&addr, TIMEOUT)
        .map_err(|e| ClientError::Connect(e.to_string()))?;
    stream
        .set_read_timeout(Some(TIMEOUT))
        .map_err(|e| ClientError::Connect(e.to_string()))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| ClientError::Connect(e.to_string()))?;
    request.write_to(&mut writer)?;
    let mut reader = BufReader::new(stream);
    Ok(Response::read_from(&mut reader)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_refused_is_error() {
        // Bind then drop to get a port that refuses connections.
        let addr = {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap()
        };
        let err = fetch(addr, Request::get("/")).unwrap_err();
        assert!(matches!(
            err,
            ClientError::Connect(_) | ClientError::Http(_)
        ));
    }
}
