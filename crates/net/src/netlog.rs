//! NetLog — Chrome-style structured network event capture.
//!
//! The paper records "network logs directly from Chrome's network stack" on
//! a rooted device, attributing each request to a specific WebView instance
//! (more precise than a device-wide proxy). [`NetLog`] plays that role for
//! the simulated device: every URL request a WebView (or CT/browser) makes
//! is logged with a source id, phase, and simulated-clock timestamp.
//!
//! URLs are stored as `Arc<str>`: the crawl pipeline replays the same
//! prepared per-site subresource lists through thousands of visits, and
//! sharing the backing string turns each replayed event into a refcount
//! bump instead of a fresh heap allocation ([`NetLog::record_shared`],
//! [`NetLog::record_request_pairs`]).

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Request lifecycle phases (a compact subset of Chrome's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetLogPhase {
    /// URL request issued.
    RequestSent,
    /// Response headers received.
    ResponseReceived,
    /// Request failed.
    Failed,
}

/// One captured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetLogEvent {
    /// Identifier of the requesting WebView / tab instance.
    pub source_id: u32,
    /// Requested URL (shared, so replayed prepared URLs don't reallocate).
    pub url: Arc<str>,
    /// Phase.
    pub phase: NetLogPhase,
    /// Simulated milliseconds since capture start.
    pub timestamp_ms: u64,
}

/// Thread-safe event log with a monotonically advancing simulated clock.
#[derive(Debug, Default, Clone)]
pub struct NetLog {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<NetLogEvent>,
    clock_ms: u64,
}

impl NetLog {
    /// Fresh empty log.
    pub fn new() -> NetLog {
        NetLog::default()
    }

    /// Advance the simulated clock.
    pub fn advance_clock(&self, ms: u64) {
        self.inner.lock().clock_ms += ms;
    }

    /// Current simulated time.
    pub fn now_ms(&self) -> u64 {
        self.inner.lock().clock_ms
    }

    /// Record an event at the current simulated time.
    pub fn record(&self, source_id: u32, url: &str, phase: NetLogPhase) {
        self.record_shared(source_id, Arc::from(url), phase);
    }

    /// Record an event whose URL is already shared — no string allocation.
    pub fn record_shared(&self, source_id: u32, url: Arc<str>, phase: NetLogPhase) {
        let mut inner = self.inner.lock();
        let timestamp_ms = inner.clock_ms;
        inner.events.push(NetLogEvent {
            source_id,
            url,
            phase,
            timestamp_ms,
        });
    }

    /// Record a `RequestSent`/`ResponseReceived` pair per URL under one
    /// lock acquisition, advancing the clock by `clock_step_ms` before
    /// each pair — the shape of a page's subresource fetch burst.
    pub fn record_request_pairs(&self, source_id: u32, urls: &[Arc<str>], clock_step_ms: u64) {
        let mut inner = self.inner.lock();
        inner.events.reserve(urls.len() * 2);
        for url in urls {
            inner.clock_ms += clock_step_ms;
            let timestamp_ms = inner.clock_ms;
            inner.events.push(NetLogEvent {
                source_id,
                url: url.clone(),
                phase: NetLogPhase::RequestSent,
                timestamp_ms,
            });
            inner.events.push(NetLogEvent {
                source_id,
                url: url.clone(),
                phase: NetLogPhase::ResponseReceived,
                timestamp_ms,
            });
        }
    }

    /// Total events captured.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether anything was captured.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    /// Snapshot of all events.
    pub fn events(&self) -> Vec<NetLogEvent> {
        self.inner.lock().events.clone()
    }

    /// Events for one source (one WebView instance).
    pub fn events_for(&self, source_id: u32) -> Vec<NetLogEvent> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.source_id == source_id)
            .cloned()
            .collect()
    }

    /// Distinct hosts contacted by one source — the unit Figures 6a/6b
    /// count ("distinct endpoints contacted by an IAB").
    pub fn distinct_hosts_for(&self, source_id: u32) -> BTreeSet<String> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.source_id == source_id && e.phase == NetLogPhase::RequestSent)
            .filter_map(|e| host_of(&e.url).map(str::to_owned))
            .collect()
    }

    /// Visit the host of every `RequestSent` event for one source, in
    /// capture order, without materializing an owned host set — the
    /// allocation-free path the interned crawl pipeline consumes.
    pub fn for_each_request_host(&self, source_id: u32, mut f: impl FnMut(&str)) {
        for e in self.inner.lock().events.iter() {
            if e.source_id == source_id && e.phase == NetLogPhase::RequestSent {
                if let Some(host) = host_of(&e.url) {
                    f(host);
                }
            }
        }
    }

    /// Visit the shared URL of every `RequestSent` event for one source,
    /// in capture order. Prepared-page and endpoint-rule URLs are one
    /// `Arc` shared across every visit that fetches them, so callers can
    /// key per-URL caches on the `Arc`'s pointer identity instead of
    /// re-parsing the string each time.
    pub fn for_each_request_url(&self, source_id: u32, mut f: impl FnMut(&Arc<str>)) {
        for e in self.inner.lock().events.iter() {
            if e.source_id == source_id && e.phase == NetLogPhase::RequestSent {
                f(&e.url);
            }
        }
    }

    /// Purge all events ("purge the logs on the device" between crawls).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }
}

/// Mount the netlog capture endpoints onto a router: `POST /netlog`
/// records a form-encoded event (`source`, `url`, optional `phase` of
/// `sent`/`received`/`failed`), and `GET /netlog/hosts?source=N` returns
/// the distinct hosts contacted by that source, one per line — the
/// HTTP face of the device-side "pull the netlog from the rooted Pixel"
/// step, served by the same router as the beacon and analysis routes.
pub fn netlog_routes(router: crate::router::Router, log: NetLog) -> crate::router::Router {
    use crate::http::{parse_form, Method, Request, Response, Status};
    let post_log = log.clone();
    router
        .route(Method::Post, "/netlog", move |req: &Request| {
            let body = String::from_utf8_lossy(&req.body);
            let pairs = parse_form(&body);
            let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
            let source = get("source").and_then(|s| s.parse::<u32>().ok());
            let phase = match get("phase").as_deref() {
                None | Some("sent") => Some(NetLogPhase::RequestSent),
                Some("received") => Some(NetLogPhase::ResponseReceived),
                Some("failed") => Some(NetLogPhase::Failed),
                Some(_) => None,
            };
            match (source, get("url"), phase) {
                (Some(source), Some(url), Some(phase)) if !url.is_empty() => {
                    post_log.record(source, &url, phase);
                    Response::no_content()
                }
                _ => Response::error(Status::BadRequest, "missing/invalid source, url, or phase"),
            }
        })
        .route(Method::Get, "/netlog/hosts", move |req: &Request| {
            let source = req
                .query()
                .and_then(|q| {
                    parse_form(q)
                        .into_iter()
                        .find(|(k, _)| k == "source")
                        .map(|(_, v)| v)
                })
                .and_then(|s| s.parse::<u32>().ok());
            match source {
                Some(source) => {
                    let hosts: Vec<String> = log.distinct_hosts_for(source).into_iter().collect();
                    Response::ok("text/plain", hosts.join("\n").into_bytes())
                }
                None => Response::error(Status::BadRequest, "missing/invalid source"),
            }
        })
}

/// Extract the host from a URL (scheme-optional).
pub fn host_of(url: &str) -> Option<&str> {
    let rest = url.split("://").nth(1).unwrap_or(url);
    let host = rest.split(['/', '?', '#']).next()?;
    let host = host.split('@').next_back()?; // strip userinfo
    let host = host.split(':').next()?; // strip port
    if host.is_empty() {
        None
    } else {
        Some(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters_by_source() {
        let log = NetLog::new();
        log.record(1, "https://a.example/x", NetLogPhase::RequestSent);
        log.advance_clock(10);
        log.record(2, "https://b.example/y", NetLogPhase::RequestSent);
        log.record(1, "https://a.example/x", NetLogPhase::ResponseReceived);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.events_for(1).len(), 2);
        assert_eq!(log.events_for(2)[0].timestamp_ms, 10);
    }

    #[test]
    fn distinct_hosts_deduplicate() {
        let log = NetLog::new();
        log.record(1, "https://cdn.x.com/a.js", NetLogPhase::RequestSent);
        log.record(1, "https://cdn.x.com/b.js", NetLogPhase::RequestSent);
        log.record(1, "https://ads.mopub.com/bid", NetLogPhase::RequestSent);
        log.record(1, "https://fail.example/", NetLogPhase::Failed); // not a request
        let hosts = log.distinct_hosts_for(1);
        assert_eq!(
            hosts.into_iter().collect::<Vec<_>>(),
            vec!["ads.mopub.com".to_owned(), "cdn.x.com".to_owned()]
        );
    }

    #[test]
    fn request_pairs_match_individual_records() {
        let urls: Vec<Arc<str>> = vec![
            Arc::from("https://cdn.x.com/a.js"),
            Arc::from("https://img.x.com/b.jpg"),
        ];
        let batched = NetLog::new();
        batched.record_request_pairs(7, &urls, 2);

        let serial = NetLog::new();
        for url in &urls {
            serial.advance_clock(2);
            serial.record_shared(7, url.clone(), NetLogPhase::RequestSent);
            serial.record_shared(7, url.clone(), NetLogPhase::ResponseReceived);
        }
        assert_eq!(batched.events(), serial.events());
        assert_eq!(batched.now_ms(), serial.now_ms());
    }

    #[test]
    fn for_each_request_host_sees_sent_only() {
        let log = NetLog::new();
        log.record(1, "https://a.x.com/1", NetLogPhase::RequestSent);
        log.record(1, "https://a.x.com/2", NetLogPhase::ResponseReceived);
        log.record(2, "https://other.com/", NetLogPhase::RequestSent);
        log.record(1, "https://b.x.com/", NetLogPhase::RequestSent);
        let mut seen = Vec::new();
        log.for_each_request_host(1, |h| seen.push(h.to_owned()));
        assert_eq!(seen, vec!["a.x.com".to_owned(), "b.x.com".to_owned()]);
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("https://a.b.c/path?q=1"), Some("a.b.c"));
        assert_eq!(host_of("http://host:8080/"), Some("host"));
        assert_eq!(host_of("host.only"), Some("host.only"));
        assert_eq!(host_of("https://user@host/p"), Some("host"));
        assert_eq!(host_of("https:///nohost"), None);
    }

    #[test]
    fn clear_purges() {
        let log = NetLog::new();
        log.record(1, "https://x/", NetLogPhase::RequestSent);
        log.clear();
        assert!(log.events().is_empty());
        assert!(log.is_empty());
        // Clock survives the purge.
        log.advance_clock(5);
        assert_eq!(log.now_ms(), 5);
    }

    #[test]
    fn netlog_http_routes_record_and_report() {
        use crate::http::{form_encode, Request, Status};
        use crate::router::Router;

        let log = NetLog::new();
        let router = netlog_routes(Router::new(), log.clone());
        let post = |body: String| router.dispatch(&Request::post("/netlog", body.into_bytes()));
        let url = "https://ads.mopub.com/bid?x=1";
        let resp = post(format!("source=7&url={}", form_encode(url)));
        assert_eq!(resp.status, Status::NoContent);
        let resp = post(format!("source=7&url={}&phase=received", form_encode(url)));
        assert_eq!(resp.status, Status::NoContent);
        let resp = post("source=notanum&url=https%3A%2F%2Fx%2F".into());
        assert_eq!(resp.status, Status::BadRequest);
        let resp = post("source=1&url=https%3A%2F%2Fx%2F&phase=bogus".into());
        assert_eq!(resp.status, Status::BadRequest);

        assert_eq!(log.len(), 2);
        assert_eq!(log.events_for(7)[0].url.as_ref(), url);

        let resp = router.dispatch(&Request::get("/netlog/hosts?source=7"));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&resp.body[..], b"ads.mopub.com");
        let resp = router.dispatch(&Request::get("/netlog/hosts"));
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let log = NetLog::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        log.record(
                            i,
                            &format!("https://h{i}.example/{j}"),
                            NetLogPhase::RequestSent,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.events().len(), 800);
    }
}
