//! NetLog — Chrome-style structured network event capture.
//!
//! The paper records "network logs directly from Chrome's network stack" on
//! a rooted device, attributing each request to a specific WebView instance
//! (more precise than a device-wide proxy). [`NetLog`] plays that role for
//! the simulated device: every URL request a WebView (or CT/browser) makes
//! is logged with a source id, phase, and simulated-clock timestamp.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Request lifecycle phases (a compact subset of Chrome's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetLogPhase {
    /// URL request issued.
    RequestSent,
    /// Response headers received.
    ResponseReceived,
    /// Request failed.
    Failed,
}

/// One captured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetLogEvent {
    /// Identifier of the requesting WebView / tab instance.
    pub source_id: u32,
    /// Requested URL.
    pub url: String,
    /// Phase.
    pub phase: NetLogPhase,
    /// Simulated milliseconds since capture start.
    pub timestamp_ms: u64,
}

/// Thread-safe event log with a monotonically advancing simulated clock.
#[derive(Debug, Default, Clone)]
pub struct NetLog {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<NetLogEvent>,
    clock_ms: u64,
}

impl NetLog {
    /// Fresh empty log.
    pub fn new() -> NetLog {
        NetLog::default()
    }

    /// Advance the simulated clock.
    pub fn advance_clock(&self, ms: u64) {
        self.inner.lock().clock_ms += ms;
    }

    /// Current simulated time.
    pub fn now_ms(&self) -> u64 {
        self.inner.lock().clock_ms
    }

    /// Record an event at the current simulated time.
    pub fn record(&self, source_id: u32, url: &str, phase: NetLogPhase) {
        let mut inner = self.inner.lock();
        let timestamp_ms = inner.clock_ms;
        inner.events.push(NetLogEvent {
            source_id,
            url: url.to_owned(),
            phase,
            timestamp_ms,
        });
    }

    /// Snapshot of all events.
    pub fn events(&self) -> Vec<NetLogEvent> {
        self.inner.lock().events.clone()
    }

    /// Events for one source (one WebView instance).
    pub fn events_for(&self, source_id: u32) -> Vec<NetLogEvent> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.source_id == source_id)
            .cloned()
            .collect()
    }

    /// Distinct hosts contacted by one source — the unit Figures 6a/6b
    /// count ("distinct endpoints contacted by an IAB").
    pub fn distinct_hosts_for(&self, source_id: u32) -> BTreeSet<String> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.source_id == source_id && e.phase == NetLogPhase::RequestSent)
            .filter_map(|e| host_of(&e.url).map(str::to_owned))
            .collect()
    }

    /// Purge all events ("purge the logs on the device" between crawls).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }
}

/// Extract the host from a URL (scheme-optional).
pub fn host_of(url: &str) -> Option<&str> {
    let rest = url.split("://").nth(1).unwrap_or(url);
    let host = rest.split(['/', '?', '#']).next()?;
    let host = host.split('@').next_back()?; // strip userinfo
    let host = host.split(':').next()?; // strip port
    if host.is_empty() {
        None
    } else {
        Some(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters_by_source() {
        let log = NetLog::new();
        log.record(1, "https://a.example/x", NetLogPhase::RequestSent);
        log.advance_clock(10);
        log.record(2, "https://b.example/y", NetLogPhase::RequestSent);
        log.record(1, "https://a.example/x", NetLogPhase::ResponseReceived);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.events_for(1).len(), 2);
        assert_eq!(log.events_for(2)[0].timestamp_ms, 10);
    }

    #[test]
    fn distinct_hosts_deduplicate() {
        let log = NetLog::new();
        log.record(1, "https://cdn.x.com/a.js", NetLogPhase::RequestSent);
        log.record(1, "https://cdn.x.com/b.js", NetLogPhase::RequestSent);
        log.record(1, "https://ads.mopub.com/bid", NetLogPhase::RequestSent);
        log.record(1, "https://fail.example/", NetLogPhase::Failed); // not a request
        let hosts = log.distinct_hosts_for(1);
        assert_eq!(
            hosts.into_iter().collect::<Vec<_>>(),
            vec!["ads.mopub.com".to_owned(), "cdn.x.com".to_owned()]
        );
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("https://a.b.c/path?q=1"), Some("a.b.c"));
        assert_eq!(host_of("http://host:8080/"), Some("host"));
        assert_eq!(host_of("host.only"), Some("host.only"));
        assert_eq!(host_of("https://user@host/p"), Some("host"));
        assert_eq!(host_of("https:///nohost"), None);
    }

    #[test]
    fn clear_purges() {
        let log = NetLog::new();
        log.record(1, "https://x/", NetLogPhase::RequestSent);
        log.clear();
        assert!(log.events().is_empty());
        // Clock survives the purge.
        log.advance_clock(5);
        assert_eq!(log.now_ms(), 5);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let log = NetLog::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        log.record(
                            i,
                            &format!("https://h{i}.example/{j}"),
                            NetLogPhase::RequestSent,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.events().len(), 800);
    }
}
