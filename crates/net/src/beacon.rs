//! The measurement server of §3.2.2.
//!
//! The paper hosts an HTML5 test page whose only script overrides all Web
//! API methods and submits each intercepted call back to the researchers'
//! server. This module is that server: it serves the controlled page at
//! `GET /page`, accepts interception reports at `POST /beacon`
//! (form-encoded `interface`, `method`, `argument`, `visitor`), and records
//! them for later analysis.

use crate::http::{parse_form, Method, Request, Response, Status};
use crate::router::Router;
use crate::server::Server;
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;

/// One intercepted Web-API call, as reported by the instrumented page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeaconRecord {
    /// Web API interface (`Document`, `Element`, …).
    pub interface: String,
    /// Method name (`getElementById`, …).
    pub method: String,
    /// Stringified first argument, if reported.
    pub argument: Option<String>,
    /// Identifier of the visiting WebView/app (from the `visitor` field or
    /// the `X-Requested-With` header WebView requests carry).
    pub visitor: Option<String>,
}

/// Shared store of beacon records.
#[derive(Debug, Default, Clone)]
pub struct BeaconStore(Arc<Mutex<Vec<BeaconRecord>>>);

impl BeaconStore {
    /// Snapshot of all records.
    pub fn records(&self) -> Vec<BeaconRecord> {
        self.0.lock().clone()
    }

    /// Clear between crawl visits ("purge the logs on the device").
    pub fn clear(&self) {
        self.0.lock().clear();
    }

    fn push(&self, record: BeaconRecord) {
        self.0.lock().push(record);
    }
}

/// The measurement server: controlled page + beacon endpoint.
#[derive(Debug)]
pub struct MeasurementServer {
    server: Server,
    store: BeaconStore,
}

/// Mount the measurement routes — `GET /page` (the controlled page) and
/// `POST /beacon` (interception reports) — onto a router, so they compose
/// with the netlog and analysis routes on one server.
pub fn beacon_routes(router: Router, page_html: Arc<String>, store: BeaconStore) -> Router {
    router
        .route(Method::Get, "/page", move |_req: &Request| {
            Response::ok("text/html", page_html.as_bytes().to_vec())
        })
        .route(Method::Post, "/beacon", move |req: &Request| {
            let body = String::from_utf8_lossy(&req.body);
            let pairs = parse_form(&body);
            let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
            match (get("interface"), get("method")) {
                (Some(interface), Some(method)) => {
                    store.push(BeaconRecord {
                        interface,
                        method,
                        argument: get("argument"),
                        visitor: get("visitor")
                            .or_else(|| req.header("x-requested-with").map(str::to_owned)),
                    });
                    Response::no_content()
                }
                _ => Response::error(Status::BadRequest, "missing interface/method"),
            }
        })
}

impl MeasurementServer {
    /// Start with the given controlled-page HTML.
    pub fn start(page_html: String) -> std::io::Result<MeasurementServer> {
        let store = BeaconStore::default();
        let router = beacon_routes(Router::new(), Arc::new(page_html), store.clone());
        let server = Server::start(router.into_handler())?;
        Ok(MeasurementServer { server, store })
    }

    /// Server address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Recorded beacons.
    pub fn records(&self) -> Vec<BeaconRecord> {
        self.store.records()
    }

    /// Clear recorded beacons.
    pub fn clear(&self) {
        self.store.clear()
    }

    /// Stop the server.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

/// Build a form-encoded beacon body — used by the instrumented Web-API
/// layer in `wla-web`.
pub fn encode_beacon(
    interface: &str,
    method: &str,
    argument: Option<&str>,
    visitor: &str,
) -> String {
    use crate::http::form_encode;
    let mut body = format!(
        "interface={}&method={}&visitor={}",
        form_encode(interface),
        form_encode(method),
        form_encode(visitor)
    );
    if let Some(arg) = argument {
        body.push_str(&format!("&argument={}", form_encode(arg)));
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::fetch;

    #[test]
    fn beacons_recorded_over_real_sockets() {
        let server = MeasurementServer::start("<html><body>test</body></html>".into()).unwrap();

        let page = fetch(server.addr(), Request::get("/page")).unwrap();
        assert_eq!(page.status, Status::Ok);
        assert!(std::str::from_utf8(&page.body).unwrap().contains("test"));

        let body = encode_beacon(
            "Document",
            "getElementById",
            Some("checkout & pay"),
            "com.facebook.katana",
        );
        let resp = fetch(server.addr(), Request::post("/beacon", body.into_bytes())).unwrap();
        assert_eq!(resp.status, Status::NoContent);

        let records = server.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].interface, "Document");
        assert_eq!(records[0].method, "getElementById");
        assert_eq!(records[0].argument.as_deref(), Some("checkout & pay"));
        assert_eq!(records[0].visitor.as_deref(), Some("com.facebook.katana"));
    }

    #[test]
    fn visitor_falls_back_to_x_requested_with() {
        let server = MeasurementServer::start(String::new()).unwrap();
        let body = encode_beacon("Element", "insertBefore", None, "");
        // Strip the empty visitor param to force fallback.
        let body = body.replace("&visitor=", "&ignored=");
        let req = Request::post("/beacon", body.into_bytes())
            .with_header("X-Requested-With", "kik.android");
        fetch(server.addr(), req).unwrap();
        let records = server.records();
        assert_eq!(records[0].visitor.as_deref(), Some("kik.android"));
    }

    #[test]
    fn malformed_beacon_rejected() {
        let server = MeasurementServer::start(String::new()).unwrap();
        let resp = fetch(
            server.addr(),
            Request::post("/beacon", &b"nothing=here"[..]),
        )
        .unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        assert!(server.records().is_empty());
    }

    #[test]
    fn clear_purges_between_visits() {
        let server = MeasurementServer::start(String::new()).unwrap();
        let body = encode_beacon("Document", "querySelectorAll", None, "v");
        fetch(server.addr(), Request::post("/beacon", body.into_bytes())).unwrap();
        assert_eq!(server.records().len(), 1);
        server.clear();
        assert!(server.records().is_empty());
    }
}
