//! HTTP/1.1 request/response types and codec.
//!
//! Scope: exactly what the measurement path needs — GET/POST/HEAD,
//! Content-Length framing, case-insensitive headers, bounded header and
//! body sizes. Deliberately omitted (documented, smoltcp-style): chunked
//! transfer encoding, trailers, pipelining, HTTP/2, and TLS.

use bytes::Bytes;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Hard cap on the header block, matching common server defaults.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Hard cap on bodies accepted by this stack.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Socket-level failure.
    Io(String),
    /// The peer closed before a full message arrived.
    UnexpectedEof,
    /// Malformed request/status line or header.
    Malformed(&'static str),
    /// Unsupported method.
    BadMethod(String),
    /// Header block exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// Declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::Malformed(what) => write!(f, "malformed {what}"),
            HttpError::BadMethod(m) => write!(f, "unsupported method {m:?}"),
            HttpError::HeadersTooLarge => write!(f, "header block too large"),
            HttpError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e.to_string())
    }
}

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// HEAD.
    Head,
}

impl Method {
    fn parse(s: &str) -> Result<Method, HttpError> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "HEAD" => Ok(Method::Head),
            other => Err(HttpError::BadMethod(other.to_owned())),
        }
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }
}

/// Response status subset used by the measurement stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 204.
    NoContent,
    /// 302 with a Location header (the IAB redirector experiments).
    Found,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 413.
    PayloadTooLarge,
    /// 500.
    InternalError,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NoContent => 204,
            Status::Found => 302,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::PayloadTooLarge => 413,
            Status::InternalError => 500,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::NoContent => "No Content",
            Status::Found => "Found",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::PayloadTooLarge => "Payload Too Large",
            Status::InternalError => "Internal Server Error",
        }
    }

    fn from_code(code: u16) -> Status {
        match code {
            200 => Status::Ok,
            204 => Status::NoContent,
            302 => Status::Found,
            400 => Status::BadRequest,
            404 => Status::NotFound,
            413 => Status::PayloadTooLarge,
            _ => Status::InternalError,
        }
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Request target (path + optional query).
    pub target: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Bytes,
}

impl Request {
    /// New GET request.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// New POST request with a body.
    pub fn post(target: impl Into<String>, body: impl Into<Bytes>) -> Request {
        Request {
            method: Method::Post,
            target: target.into(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Add a header (name lowercased).
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_owned()));
        self
    }

    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path portion of the target (before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Query portion of the target, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Serialize onto a writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), HttpError> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method.as_str(), self.target)?;
        let mut has_len = false;
        for (n, v) in &self.headers {
            if n == "content-length" {
                has_len = true;
            }
            write!(w, "{n}: {v}\r\n")?;
        }
        if !has_len && (!self.body.is_empty() || self.method == Method::Post) {
            write!(w, "content-length: {}\r\n", self.body.len())?;
        }
        write!(w, "connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        Ok(())
    }

    /// Parse a request from a buffered reader.
    pub fn read_from<R: Read>(reader: &mut BufReader<R>) -> Result<Request, HttpError> {
        let start = read_line_limited(reader)?;
        let mut parts = start.split_whitespace();
        let method = Method::parse(parts.next().ok_or(HttpError::Malformed("request line"))?)?;
        let target = parts
            .next()
            .ok_or(HttpError::Malformed("request target"))?
            .to_owned();
        let version = parts.next().ok_or(HttpError::Malformed("http version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("http version"));
        }
        let headers = read_headers(reader)?;
        let body = read_body(reader, &headers)?;
        Ok(Request {
            method,
            target,
            headers,
            body,
        })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status.
    pub status: Status,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// 200 response with a body and content type.
    pub fn ok(content_type: &str, body: impl Into<Bytes>) -> Response {
        Response {
            status: Status::Ok,
            headers: vec![("content-type".into(), content_type.into())],
            body: body.into(),
        }
    }

    /// 204 response.
    pub fn no_content() -> Response {
        Response {
            status: Status::NoContent,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// 302 redirect.
    pub fn redirect(location: &str) -> Response {
        Response {
            status: Status::Found,
            headers: vec![("location".into(), location.into())],
            body: Bytes::new(),
        }
    }

    /// Error response with a plain-text body.
    pub fn error(status: Status, message: &str) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain".into())],
            body: Bytes::copy_from_slice(message.as_bytes()),
        }
    }

    /// First header value by name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serialize onto a writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), HttpError> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        )?;
        for (n, v) in &self.headers {
            write!(w, "{n}: {v}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(w, "connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        Ok(())
    }

    /// Parse a response from a buffered reader.
    pub fn read_from<R: Read>(reader: &mut BufReader<R>) -> Result<Response, HttpError> {
        let start = read_line_limited(reader)?;
        let mut parts = start.split_whitespace();
        let version = parts.next().ok_or(HttpError::Malformed("status line"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("http version"));
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or(HttpError::Malformed("status code"))?;
        let headers = read_headers(reader)?;
        let body = read_body(reader, &headers)?;
        Ok(Response {
            status: Status::from_code(code),
            headers,
            body,
        })
    }
}

fn read_line_limited<R: Read>(reader: &mut BufReader<R>) -> Result<String, HttpError> {
    // Buffered read up to the newline: one read_until over the BufReader's
    // internal buffer instead of a syscall-shaped read() per byte. The
    // Take guard bounds how much a newline-free stream can make us buffer.
    let mut raw = Vec::new();
    let n = std::io::Read::take(&mut *reader, MAX_HEADER_BYTES as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Err(HttpError::UnexpectedEof);
    }
    if raw.last() != Some(&b'\n') {
        // No terminator: either the peer closed mid-line or the line is
        // longer than the whole header budget.
        if n > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        return Err(HttpError::UnexpectedEof);
    }
    raw.pop();
    // Strip one '\r' if it immediately precedes the '\n'. A bare '\r'
    // anywhere else is payload (e.g. inside a header value) and survives.
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    Ok(raw.into_iter().map(|b| b as char).collect())
}

fn read_headers<R: Read>(reader: &mut BufReader<R>) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_line_limited(reader)?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::Malformed("header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
}

fn read_body<R: Read>(
    reader: &mut BufReader<R>,
    headers: &[(String, String)],
) -> Result<Bytes, HttpError> {
    // A missing content-length means "no body"; a *present but
    // unparseable* one ("abc", negative, overflow) must be rejected —
    // treating it as 0 would desync framing on this connection and the
    // server would read the body bytes as the next request line.
    let len: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .trim()
            .parse()
            .map_err(|_| HttpError::Malformed("content-length"))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(len));
    }
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|_| HttpError::UnexpectedEof)?;
    Ok(Bytes::from(body))
}

/// Percent-decode a form-encoded component (`+` and `%XX`).
pub fn form_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a form component.
pub fn form_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Parse an `application/x-www-form-urlencoded` body into pairs.
pub fn parse_form(body: &str) -> Vec<(String, String)> {
    body.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (form_decode(k), form_decode(v)),
            None => (form_decode(kv), String::new()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        Request::read_from(&mut BufReader::new(Cursor::new(buf))).unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        Response::read_from(&mut BufReader::new(Cursor::new(buf))).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let req = Request::post("/beacon?x=1", &b"interface=Document"[..])
            .with_header("X-Requested-With", "com.facebook.katana");
        let back = roundtrip_request(&req);
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.target, "/beacon?x=1");
        assert_eq!(back.path(), "/beacon");
        assert_eq!(back.query(), Some("x=1"));
        assert_eq!(back.header("x-requested-with"), Some("com.facebook.katana"));
        assert_eq!(&back.body[..], b"interface=Document");
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok("text/html", &b"<html></html>"[..]);
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, Status::Ok);
        assert_eq!(back.header("content-type"), Some("text/html"));
        assert_eq!(&back.body[..], b"<html></html>");
    }

    #[test]
    fn redirect_roundtrip() {
        let resp = Response::redirect("https://example.com/next");
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, Status::Found);
        assert_eq!(back.header("location"), Some("https://example.com/next"));
    }

    #[test]
    fn empty_get_has_no_body() {
        let back = roundtrip_request(&Request::get("/"));
        assert!(back.body.is_empty());
    }

    #[test]
    fn bad_method_rejected() {
        let raw = b"BREW /pot HTTP/1.1\r\n\r\n";
        let err = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap_err();
        assert!(matches!(err, HttpError::BadMethod(_)));
    }

    #[test]
    fn truncated_body_is_eof() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        let err = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap_err();
        assert_eq!(err, HttpError::UnexpectedEof);
    }

    #[test]
    fn oversized_body_rejected_without_reading() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err =
            Request::read_from(&mut BufReader::new(Cursor::new(raw.into_bytes()))).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(_)));
    }

    #[test]
    fn header_bomb_rejected() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..4000 {
            raw.push_str(&format!("x-filler-{i}: aaaaaaaaaaaaaaaa\r\n"));
        }
        raw.push_str("\r\n");
        let err =
            Request::read_from(&mut BufReader::new(Cursor::new(raw.into_bytes()))).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
    }

    #[test]
    fn unparseable_content_length_is_malformed() {
        // "abc", a negative value, and a value overflowing usize must all
        // be rejected, not silently framed as an empty body.
        for bad in ["abc", "-5", "18446744073709551616", "12 34", "0x10"] {
            let raw = format!("POST / HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
            let err =
                Request::read_from(&mut BufReader::new(Cursor::new(raw.into_bytes()))).unwrap_err();
            assert_eq!(err, HttpError::Malformed("content-length"), "value {bad:?}");
        }
    }

    #[test]
    fn missing_content_length_still_means_empty_body() {
        let raw = b"GET / HTTP/1.1\r\nhost: localhost\r\n\r\n";
        let req = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn bare_cr_in_header_value_survives() {
        // Only a '\r' immediately before '\n' is line framing; a bare '\r'
        // inside a value is payload and must round-trip unchanged.
        let raw = b"GET / HTTP/1.1\r\nx-odd: a\rb\r\n\r\n";
        let req = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap();
        assert_eq!(req.header("x-odd"), Some("a\rb"));

        let resp = Response {
            status: Status::Ok,
            headers: vec![("x-odd".into(), "left\rright".into())],
            body: Bytes::new(),
        };
        let back = roundtrip_response(&resp);
        assert_eq!(back.header("x-odd"), Some("left\rright"));
    }

    #[test]
    fn line_without_terminator_is_eof_not_empty() {
        let raw = b"GET / HTTP/1.1";
        let err = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap_err();
        assert_eq!(err, HttpError::UnexpectedEof);
    }

    #[test]
    fn newline_free_stream_hits_header_cap() {
        let raw = vec![b'A'; MAX_HEADER_BYTES + 64];
        let err = Request::read_from(&mut BufReader::new(Cursor::new(raw))).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
    }

    #[test]
    fn form_codec() {
        let pairs = parse_form("interface=Document&method=getElementById&arg=a+b%26c");
        assert_eq!(
            pairs,
            vec![
                ("interface".into(), "Document".into()),
                ("method".into(), "getElementById".into()),
                ("arg".into(), "a b&c".into()),
            ]
        );
    }

    proptest! {
        #[test]
        fn prop_form_roundtrip(s in ".{0,80}") {
            prop_assert_eq!(form_decode(&form_encode(&s)), s);
        }

        #[test]
        fn prop_request_body_roundtrip(body in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let req = Request::post("/b", body.clone());
            let back = roundtrip_request(&req);
            prop_assert_eq!(&back.body[..], &body[..]);
        }

        #[test]
        fn prop_parser_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Request::read_from(&mut BufReader::new(Cursor::new(raw.clone())));
            let _ = Response::read_from(&mut BufReader::new(Cursor::new(raw)));
        }
    }
}
