//! HTTP/1.1 request/response types and codec.
//!
//! Scope: exactly what the measurement path needs — GET/POST/HEAD,
//! Content-Length framing, case-insensitive headers, bounded header and
//! body sizes. Deliberately omitted (documented, smoltcp-style): chunked
//! transfer encoding, trailers, pipelining, HTTP/2, and TLS.

use bytes::Bytes;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Hard cap on the header block, matching common server defaults.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Hard cap on bodies accepted by this stack.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Hard cap on the number of headers per message.
pub const MAX_HEADERS: usize = 100;

/// Configurable per-message codec limits. The defaults reproduce the
/// historical hard caps; servers thread their own copies so a deployment
/// fronting the analysis pipeline can shrink the body budget without
/// rebuilding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Cap on the header block in bytes (exceeding it is a 431).
    pub max_header_bytes: usize,
    /// Cap on declared bodies in bytes (exceeding it is a 413).
    pub max_body_bytes: usize,
    /// Cap on the number of headers per message (exceeding it is a 431).
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: MAX_HEADER_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
            max_headers: MAX_HEADERS,
        }
    }
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Socket-level failure.
    Io(String),
    /// The peer closed before a full message arrived.
    UnexpectedEof,
    /// Malformed request/status line or header.
    Malformed(&'static str),
    /// Unsupported method.
    BadMethod(String),
    /// Header block exceeded [`Limits::max_header_bytes`].
    HeadersTooLarge,
    /// More than [`Limits::max_headers`] headers in one message.
    TooManyHeaders(usize),
    /// Declared body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge(usize),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::Malformed(what) => write!(f, "malformed {what}"),
            HttpError::BadMethod(m) => write!(f, "unsupported method {m:?}"),
            HttpError::HeadersTooLarge => write!(f, "header block too large"),
            HttpError::TooManyHeaders(n) => write!(f, "too many headers ({n})"),
            HttpError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes too large"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e.to_string())
    }
}

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// HEAD.
    Head,
}

impl Method {
    fn parse(s: &str) -> Result<Method, HttpError> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "HEAD" => Ok(Method::Head),
            other => Err(HttpError::BadMethod(other.to_owned())),
        }
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }
}

/// Response status subset used by the measurement stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 204.
    NoContent,
    /// 302 with a Location header (the IAB redirector experiments).
    Found,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 405 (router path exists, method does not).
    MethodNotAllowed,
    /// 413.
    PayloadTooLarge,
    /// 422 (the analysis service's "container decoded but is broken").
    UnprocessableEntity,
    /// 431 (header block or header count over the limit).
    HeaderFieldsTooLarge,
    /// 500.
    InternalError,
    /// 503 (load shed past the connection high-water mark).
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NoContent => 204,
            Status::Found => 302,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::PayloadTooLarge => 413,
            Status::UnprocessableEntity => 422,
            Status::HeaderFieldsTooLarge => 431,
            Status::InternalError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::NoContent => "No Content",
            Status::Found => "Found",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::PayloadTooLarge => "Payload Too Large",
            Status::UnprocessableEntity => "Unprocessable Entity",
            Status::HeaderFieldsTooLarge => "Request Header Fields Too Large",
            Status::InternalError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }

    fn from_code(code: u16) -> Status {
        match code {
            200 => Status::Ok,
            204 => Status::NoContent,
            302 => Status::Found,
            400 => Status::BadRequest,
            404 => Status::NotFound,
            405 => Status::MethodNotAllowed,
            413 => Status::PayloadTooLarge,
            422 => Status::UnprocessableEntity,
            431 => Status::HeaderFieldsTooLarge,
            503 => Status::ServiceUnavailable,
            _ => Status::InternalError,
        }
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Request target (path + optional query).
    pub target: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Bytes,
}

impl Request {
    /// New GET request.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// New POST request with a body.
    pub fn post(target: impl Into<String>, body: impl Into<Bytes>) -> Request {
        Request {
            method: Method::Post,
            target: target.into(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Add a header (name lowercased).
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_owned()));
        self
    }

    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path portion of the target (before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Query portion of the target, if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Whether this request asks the server to close the connection after
    /// the response (`connection: close`). HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Serialize onto a writer with `Connection: close` framing — the
    /// one-request-per-connection shape the blocking client uses.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), HttpError> {
        self.write_into(w, true)
    }

    /// Serialize onto a writer, choosing the connection framing. Keep-alive
    /// clients pass `close = false` so the server holds the socket open.
    pub fn write_into<W: Write>(&self, w: &mut W, close: bool) -> Result<(), HttpError> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method.as_str(), self.target)?;
        let mut has_len = false;
        for (n, v) in &self.headers {
            if n == "content-length" {
                has_len = true;
            }
            write!(w, "{n}: {v}\r\n")?;
        }
        if !has_len && (!self.body.is_empty() || self.method == Method::Post) {
            write!(w, "content-length: {}\r\n", self.body.len())?;
        }
        if close {
            write!(w, "connection: close\r\n\r\n")?;
        } else {
            write!(w, "connection: keep-alive\r\n\r\n")?;
        }
        w.write_all(&self.body)?;
        Ok(())
    }

    /// Parse a request from a buffered reader with default [`Limits`].
    pub fn read_from<R: Read>(reader: &mut BufReader<R>) -> Result<Request, HttpError> {
        Request::read_from_limited(reader, &Limits::default())
    }

    /// Parse a request from a buffered reader under explicit limits — the
    /// blocking (`server::oracle`) read path.
    pub fn read_from_limited<R: Read>(
        reader: &mut BufReader<R>,
        limits: &Limits,
    ) -> Result<Request, HttpError> {
        let start = read_line_limited(reader, limits)?;
        let (method, target) = parse_request_line(&start)?;
        let headers = read_headers(reader, limits)?;
        let body = read_body(reader, &headers, limits)?;
        Ok(Request {
            method,
            target,
            headers,
            body,
        })
    }
}

/// Parse `METHOD target HTTP/1.x` — shared by the streaming and the
/// incremental parser so both classify malformed lines identically.
fn parse_request_line(line: &str) -> Result<(Method, String), HttpError> {
    let mut parts = line.split_whitespace();
    let method = Method::parse(parts.next().ok_or(HttpError::Malformed("request line"))?)?;
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("request target"))?
        .to_owned();
    let version = parts.next().ok_or(HttpError::Malformed("http version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("http version"));
    }
    Ok((method, target))
}

/// Split one non-empty header line into its lowercased name and trimmed
/// value — shared by both parsers.
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) = line.split_once(':').ok_or(HttpError::Malformed("header"))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
}

/// Declared body length from the header list (`None` header means 0);
/// present-but-unparseable is an error, oversized is [`HttpError::BodyTooLarge`].
fn declared_body_len(headers: &[(String, String)], limits: &Limits) -> Result<usize, HttpError> {
    let len: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .trim()
            .parse()
            .map_err(|_| HttpError::Malformed("content-length"))?,
    };
    if len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge(len));
    }
    Ok(len)
}

/// Incremental request parse out of a byte buffer — the nonblocking
/// server's read path, and the codec piece that makes pipelining work.
///
/// Returns `Ok(Some((request, consumed)))` when a complete request starts
/// at `buf[0]`, `Ok(None)` when more bytes are needed, and `Err` on the
/// same malformed-input taxonomy as [`Request::read_from_limited`] over the
/// same bytes. Back-to-back pipelined requests are parsed by repeated
/// calls, draining `consumed` bytes between them.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, HttpError> {
    // Request line.
    let (line, mut pos) = match take_line(buf, 0, limits)? {
        Some(v) => v,
        None => return Ok(None),
    };
    let (method, target) = parse_request_line(&line)?;

    // Headers: bounded count and cumulative size, as the streaming parser.
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let (line, next) = match take_line(buf, pos, limits)? {
            Some(v) => v,
            None => return Ok(None),
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        total += line.len();
        if total > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        if headers.len() == limits.max_headers {
            return Err(HttpError::TooManyHeaders(headers.len() + 1));
        }
        headers.push(parse_header_line(&line)?);
    }

    // Body, framed strictly on content-length.
    let len = declared_body_len(&headers, limits)?;
    if buf.len() - pos < len {
        return Ok(None);
    }
    let body = Bytes::copy_from_slice(&buf[pos..pos + len]);
    Ok(Some((
        Request {
            method,
            target,
            headers,
            body,
        },
        pos + len,
    )))
}

/// Take one `\n`-terminated line starting at `buf[start]`, stripping the
/// terminator and at most one preceding `\r`. `Ok(None)` means the line is
/// still incomplete; a terminator-free run past the header budget is the
/// same [`HttpError::HeadersTooLarge`] the streaming reader raises.
fn take_line(
    buf: &[u8],
    start: usize,
    limits: &Limits,
) -> Result<Option<(String, usize)>, HttpError> {
    match buf[start..].iter().position(|&b| b == b'\n') {
        Some(nl) => {
            if nl + 1 > limits.max_header_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            let mut line = &buf[start..start + nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            Ok(Some((
                line.iter().map(|&b| b as char).collect(),
                start + nl + 1,
            )))
        }
        None => {
            if buf.len() - start > limits.max_header_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            Ok(None)
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status.
    pub status: Status,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// 200 response with a body and content type.
    pub fn ok(content_type: &str, body: impl Into<Bytes>) -> Response {
        Response {
            status: Status::Ok,
            headers: vec![("content-type".into(), content_type.into())],
            body: body.into(),
        }
    }

    /// 204 response.
    pub fn no_content() -> Response {
        Response {
            status: Status::NoContent,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// 302 redirect.
    pub fn redirect(location: &str) -> Response {
        Response {
            status: Status::Found,
            headers: vec![("location".into(), location.into())],
            body: Bytes::new(),
        }
    }

    /// Error response with a plain-text body.
    pub fn error(status: Status, message: &str) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain".into())],
            body: Bytes::copy_from_slice(message.as_bytes()),
        }
    }

    /// First header value by name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Serialize onto a writer with `Connection: close` framing.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), HttpError> {
        let mut out = Vec::new();
        self.write_into(&mut out, true);
        w.write_all(&out)?;
        Ok(())
    }

    /// Serialize into a byte buffer, choosing the connection framing. Both
    /// servers (readiness-loop and blocking oracle) emit responses through
    /// this one function, which is what lets the equivalence suite pin
    /// their byte streams against each other.
    pub fn write_into(&self, out: &mut Vec<u8>, close: bool) {
        use std::io::Write as _;
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        );
        for (n, v) in &self.headers {
            let _ = write!(out, "{n}: {v}\r\n");
        }
        let _ = write!(out, "content-length: {}\r\n", self.body.len());
        if close {
            let _ = write!(out, "connection: close\r\n\r\n");
        } else {
            let _ = write!(out, "connection: keep-alive\r\n\r\n");
        }
        out.extend_from_slice(&self.body);
    }

    /// Parse a response from a buffered reader.
    pub fn read_from<R: Read>(reader: &mut BufReader<R>) -> Result<Response, HttpError> {
        let limits = Limits::default();
        let start = read_line_limited(reader, &limits)?;
        let mut parts = start.split_whitespace();
        let version = parts.next().ok_or(HttpError::Malformed("status line"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("http version"));
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or(HttpError::Malformed("status code"))?;
        let headers = read_headers(reader, &limits)?;
        let body = read_body(reader, &headers, &limits)?;
        Ok(Response {
            status: Status::from_code(code),
            headers,
            body,
        })
    }
}

fn read_line_limited<R: Read>(
    reader: &mut BufReader<R>,
    limits: &Limits,
) -> Result<String, HttpError> {
    // Buffered read up to the newline: one read_until over the BufReader's
    // internal buffer instead of a syscall-shaped read() per byte. The
    // Take guard bounds how much a newline-free stream can make us buffer.
    let mut raw = Vec::new();
    let n = std::io::Read::take(&mut *reader, limits.max_header_bytes as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Err(HttpError::UnexpectedEof);
    }
    if raw.last() != Some(&b'\n') {
        // No terminator: either the peer closed mid-line or the line is
        // longer than the whole header budget.
        if n > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        return Err(HttpError::UnexpectedEof);
    }
    raw.pop();
    // Strip one '\r' if it immediately precedes the '\n'. A bare '\r'
    // anywhere else is payload (e.g. inside a header value) and survives.
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    Ok(raw.into_iter().map(|b| b as char).collect())
}

fn read_headers<R: Read>(
    reader: &mut BufReader<R>,
    limits: &Limits,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_line_limited(reader, limits)?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        if headers.len() == limits.max_headers {
            return Err(HttpError::TooManyHeaders(headers.len() + 1));
        }
        headers.push(parse_header_line(&line)?);
    }
}

fn read_body<R: Read>(
    reader: &mut BufReader<R>,
    headers: &[(String, String)],
    limits: &Limits,
) -> Result<Bytes, HttpError> {
    // A missing content-length means "no body"; a *present but
    // unparseable* one ("abc", negative, overflow) must be rejected —
    // treating it as 0 would desync framing on this connection and the
    // server would read the body bytes as the next request line.
    let len = declared_body_len(headers, limits)?;
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|_| HttpError::UnexpectedEof)?;
    Ok(Bytes::from(body))
}

/// Percent-decode a form-encoded component (`+` and `%XX`).
pub fn form_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a form component.
pub fn form_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Parse an `application/x-www-form-urlencoded` body into pairs.
pub fn parse_form(body: &str) -> Vec<(String, String)> {
    body.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (form_decode(k), form_decode(v)),
            None => (form_decode(kv), String::new()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        Request::read_from(&mut BufReader::new(Cursor::new(buf))).unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        Response::read_from(&mut BufReader::new(Cursor::new(buf))).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let req = Request::post("/beacon?x=1", &b"interface=Document"[..])
            .with_header("X-Requested-With", "com.facebook.katana");
        let back = roundtrip_request(&req);
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.target, "/beacon?x=1");
        assert_eq!(back.path(), "/beacon");
        assert_eq!(back.query(), Some("x=1"));
        assert_eq!(back.header("x-requested-with"), Some("com.facebook.katana"));
        assert_eq!(&back.body[..], b"interface=Document");
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok("text/html", &b"<html></html>"[..]);
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, Status::Ok);
        assert_eq!(back.header("content-type"), Some("text/html"));
        assert_eq!(&back.body[..], b"<html></html>");
    }

    #[test]
    fn redirect_roundtrip() {
        let resp = Response::redirect("https://example.com/next");
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, Status::Found);
        assert_eq!(back.header("location"), Some("https://example.com/next"));
    }

    #[test]
    fn empty_get_has_no_body() {
        let back = roundtrip_request(&Request::get("/"));
        assert!(back.body.is_empty());
    }

    #[test]
    fn bad_method_rejected() {
        let raw = b"BREW /pot HTTP/1.1\r\n\r\n";
        let err = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap_err();
        assert!(matches!(err, HttpError::BadMethod(_)));
    }

    #[test]
    fn truncated_body_is_eof() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        let err = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap_err();
        assert_eq!(err, HttpError::UnexpectedEof);
    }

    #[test]
    fn oversized_body_rejected_without_reading() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err =
            Request::read_from(&mut BufReader::new(Cursor::new(raw.into_bytes()))).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(_)));
    }

    #[test]
    fn header_bomb_rejected() {
        // 4000 short headers trip the count cap before the byte cap.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..4000 {
            raw.push_str(&format!("x-filler-{i}: aaaaaaaaaaaaaaaa\r\n"));
        }
        raw.push_str("\r\n");
        let err = Request::read_from(&mut BufReader::new(Cursor::new(raw.clone().into_bytes())))
            .unwrap_err();
        assert_eq!(err, HttpError::TooManyHeaders(MAX_HEADERS + 1));
        // The incremental parser classifies the same bytes identically.
        let err = parse_request(raw.as_bytes(), &Limits::default()).unwrap_err();
        assert_eq!(err, HttpError::TooManyHeaders(MAX_HEADERS + 1));
    }

    #[test]
    fn header_byte_bomb_rejected() {
        // Few headers, huge values: the byte cap fires with the count cap
        // still far away.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..10 {
            raw.push_str(&format!("x-big-{i}: {}\r\n", "v".repeat(2048)));
        }
        raw.push_str("\r\n");
        let err = Request::read_from(&mut BufReader::new(Cursor::new(raw.clone().into_bytes())))
            .unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
        let err = parse_request(raw.as_bytes(), &Limits::default()).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
    }

    #[test]
    fn unparseable_content_length_is_malformed() {
        // "abc", a negative value, and a value overflowing usize must all
        // be rejected, not silently framed as an empty body.
        for bad in ["abc", "-5", "18446744073709551616", "12 34", "0x10"] {
            let raw = format!("POST / HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
            let err =
                Request::read_from(&mut BufReader::new(Cursor::new(raw.into_bytes()))).unwrap_err();
            assert_eq!(err, HttpError::Malformed("content-length"), "value {bad:?}");
        }
    }

    #[test]
    fn missing_content_length_still_means_empty_body() {
        let raw = b"GET / HTTP/1.1\r\nhost: localhost\r\n\r\n";
        let req = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn bare_cr_in_header_value_survives() {
        // Only a '\r' immediately before '\n' is line framing; a bare '\r'
        // inside a value is payload and must round-trip unchanged.
        let raw = b"GET / HTTP/1.1\r\nx-odd: a\rb\r\n\r\n";
        let req = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap();
        assert_eq!(req.header("x-odd"), Some("a\rb"));

        let resp = Response {
            status: Status::Ok,
            headers: vec![("x-odd".into(), "left\rright".into())],
            body: Bytes::new(),
        };
        let back = roundtrip_response(&resp);
        assert_eq!(back.header("x-odd"), Some("left\rright"));
    }

    #[test]
    fn line_without_terminator_is_eof_not_empty() {
        let raw = b"GET / HTTP/1.1";
        let err = Request::read_from(&mut BufReader::new(Cursor::new(&raw[..]))).unwrap_err();
        assert_eq!(err, HttpError::UnexpectedEof);
    }

    #[test]
    fn newline_free_stream_hits_header_cap() {
        let raw = vec![b'A'; MAX_HEADER_BYTES + 64];
        let err = Request::read_from(&mut BufReader::new(Cursor::new(raw))).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
    }

    #[test]
    fn form_codec() {
        let pairs = parse_form("interface=Document&method=getElementById&arg=a+b%26c");
        assert_eq!(
            pairs,
            vec![
                ("interface".into(), "Document".into()),
                ("method".into(), "getElementById".into()),
                ("arg".into(), "a b&c".into()),
            ]
        );
    }

    /// Drive the incremental parser over `raw` split at the given chunk
    /// sizes, as the nonblocking server does across read() boundaries.
    fn parse_fragmented(raw: &[u8], chunks: &[usize], limits: &Limits) -> Vec<Request> {
        let mut buf: Vec<u8> = Vec::new();
        let mut requests = Vec::new();
        let mut fed = 0usize;
        let mut chunk_iter = chunks.iter().copied().chain(std::iter::repeat(raw.len()));
        while fed < raw.len() {
            let take = chunk_iter.next().unwrap().clamp(1, raw.len() - fed);
            buf.extend_from_slice(&raw[fed..fed + take]);
            fed += take;
            while let Some((req, consumed)) = parse_request(&buf, limits).expect("valid stream") {
                requests.push(req);
                buf.drain(..consumed);
            }
        }
        assert!(buf.is_empty(), "trailing unparsed bytes: {}", buf.len());
        requests
    }

    #[test]
    fn incremental_parses_pipelined_requests() {
        let mut raw = Vec::new();
        let first = Request::post("/beacon", &b"interface=Document&method=write"[..])
            .with_header("x-requested-with", "com.example");
        let second = Request::get("/page");
        let third = Request::post("/analyze", &b"\x00\x01binary body\xff"[..]);
        first.write_into(&mut raw, false).unwrap();
        second.write_into(&mut raw, false).unwrap();
        third.write_into(&mut raw, true).unwrap();

        let limits = Limits::default();
        // Whole buffer at once.
        let whole = parse_fragmented(&raw, &[raw.len()], &limits);
        assert_eq!(whole.len(), 3);
        assert_eq!(whole[0].path(), "/beacon");
        assert_eq!(whole[1].method, Method::Get);
        assert_eq!(&whole[2].body[..], b"\x00\x01binary body\xff");
        assert!(!whole[1].wants_close());
        assert!(whole[2].wants_close());
        // One byte at a time must yield the identical request sequence.
        let trickled = parse_fragmented(&raw, &vec![1; raw.len()], &limits);
        assert_eq!(whole, trickled);
    }

    #[test]
    fn incremental_reports_incomplete_not_error() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        assert_eq!(parse_request(raw, &Limits::default()).unwrap(), None);
        let raw = b"GET / HT";
        assert_eq!(parse_request(raw, &Limits::default()).unwrap(), None);
    }

    #[test]
    fn incremental_body_cap_is_configurable() {
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 9\r\n\r\n123456789";
        assert_eq!(
            parse_request(raw, &limits).unwrap_err(),
            HttpError::BodyTooLarge(9)
        );
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 8\r\n\r\n12345678";
        let (req, consumed) = parse_request(raw, &limits).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(&req.body[..], b"12345678");
    }

    proptest! {
        #[test]
        fn prop_form_roundtrip(s in ".{0,80}") {
            prop_assert_eq!(form_decode(&form_encode(&s)), s);
        }

        /// Pipelined back-to-back requests parse to the same sequence no
        /// matter where the read boundaries fall — the codec property the
        /// nonblocking server's fragmented reads rely on.
        #[test]
        fn prop_pipelined_split_boundaries(
            bodies in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..96), 1..5),
            chunks in proptest::collection::vec(1usize..64, 1..32),
        ) {
            let mut raw = Vec::new();
            for (i, body) in bodies.iter().enumerate() {
                let close = i + 1 == bodies.len();
                Request::post(format!("/b/{i}"), body.clone())
                    .with_header("x-seq", &i.to_string())
                    .write_into(&mut raw, close)
                    .unwrap();
            }
            let limits = Limits::default();
            let whole = parse_fragmented(&raw, &[raw.len()], &limits);
            let split = parse_fragmented(&raw, &chunks, &limits);
            prop_assert_eq!(&whole, &split);
            prop_assert_eq!(whole.len(), bodies.len());
            for (i, req) in whole.iter().enumerate() {
                prop_assert_eq!(&req.body[..], &bodies[i][..]);
                prop_assert_eq!(req.header("x-seq"), Some(i.to_string().as_str()));
            }
        }

        /// The incremental parser agrees with the streaming reader on any
        /// single-request prefix: same request or same error taxonomy.
        #[test]
        fn prop_incremental_matches_streaming(raw in proptest::collection::vec(any::<u8>(), 0..512)) {
            let limits = Limits::default();
            let streamed = Request::read_from(&mut BufReader::new(Cursor::new(raw.clone())));
            match parse_request(&raw, &limits) {
                Ok(Some((req, _))) => prop_assert_eq!(Ok(req), streamed),
                // Incomplete buffer: the streaming side, which sees EOF
                // where we see "need more bytes", must report EOF.
                Ok(None) => prop_assert_eq!(streamed.unwrap_err(), HttpError::UnexpectedEof),
                Err(e) => prop_assert_eq!(streamed.unwrap_err(), e),
            }
        }

        #[test]
        fn prop_request_body_roundtrip(body in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let req = Request::post("/b", body.clone());
            let back = roundtrip_request(&req);
            prop_assert_eq!(&back.body[..], &body[..]);
        }

        #[test]
        fn prop_parser_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Request::read_from(&mut BufReader::new(Cursor::new(raw.clone())));
            let _ = Response::read_from(&mut BufReader::new(Cursor::new(raw)));
        }
    }
}
