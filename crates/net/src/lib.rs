//! # wla-net — loopback HTTP and network logging
//!
//! The dynamic half of the study (§3.2.2) needs a *real* network path:
//!
//! * a **controlled web page** served from the researchers' own server;
//! * a **measurement endpoint** that the instrumented page posts
//!   intercepted Web-API calls back to;
//! * **NetLog**-style per-WebView network capture (the paper pulls Chrome's
//!   netlog from a rooted Pixel 3 rather than using a device-wide proxy).
//!
//! The north star additionally wants the *static* pipeline served as a
//! service at production traffic levels, so the crate now carries a full
//! HTTP/1.1 serving stack over `std::net` TCP:
//!
//! * [`http`] — request/response types and a hardened codec: configurable
//!   [`Limits`](http::Limits) (413 body / 431 header caps), strict
//!   Content-Length framing, and two proptest-pinned parsers — the
//!   blocking streaming reader and the incremental
//!   [`parse_request`](http::parse_request) the nonblocking server feeds
//!   from fragmented reads (no chunked encoding — the measurement traffic
//!   never needs it and simplicity wins per the smoltcp ethos);
//! * [`poll`] — the event-source shim: `poll(2)` readiness multiplexing
//!   declared via two lines of FFI (vendored-stub ethos, no new deps);
//! * [`server`] — the readiness-loop nonblocking server: keep-alive,
//!   pipelining, bounded per-connection buffers, connection limits with
//!   accept backpressure, 503 load shedding past a high-water mark, and an
//!   idle-timeout sweep. The seed thread-per-connection blocking server is
//!   preserved as [`server::oracle`] and pinned byte-identical by
//!   `tests/server_equivalence.rs`;
//! * [`stats`] — [`ServerStats`]: accepted/active/shed gauges, requests
//!   per connection, parse failures, p50/p99 service-time histogram;
//! * [`router`] — method+path dispatch (404/405) shared by every frontend;
//! * [`client`] — the blocking `Connection: close` [`fetch`] plus the
//!   keep-alive/pipelining [`ClientConn`];
//! * [`beacon`] — the measurement server: serves the controlled page,
//!   records `POST /beacon` Web-API reports;
//! * [`netlog`] — structured per-source network event capture with
//!   simulated-clock timestamps, plus its HTTP routes.
//!
//! ```
//! use std::sync::Arc;
//! use wla_net::{fetch, Request, Response, Server, Status};
//!
//! let server = Server::start(Arc::new(|req: &Request| match req.path() {
//!     "/hello" => Response::ok("text/plain", &b"world"[..]),
//!     _ => Response::error(Status::NotFound, "nope"),
//! })).unwrap();
//!
//! let resp = fetch(server.addr(), Request::get("/hello")).unwrap();
//! assert_eq!(&resp.body[..], b"world");
//! ```

pub mod beacon;
pub mod client;
pub mod http;
pub mod netlog;
pub mod poll;
pub mod router;
pub mod server;
pub mod stats;

pub use beacon::{beacon_routes, BeaconRecord, BeaconStore, MeasurementServer};
pub use client::{fetch, ClientConn, ClientError};
pub use http::{HttpError, Limits, Method, Request, Response, Status};
pub use netlog::{netlog_routes, NetLog, NetLogEvent, NetLogPhase};
pub use router::Router;
pub use server::{Handler, Server, ServerConfig};
pub use stats::{LatencyHistogram, ServerStats, ServerStatsSnapshot};
