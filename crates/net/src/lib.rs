//! # wla-net — loopback HTTP and network logging
//!
//! The dynamic half of the study (§3.2.2) needs a *real* network path:
//!
//! * a **controlled web page** served from the researchers' own server;
//! * a **measurement endpoint** that the instrumented page posts
//!   intercepted Web-API calls back to;
//! * **NetLog**-style per-WebView network capture (the paper pulls Chrome's
//!   netlog from a rooted Pixel 3 rather than using a device-wide proxy).
//!
//! This crate implements that path over `std::net` TCP with a blocking
//! HTTP/1.1 stack:
//!
//! * [`http`] — request/response types and a hardened codec (header-size
//!   limits, Content-Length framing; no chunked encoding — the measurement
//!   traffic never needs it and simplicity wins per the smoltcp ethos);
//! * [`server`] — a thread-per-connection listener with graceful shutdown
//!   (CPU cost per request is trivial, concurrency is tiny — a blocking
//!   design is the simplest robust one, exactly the case the async guides
//!   say *not* to bring a runtime to);
//! * [`client`] — a blocking `Connection: close` client;
//! * [`beacon`] — the measurement server: serves the controlled page,
//!   records `POST /beacon` Web-API reports;
//! * [`netlog`] — structured per-source network event capture with
//!   simulated-clock timestamps.
//!
//! ```
//! use std::sync::Arc;
//! use wla_net::{fetch, Request, Response, Server, Status};
//!
//! let server = Server::start(Arc::new(|req: &Request| match req.path() {
//!     "/hello" => Response::ok("text/plain", &b"world"[..]),
//!     _ => Response::error(Status::NotFound, "nope"),
//! })).unwrap();
//!
//! let resp = fetch(server.addr(), Request::get("/hello")).unwrap();
//! assert_eq!(&resp.body[..], b"world");
//! ```

pub mod beacon;
pub mod client;
pub mod http;
pub mod netlog;
pub mod server;

pub use beacon::{BeaconRecord, MeasurementServer};
pub use client::{fetch, ClientError};
pub use http::{HttpError, Method, Request, Response, Status};
pub use netlog::{NetLog, NetLogEvent, NetLogPhase};
pub use server::{Handler, Server};
