//! Server observability: connection and request counters plus a service
//! -time histogram, shared by the readiness-loop server's event loops and
//! snapshotted for rendering by `wla-report`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets (covers 1 ns ..= ~2^47 ns ≈ 39 hours).
const BUCKETS: usize = 48;

/// Lock-free log2-bucketed latency histogram (nanoseconds).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, ns: u64) {
        let idx = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate quantile (`0.0..=1.0`) in nanoseconds: the geometric
    /// midpoint of the bucket holding the q-th sample. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i spans [2^i, 2^(i+1)); report its geometric mean.
                let lo = 1u64 << i;
                return (lo as f64 * std::f64::consts::SQRT_2) as u64;
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Counters for one running server. All relaxed: these are monitoring
/// numbers, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted and served (excludes shed ones).
    pub accepted: AtomicU64,
    /// Connections answered with an immediate 503 past the high-water mark.
    pub shed: AtomicU64,
    /// Currently open connections (gauge; shared across event loops so the
    /// shed decision sees the whole server).
    pub active: AtomicU64,
    /// Connections closed by the idle-timeout sweep.
    pub idle_closed: AtomicU64,
    /// Requests parsed and dispatched to the handler.
    pub requests: AtomicU64,
    /// Requests answered from a connection that had already served at
    /// least one request — the keep-alive / pipelining payoff.
    pub keepalive_requests: AtomicU64,
    /// Malformed/oversized requests answered with a 4xx and a close.
    pub parse_failures: AtomicU64,
    /// Handler service time (parse end → response buffered), nanoseconds.
    pub service: LatencyHistogram,
}

/// Plain-data copy of [`ServerStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStatsSnapshot {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections 503-shed at accept time.
    pub shed: u64,
    /// Currently open connections.
    pub active: u64,
    /// Connections closed by the idle sweep.
    pub idle_closed: u64,
    /// Requests served.
    pub requests: u64,
    /// Requests served on an already-warm connection.
    pub keepalive_requests: u64,
    /// Requests rejected at the codec.
    pub parse_failures: u64,
    /// Mean requests per accepted connection.
    pub requests_per_connection: f64,
    /// Median service time, microseconds.
    pub p50_us: f64,
    /// 99th-percentile service time, microseconds.
    pub p99_us: f64,
}

impl ServerStats {
    /// Fresh zeroed stats.
    pub fn new() -> ServerStats {
        ServerStats::default()
    }

    /// Copy every counter out.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        let accepted = self.accepted.load(Ordering::Relaxed);
        let requests = self.requests.load(Ordering::Relaxed);
        ServerStatsSnapshot {
            accepted,
            shed: self.shed.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            requests,
            keepalive_requests: self.keepalive_requests.load(Ordering::Relaxed),
            parse_failures: self.parse_failures.load(Ordering::Relaxed),
            requests_per_connection: if accepted > 0 {
                requests as f64 / accepted as f64
            } else {
                0.0
            },
            p50_us: self.service.quantile(0.50) as f64 / 1_000.0,
            p99_us: self.service.quantile(0.99) as f64 / 1_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(1_000); // ~1 µs
        }
        h.record(1_000_000); // one 1 ms outlier
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((512..=2048).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 <= 2048, "p99 should sit below the outlier: {p99}");
        let p100 = h.quantile(1.0);
        assert!(p100 >= 524_288, "max must see the outlier: {p100}");
    }

    #[test]
    fn histogram_empty_and_extremes() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.99), 0);
        h.record(0); // clamps to bucket 0
        h.record(u64::MAX); // clamps to the last bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > 0);
    }

    #[test]
    fn snapshot_derives_requests_per_connection() {
        let s = ServerStats::new();
        s.accepted.store(4, Ordering::Relaxed);
        s.requests.store(12, Ordering::Relaxed);
        s.service.record(2_000);
        let snap = s.snapshot();
        assert_eq!(snap.requests_per_connection, 3.0);
        assert!(snap.p50_us > 0.0);
        assert_eq!(ServerStats::new().snapshot().requests_per_connection, 0.0);
    }
}
