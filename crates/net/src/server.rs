//! Thread-per-connection HTTP server with graceful shutdown.

use crate::http::{HttpError, Request, Response, Status};
use parking_lot::Mutex;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Request handler: pure function from request to response. Handlers run on
/// connection threads, so they must be `Send + Sync`.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP server bound to a loopback port.
///
/// Dropping the server (or calling [`shutdown`](Server::shutdown)) stops
/// the accept loop and joins every worker.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

/// Per-connection read timeout. Generous for loopback; prevents a stuck
/// client from pinning a thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

impl Server {
    /// Bind to an ephemeral loopback port and start serving.
    pub fn start(handler: Handler) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_stop = Arc::clone(&stop);
        let accept_workers = Arc::clone(&workers);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let stream = match conn {
                    Ok(stream) => stream,
                    Err(_) => continue,
                };
                // The stop check must sit between accept and spawn: this
                // stream may be shutdown's wake-up connection, or a client
                // that raced the stop-flag store. Spawning a worker for it
                // here would hand `shutdown` a handle it could miss when it
                // drains the vector, leaking an unjoined thread. The check
                // happens-before the push, and `shutdown` only drains after
                // this thread has been joined, so every pushed handle is
                // visible to the drain.
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let handler = Arc::clone(&handler);
                let handle = std::thread::spawn(move || serve_connection(stream, handler));
                let mut guard = accept_workers.lock();
                // Opportunistically reap finished workers so the
                // vector doesn't grow with connection count.
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
        });

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// Address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, then join every thread.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Drain only after the accept thread has joined — no new handles
        // can be pushed past this point. Loop until the vector stays
        // empty so a handle pushed concurrently with an earlier take is
        // still joined rather than leaked.
        loop {
            let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, handler: Handler) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let peer = stream.try_clone();
    let mut reader = BufReader::new(stream);
    let mut head_request = false;
    let response = match Request::read_from(&mut reader) {
        Ok(request) => {
            head_request = request.method == crate::http::Method::Head;
            handler(&request)
        }
        Err(HttpError::UnexpectedEof) => return, // probe/shutdown connection
        Err(HttpError::BodyTooLarge(_)) => {
            Response::error(Status::PayloadTooLarge, "body too large")
        }
        Err(e) => Response::error(Status::BadRequest, &e.to_string()),
    };
    // RFC 9110 §9.3.2: HEAD responses carry the GET's metadata but no
    // body. Our codec frames strictly on content-length, so the would-be
    // entity size is advertised in `x-entity-length` instead of lying in
    // content-length (documented codec deviation).
    let response = if head_request {
        let mut r = response;
        r.headers
            .push(("x-entity-length".into(), r.body.len().to_string()));
        r.body = bytes::Bytes::new();
        r
    } else {
        response
    };
    if let Ok(mut out) = peer {
        let _ = response.write_to(&mut out);
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::fetch;
    use crate::http::Method;

    fn echo_server() -> Server {
        Server::start(Arc::new(|req: &Request| match (req.method, req.path()) {
            (Method::Get, "/hello") => Response::ok("text/plain", &b"world"[..]),
            (Method::Post, "/echo") => Response::ok("application/octet-stream", req.body.clone()),
            _ => Response::error(Status::NotFound, "nope"),
        }))
        .expect("bind")
    }

    #[test]
    fn get_and_post_roundtrip() {
        let server = echo_server();
        let resp = fetch(server.addr(), Request::get("/hello")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&resp.body[..], b"world");

        let resp = fetch(server.addr(), Request::post("/echo", &b"payload"[..])).unwrap();
        assert_eq!(&resp.body[..], b"payload");
    }

    #[test]
    fn unknown_route_is_404() {
        let server = echo_server();
        let resp = fetch(server.addr(), Request::get("/missing")).unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("req-{i}");
                    let resp = fetch(addr, Request::post("/echo", body.clone().into_bytes()))
                        .expect("fetch");
                    assert_eq!(&resp.body[..], body.as_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_unbinds() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        // After shutdown the port stops answering HTTP.
        let result = fetch(addr, Request::get("/hello"));
        assert!(result.is_err());
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }

    /// Write raw bytes, read whatever comes back as a status line.
    fn raw_exchange(addr: SocketAddr, payload: &[u8]) -> String {
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(payload).unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        buf
    }

    #[test]
    fn bad_content_length_gets_400_not_a_hang() {
        let server = echo_server();
        // Unparseable, negative, and usize-overflowing declared lengths
        // must each produce an immediate 400 — the old codec treated them
        // as 0 and left the connection waiting on a body that never comes.
        for bad in ["abc", "-5", "18446744073709551616"] {
            let raw = format!("POST /echo HTTP/1.1\r\ncontent-length: {bad}\r\n\r\nxyz");
            let buf = raw_exchange(server.addr(), raw.as_bytes());
            assert!(buf.starts_with("HTTP/1.1 400"), "value {bad:?}: {buf}");
        }
    }

    #[test]
    fn oversized_content_length_gets_413() {
        let server = echo_server();
        let raw = format!(
            "POST /echo HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            crate::http::MAX_BODY_BYTES + 1
        );
        let buf = raw_exchange(server.addr(), raw.as_bytes());
        assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");
    }

    #[test]
    fn shutdown_races_with_connects() {
        // Hammer the listener while shutdown runs. Connections that race
        // the stop flag must either be served or dropped — never spawn a
        // worker the drain misses — and shutdown must not hang on them.
        for _ in 0..8 {
            let mut server = echo_server();
            let addr = server.addr();
            let stop = Arc::new(AtomicBool::new(false));
            let clients: Vec<_> = (0..4)
                .map(|_| {
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            let _ = fetch(addr, Request::get("/hello"));
                        }
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(2));
            server.shutdown();
            stop.store(true, Ordering::SeqCst);
            for c in clients {
                c.join().unwrap();
            }
        }
    }
}

#[cfg(test)]
mod head_tests {
    use super::*;
    use crate::client::fetch;
    use crate::http::{Method, Request};

    #[test]
    fn head_gets_headers_without_body() {
        let server = Server::start(Arc::new(|_req: &Request| {
            Response::ok("text/html", &b"<html>full body</html>"[..])
        }))
        .expect("bind");
        let mut req = Request::get("/page");
        req.method = Method::Head;
        let resp = fetch(server.addr(), req).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.is_empty());
        // The would-be entity length is advertised.
        assert_eq!(resp.header("x-entity-length"), Some("22"));
    }
}
