//! Event-source shim: readiness multiplexing for the nonblocking server.
//!
//! The workspace builds hermetically with no external crates, so there is
//! no `mio` to lean on. On Unix this module declares the two-line FFI to
//! `poll(2)` itself — the C library is already linked by `std`, the ABI is
//! stable, and the surface is one struct and one call (the same
//! vendored-stub ethos as `vendor/`). Elsewhere it degrades to a
//! level-triggered "everything might be ready" stub with a short sleep:
//! the readiness loop's *correctness* never depends on poll — every socket
//! is nonblocking and `WouldBlock` is handled — poll only removes the busy
//! spin.

use std::time::Duration;

/// One pollable source: interest in, and readiness of, a raw socket.
#[derive(Debug, Clone, Copy)]
pub struct Interest {
    /// Raw file descriptor (ignored by the fallback backend).
    pub fd: i64,
    /// Wants to read.
    pub read: bool,
    /// Wants to write.
    pub write: bool,
    /// Readable (or hung up) after the wait.
    pub readable: bool,
    /// Writable after the wait.
    pub writable: bool,
    /// Error/hangup condition after the wait.
    pub error: bool,
}

impl Interest {
    /// Interest in `fd` with no readiness yet.
    pub fn new(fd: i64, read: bool, write: bool) -> Interest {
        Interest {
            fd,
            read,
            write,
            readable: false,
            writable: false,
            error: false,
        }
    }
}

#[cfg(unix)]
mod sys {
    use super::Interest;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "linux")]
    type Nfds = u64;
    #[cfg(not(target_os = "linux"))]
    type Nfds = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    /// Block until a source is ready or `timeout` elapses; fill in the
    /// readiness flags. Returns the number of ready sources (0 on timeout
    /// or EINTR — the caller just loops again).
    pub fn wait(sources: &mut [Interest], timeout: Duration) -> usize {
        let mut fds: Vec<PollFd> = sources
            .iter()
            .map(|s| PollFd {
                fd: s.fd as i32,
                events: if s.read { POLLIN } else { 0 } | if s.write { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs for the duration of the call,
        // and `nfds` is its exact length.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, millis) };
        if rc <= 0 {
            return 0;
        }
        let mut ready = 0usize;
        for (s, fd) in sources.iter_mut().zip(&fds) {
            s.readable = fd.revents & (POLLIN | POLLHUP) != 0;
            s.writable = fd.revents & POLLOUT != 0;
            s.error = fd.revents & (POLLERR | POLLNVAL) != 0;
            if s.readable || s.writable || s.error {
                ready += 1;
            }
        }
        ready
    }
}

#[cfg(not(unix))]
mod sys {
    use super::Interest;
    use std::time::Duration;

    /// Fallback backend: report every source as possibly ready after a
    /// short sleep. The nonblocking sockets turn spurious readiness into
    /// `WouldBlock`, so this is merely a slower loop, not a wrong one.
    pub fn wait(sources: &mut [Interest], _timeout: Duration) -> usize {
        std::thread::sleep(Duration::from_millis(1));
        for s in sources.iter_mut() {
            s.readable = s.read;
            s.writable = s.write;
            s.error = false;
        }
        sources.len()
    }
}

/// Wait for readiness on `sources` (in place), up to `timeout`.
pub fn wait(sources: &mut [Interest], timeout: Duration) -> usize {
    if sources.is_empty() {
        std::thread::sleep(timeout.min(Duration::from_millis(10)));
        return 0;
    }
    sys::wait(sources, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[cfg(unix)]
    fn raw_fd(s: &TcpStream) -> i64 {
        use std::os::unix::io::AsRawFd;
        s.as_raw_fd() as i64
    }
    #[cfg(not(unix))]
    fn raw_fd(_s: &TcpStream) -> i64 {
        0
    }

    #[test]
    fn reports_readable_after_write() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let mut sources = [Interest::new(raw_fd(&server_side), true, false)];
        // Nothing written yet: a short wait times out without readiness
        // (the fallback backend may report spurious readiness, which is
        // fine — only the positive case below is asserted).
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let n = wait(&mut sources, Duration::from_millis(50));
            if n > 0 && sources[0].readable {
                break;
            }
            assert!(Instant::now() < deadline, "never saw readability");
        }
    }

    #[test]
    fn timeout_returns_without_ready_sources() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let started = Instant::now();
        let mut sources = [Interest::new(raw_fd(&server_side), true, false)];
        let _ = wait(&mut sources, Duration::from_millis(20));
        // Either it timed out (~20ms) or the backend reported spuriously;
        // in both cases the call must return promptly.
        assert!(started.elapsed() < Duration::from_secs(2));
        drop(stream);
    }
}
