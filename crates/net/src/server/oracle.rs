//! Thread-per-connection blocking HTTP server — the seed implementation,
//! preserved as the behavioral oracle for the readiness-loop server.
//!
//! Two modes: [`Server::start`] keeps the seed's one-request-per-connection
//! shape (every response is framed `connection: close`) and is the bench
//! baseline the nonblocking server is measured against;
//! [`Server::start_persistent`] runs the same blocking read path in a
//! keep-alive loop, which — because both servers share the codec,
//! [`error_response`](super::error_response),
//! [`finalize_head`](super::finalize_head), and `Response::write_into` —
//! makes its byte stream the reference the equivalence suite pins the
//! nonblocking server against, pipelining included (the `BufReader`
//! naturally carries buffered follow-on requests between iterations).

use super::{error_response, finalize_head, Handler};
use crate::http::{HttpError, Limits, Method, Request};
use parking_lot::Mutex;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running blocking HTTP server bound to a loopback port.
///
/// Dropping the server (or calling [`shutdown`](Server::shutdown)) stops
/// the accept loop and joins every worker.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("oracle::Server")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Per-connection read timeout. Generous for loopback; prevents a stuck
/// client from pinning a thread forever (the blocking analogue of the
/// nonblocking server's idle sweep).
const READ_TIMEOUT: Duration = Duration::from_secs(5);

impl Server {
    /// Bind to an ephemeral loopback port and serve one request per
    /// connection (the seed shape).
    pub fn start(handler: Handler) -> std::io::Result<Server> {
        Server::start_with(handler, Limits::default(), false)
    }

    /// Bind and serve keep-alive connections: requests are read in a loop
    /// until the client asks for `connection: close`, errors, or goes
    /// quiet past the read timeout.
    pub fn start_persistent(handler: Handler) -> std::io::Result<Server> {
        Server::start_with(handler, Limits::default(), true)
    }

    /// Bind with explicit codec limits and connection persistence.
    pub fn start_with(
        handler: Handler,
        limits: Limits,
        persistent: bool,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_stop = Arc::clone(&stop);
        let accept_workers = Arc::clone(&workers);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let stream = match conn {
                    Ok(stream) => stream,
                    Err(_) => continue,
                };
                // The stop check must sit between accept and spawn: this
                // stream may be shutdown's wake-up connection, or a client
                // that raced the stop-flag store. Spawning a worker for it
                // here would hand `shutdown` a handle it could miss when it
                // drains the vector, leaking an unjoined thread. The check
                // happens-before the push, and `shutdown` only drains after
                // this thread has been joined, so every pushed handle is
                // visible to the drain.
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let handler = Arc::clone(&handler);
                let handle = std::thread::spawn(move || {
                    serve_connection(stream, handler, limits, persistent)
                });
                let mut guard = accept_workers.lock();
                // Opportunistically reap finished workers so the
                // vector doesn't grow with connection count.
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
        });

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// Address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, then join every thread.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Drain only after the accept thread has joined — no new handles
        // can be pushed past this point. Loop until the vector stays
        // empty so a handle pushed concurrently with an earlier take is
        // still joined rather than leaked.
        loop {
            let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, handler: Handler, limits: Limits, persistent: bool) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(mut out) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let (response, close) = match Request::read_from_limited(&mut reader, &limits) {
            Ok(request) => {
                let close = !persistent || request.wants_close();
                let head = request.method == Method::Head;
                (finalize_head(handler(&request), head), close)
            }
            Err(HttpError::UnexpectedEof) => return, // probe/shutdown connection
            Err(e) => (error_response(&e), true),
        };
        let mut buf = Vec::new();
        response.write_into(&mut buf, close);
        if out.write_all(&buf).is_err() || out.flush().is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::fetch;
    use crate::http::{Response, Status};
    use std::io::Read;

    fn echo_server() -> Server {
        Server::start(Arc::new(|req: &Request| match (req.method, req.path()) {
            (Method::Get, "/hello") => Response::ok("text/plain", &b"world"[..]),
            (Method::Post, "/echo") => Response::ok("application/octet-stream", req.body.clone()),
            _ => Response::error(Status::NotFound, "nope"),
        }))
        .expect("bind")
    }

    #[test]
    fn get_and_post_roundtrip() {
        let server = echo_server();
        let resp = fetch(server.addr(), Request::get("/hello")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&resp.body[..], b"world");

        let resp = fetch(server.addr(), Request::post("/echo", &b"payload"[..])).unwrap();
        assert_eq!(&resp.body[..], b"payload");
    }

    #[test]
    fn unknown_route_is_404() {
        let server = echo_server();
        let resp = fetch(server.addr(), Request::get("/missing")).unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("req-{i}");
                    let resp = fetch(addr, Request::post("/echo", body.clone().into_bytes()))
                        .expect("fetch");
                    assert_eq!(&resp.body[..], body.as_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_unbinds() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        // After shutdown the port stops answering HTTP.
        let result = fetch(addr, Request::get("/hello"));
        assert!(result.is_err());
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }

    /// Write raw bytes, read whatever comes back as a status line.
    fn raw_exchange(addr: SocketAddr, payload: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(payload).unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        buf
    }

    #[test]
    fn bad_content_length_gets_400_not_a_hang() {
        let server = echo_server();
        // Unparseable, negative, and usize-overflowing declared lengths
        // must each produce an immediate 400 — the old codec treated them
        // as 0 and left the connection waiting on a body that never comes.
        for bad in ["abc", "-5", "18446744073709551616"] {
            let raw = format!("POST /echo HTTP/1.1\r\ncontent-length: {bad}\r\n\r\nxyz");
            let buf = raw_exchange(server.addr(), raw.as_bytes());
            assert!(buf.starts_with("HTTP/1.1 400"), "value {bad:?}: {buf}");
        }
    }

    #[test]
    fn oversized_content_length_gets_413() {
        let server = echo_server();
        let raw = format!(
            "POST /echo HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            crate::http::MAX_BODY_BYTES + 1
        );
        let buf = raw_exchange(server.addr(), raw.as_bytes());
        assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");
    }

    #[test]
    fn shutdown_races_with_connects() {
        // Hammer the listener while shutdown runs. Connections that race
        // the stop flag must either be served or dropped — never spawn a
        // worker the drain misses — and shutdown must not hang on them.
        for _ in 0..8 {
            let mut server = echo_server();
            let addr = server.addr();
            let stop = Arc::new(AtomicBool::new(false));
            let clients: Vec<_> = (0..4)
                .map(|_| {
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            let _ = fetch(addr, Request::get("/hello"));
                        }
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(2));
            server.shutdown();
            stop.store(true, Ordering::SeqCst);
            for c in clients {
                c.join().unwrap();
            }
        }
    }

    #[test]
    fn head_gets_headers_without_body() {
        let server = Server::start(Arc::new(|_req: &Request| {
            Response::ok("text/html", &b"<html>full body</html>"[..])
        }))
        .expect("bind");
        let mut req = Request::get("/page");
        req.method = Method::Head;
        let resp = fetch(server.addr(), req).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.is_empty());
        // The would-be entity length is advertised.
        assert_eq!(resp.header("x-entity-length"), Some("22"));
    }

    #[test]
    fn persistent_mode_serves_keep_alive_and_pipelined_requests() {
        let server = Server::start_persistent(Arc::new(|req: &Request| {
            Response::ok("application/octet-stream", req.body.clone())
        }))
        .expect("bind");
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Sequential keep-alive exchanges...
        for i in 0..3 {
            let body = format!("seq-{i}");
            let mut raw = Vec::new();
            Request::post("/echo", body.clone().into_bytes())
                .write_into(&mut raw, false)
                .unwrap();
            out.write_all(&raw).unwrap();
            let resp = Response::read_from(&mut reader).unwrap();
            assert_eq!(&resp.body[..], body.as_bytes());
            assert_eq!(resp.header("connection"), Some("keep-alive"));
        }
        // ...then a pipelined burst ending in connection: close.
        let mut raw = Vec::new();
        for i in 0..3 {
            Request::post("/echo", format!("pipe-{i}").into_bytes())
                .write_into(&mut raw, i == 2)
                .unwrap();
        }
        out.write_all(&raw).unwrap();
        for i in 0..3 {
            let resp = Response::read_from(&mut reader).unwrap();
            assert_eq!(&resp.body[..], format!("pipe-{i}").as_bytes());
        }
        let mut one = [0u8; 8];
        assert_eq!(reader.read(&mut one).unwrap_or(0), 0, "closed after burst");
    }
}
