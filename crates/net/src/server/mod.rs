//! Nonblocking HTTP/1.1 server: a readiness loop over `std::net`.
//!
//! Architecture (DESIGN 6.8): `event_loops` threads each own a
//! `try_clone`'d nonblocking listener and a flat vector of per-connection
//! state machines, multiplexed with the `poll(2)` shim in [`crate::poll`].
//! Connections are keep-alive by default (HTTP/1.1 semantics), requests
//! may be pipelined, and both directions are bounded: the read buffer is
//! capped by the codec [`Limits`], the write buffer by
//! [`ServerConfig::write_buf_limit`] — a connection whose peer stops
//! draining responses stops being read (TCP backpressure) instead of
//! growing server memory.
//!
//! Overload policy: past [`ServerConfig::shed_high_water`] open
//! connections a new accept is answered with an immediate
//! `503 Service Unavailable` + `connection: close` (load shedding); past
//! [`ServerConfig::max_connections`] the listener is simply not polled
//! (accept backpressure via the OS backlog). An idle-timeout sweep closes
//! keep-alive connections that go quiet so they can never pin the loop —
//! in particular not past [`Server::shutdown`], which idle peers would
//! otherwise survive.
//!
//! The seed thread-per-connection blocking server is preserved as
//! [`oracle`]; `tests/server_equivalence.rs` pins the two byte-identical
//! for identical request streams. Everything behavior-relevant is shared:
//! the codec parsers ([`parse_request`] is proptest-pinned against the
//! streaming reader), [`error_response`], [`finalize_head`], and
//! [`Response::write_into`].

use crate::http::{parse_request, HttpError, Limits, Method, Request, Response, Status};
use crate::poll::{self, Interest};
use crate::stats::ServerStats;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod oracle;

/// Request handler: pure function from request to response. Handlers run
/// on event-loop (or, for the oracle, connection) threads, so they must be
/// `Send + Sync`.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Tuning knobs for the readiness-loop server.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Codec limits applied to every connection.
    pub limits: Limits,
    /// Hard cap on open connections per server; at the cap the listener
    /// stops being polled and the OS backlog absorbs the burst.
    pub max_connections: usize,
    /// Load-shed threshold: a connection accepted while this many are
    /// already open gets an immediate 503 and a close.
    pub shed_high_water: usize,
    /// Keep-alive connections quiet for longer than this are closed by
    /// the sweep (and counted in `ServerStats::idle_closed`).
    pub idle_timeout: Duration,
    /// Per-connection cap on buffered response bytes; past it the
    /// connection is not read until the peer drains.
    pub write_buf_limit: usize,
    /// Number of sharded event loops, each with its own cloned listener.
    pub event_loops: usize,
    /// Upper bound on one poll wait: bounds shutdown and idle-sweep
    /// latency, never adds request latency (poll returns on readiness).
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            limits: Limits::default(),
            max_connections: 1024,
            shed_high_water: 896,
            idle_timeout: Duration::from_secs(5),
            write_buf_limit: 256 * 1024,
            event_loops: 2,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// A running nonblocking HTTP server.
///
/// Dropping the server (or calling [`shutdown`](Server::shutdown)) stops
/// every event loop and closes every connection, idle keep-alive ones
/// included.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    loops: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Bind to an ephemeral loopback port with default config.
    pub fn start(handler: Handler) -> std::io::Result<Server> {
        Server::start_with(handler, ServerConfig::default())
    }

    /// Bind to an ephemeral loopback port with explicit config.
    pub fn start_with(handler: Handler, config: ServerConfig) -> std::io::Result<Server> {
        Server::bind(("127.0.0.1", 0), handler, config)
    }

    /// Bind to an explicit address (the `wla serve` entry point).
    pub fn bind(
        addr: impl ToSocketAddrs,
        handler: Handler,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::new());
        let shards = config.event_loops.max(1);
        let mut loops = Vec::with_capacity(shards);
        for _ in 0..shards {
            let listener = listener.try_clone()?;
            let handler = Arc::clone(&handler);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            loops.push(std::thread::spawn(move || {
                event_loop(listener, handler, config, stats, stop)
            }));
        }
        drop(listener);
        Ok(Server {
            addr,
            stop,
            stats,
            loops,
        })
    }

    /// Address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters (shared across event loops).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Stop every event loop and join it. Open connections — idle
    /// keep-alive ones included — are closed, not waited out.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake whichever loop wins the accept race; the rest notice the
        // flag within one poll_interval.
        let _ = TcpStream::connect(self.addr);
        for h in self.loops.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Map a codec error onto the response both servers emit for it. EOF is
/// not in the table: a peer that closes mid-message gets a silent close.
pub(crate) fn error_response(e: &HttpError) -> Response {
    match e {
        HttpError::BodyTooLarge(_) => Response::error(Status::PayloadTooLarge, "body too large"),
        HttpError::HeadersTooLarge | HttpError::TooManyHeaders(_) => {
            Response::error(Status::HeaderFieldsTooLarge, &e.to_string())
        }
        other => Response::error(Status::BadRequest, &other.to_string()),
    }
}

/// RFC 9110 §9.3.2: HEAD responses carry the GET's metadata but no body.
/// Our codec frames strictly on content-length, so the would-be entity
/// size is advertised in `x-entity-length` instead of lying in
/// content-length (documented codec deviation). Shared by both servers.
pub(crate) fn finalize_head(response: Response, head_request: bool) -> Response {
    if !head_request {
        return response;
    }
    let mut r = response;
    r.headers
        .push(("x-entity-length".into(), r.body.len().to_string()));
    r.body = bytes::Bytes::new();
    r
}

/// The 503 a shed connection is answered with.
pub(crate) fn shed_response() -> Response {
    Response::error(Status::ServiceUnavailable, "server over capacity")
}

#[cfg(unix)]
fn fd_of<T: std::os::unix::io::AsRawFd>(t: &T) -> i64 {
    t.as_raw_fd() as i64
}
#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i64 {
    0
}

/// Per-connection state machine. Lifecycle: accepted (possibly straight
/// into shedding) → read/parse/dispatch/buffer → flush → either back to
/// reading (keep-alive) or closed (`close_after_flush`, peer EOF, error,
/// idle sweep, shutdown).
struct Conn {
    stream: TcpStream,
    fd: i64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Peer half-closed its sending side (read returned 0).
    read_closed: bool,
    /// Close once the write buffer drains (explicit `connection: close`,
    /// a codec error, shedding, or peer EOF).
    close_after_flush: bool,
    /// Unrecoverable: remove on the next sweep.
    dead: bool,
    last_activity: Instant,
    /// Requests served on this connection (keep-alive accounting).
    served: u64,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        let fd = fd_of(&stream);
        Conn {
            stream,
            fd,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            read_closed: false,
            close_after_flush: false,
            dead: false,
            last_activity: now,
            served: 0,
        }
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Upper bound on buffered request bytes: the largest stream a single
    /// in-flight request can legitimately occupy (request line + header
    /// block + declared body, each individually capped) plus slack. At the
    /// cap [`parse_request`] either completes or errors, so reading stops
    /// only transiently.
    fn read_cap(limits: &Limits) -> usize {
        2 * limits.max_header_bytes + limits.max_body_bytes + 1024
    }

    fn wants_read(&self, config: &ServerConfig) -> bool {
        !self.dead
            && !self.read_closed
            && !self.close_after_flush
            && self.pending_write() < config.write_buf_limit
            && self.read_buf.len() < Conn::read_cap(&config.limits)
    }

    fn wants_write(&self) -> bool {
        !self.dead && self.pending_write() > 0
    }

    /// Drain the socket into `read_buf` until `WouldBlock`, EOF, or the
    /// read cap.
    fn fill(&mut self, config: &ServerConfig, now: Instant) {
        let cap = Conn::read_cap(&config.limits);
        let mut chunk = [0u8; 16 * 1024];
        while self.read_buf.len() < cap {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    /// Parse and dispatch every complete pipelined request currently
    /// buffered, appending responses to the write buffer.
    fn drain_requests(&mut self, handler: &Handler, config: &ServerConfig, stats: &ServerStats) {
        while !self.dead && !self.close_after_flush {
            if self.pending_write() >= config.write_buf_limit {
                // Backpressure: stop producing responses the peer is not
                // draining; leftover buffered requests wait here.
                break;
            }
            match parse_request(&self.read_buf, &config.limits) {
                Ok(Some((request, consumed))) => {
                    self.read_buf.drain(..consumed);
                    let t0 = Instant::now();
                    let close = request.wants_close();
                    let head = request.method == Method::Head;
                    let response = finalize_head(handler(&request), head);
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    if self.served > 0 {
                        stats.keepalive_requests.fetch_add(1, Ordering::Relaxed);
                    }
                    self.served += 1;
                    response.write_into(&mut self.write_buf, close);
                    stats.service.record(t0.elapsed().as_nanos() as u64);
                    if close {
                        self.close_after_flush = true;
                    }
                }
                Ok(None) => {
                    if self.read_closed {
                        // Peer finished sending. A partial trailing request
                        // gets the oracle's silent-close treatment; either
                        // way, flush what is owed and close.
                        self.read_buf.clear();
                        self.close_after_flush = true;
                    }
                    break;
                }
                Err(e) => {
                    stats.parse_failures.fetch_add(1, Ordering::Relaxed);
                    error_response(&e).write_into(&mut self.write_buf, true);
                    self.read_buf.clear();
                    self.close_after_flush = true;
                    break;
                }
            }
        }
    }

    /// Write buffered response bytes until `WouldBlock` or drained.
    fn flush(&mut self, now: Instant) {
        while self.pending_write() > 0 {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.write_pos += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.pending_write() == 0 {
            self.write_buf.clear();
            self.write_pos = 0;
            if self.close_after_flush || (self.read_closed && self.read_buf.is_empty()) {
                self.dead = true;
            }
        }
    }
}

/// One sharded event loop: poll listener + connections, accept/shed,
/// read/parse/dispatch, flush, sweep.
fn event_loop(
    listener: TcpListener,
    handler: Handler,
    config: ServerConfig,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
) {
    let listener_fd = fd_of(&listener);
    let mut conns: Vec<Conn> = Vec::new();
    let mut sources: Vec<Interest> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let accepting = (stats.active.load(Ordering::Relaxed) as usize) < config.max_connections;
        sources.clear();
        sources.push(Interest::new(listener_fd, accepting, false));
        for c in &conns {
            sources.push(Interest::new(c.fd, c.wants_read(&config), c.wants_write()));
        }
        poll::wait(&mut sources, config.poll_interval);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();

        // Accept every pending connection (shared listener: losing an
        // accept race to a sibling loop is just WouldBlock).
        if accepting && sources[0].readable {
            loop {
                if (stats.active.load(Ordering::Relaxed) as usize) >= config.max_connections {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        let mut conn = Conn::new(stream, now);
                        stats.active.fetch_add(1, Ordering::Relaxed);
                        if (stats.active.load(Ordering::Relaxed) as usize) > config.shed_high_water
                        {
                            stats.shed.fetch_add(1, Ordering::Relaxed);
                            shed_response().write_into(&mut conn.write_buf, true);
                            conn.close_after_flush = true;
                        } else {
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        conns.push(conn);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // Per-connection I/O. `sources[i + 1]` still lines up with
        // `conns[i]`: accepts only append past the polled prefix.
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.dead {
                continue;
            }
            if let Some(s) = sources.get(i + 1) {
                if s.error {
                    // Let a pending flush discover the exact error; a
                    // connection with nothing to say is just dead.
                    if !conn.wants_write() {
                        conn.dead = true;
                        continue;
                    }
                }
                if s.readable && conn.wants_read(&config) {
                    conn.fill(&config, now);
                }
            }
            // Always attempt parse + flush: progress must not wait a poll
            // round after backpressure lifts, and writes are attempted
            // optimistically (loopback sockets almost always accept a
            // response without waiting for POLLOUT).
            conn.drain_requests(&handler, &config, &stats);
            if conn.wants_write() || conn.close_after_flush || conn.read_closed {
                conn.flush(now);
            }
        }

        // Sweep: reap dead connections, close idle ones.
        conns.retain(|c| {
            if c.dead {
                stats.active.fetch_sub(1, Ordering::Relaxed);
                return false;
            }
            if now.duration_since(c.last_activity) > config.idle_timeout {
                stats.idle_closed.fetch_add(1, Ordering::Relaxed);
                stats.active.fetch_sub(1, Ordering::Relaxed);
                return false;
            }
            true
        });
    }
    // Shutdown: dropping `conns` closes every socket, idle keep-alive
    // connections included — nothing pins the loop past stop().
    for c in conns.drain(..) {
        stats.active.fetch_sub(1, Ordering::Relaxed);
        drop(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::fetch;
    use std::io::{BufReader, Read, Write};

    fn echo_handler() -> Handler {
        Arc::new(|req: &Request| match (req.method, req.path()) {
            (Method::Get, "/hello") => Response::ok("text/plain", &b"world"[..]),
            (Method::Post, "/echo") => Response::ok("application/octet-stream", req.body.clone()),
            (Method::Head, _) => Response::ok("text/plain", &b"head-body"[..]),
            _ => Response::error(Status::NotFound, "nope"),
        })
    }

    fn echo_server() -> Server {
        Server::start(echo_handler()).expect("bind")
    }

    #[test]
    fn get_and_post_roundtrip() {
        let server = echo_server();
        let resp = fetch(server.addr(), Request::get("/hello")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&resp.body[..], b"world");
        let resp = fetch(server.addr(), Request::post("/echo", &b"payload"[..])).unwrap();
        assert_eq!(&resp.body[..], b"payload");
    }

    #[test]
    fn unknown_route_is_404() {
        let server = echo_server();
        let resp = fetch(server.addr(), Request::get("/missing")).unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn concurrent_requests() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!("req-{i}");
                    let resp = fetch(addr, Request::post("/echo", body.clone().into_bytes()))
                        .expect("fetch");
                    assert_eq!(&resp.body[..], body.as_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let server = echo_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for i in 0..5 {
            let body = format!("ka-{i}");
            let mut raw = Vec::new();
            Request::post("/echo", body.clone().into_bytes())
                .write_into(&mut raw, false)
                .unwrap();
            out.write_all(&raw).unwrap();
            let resp = Response::read_from(&mut reader).unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(&resp.body[..], body.as_bytes());
            assert_eq!(resp.header("connection"), Some("keep-alive"));
        }
        let snap = server.stats().snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.keepalive_requests, 4);
        assert!(snap.requests_per_connection > 4.9);
    }

    #[test]
    fn pipelined_requests_answered_in_order() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut raw = Vec::new();
        for i in 0..3 {
            Request::post("/echo", format!("p-{i}").into_bytes())
                .write_into(&mut raw, i == 2)
                .unwrap();
        }
        stream.write_all(&raw).unwrap();
        let mut reader = BufReader::new(stream);
        for i in 0..3 {
            let resp = Response::read_from(&mut reader).unwrap();
            assert_eq!(&resp.body[..], format!("p-{i}").as_bytes(), "response {i}");
        }
    }

    #[test]
    fn fragmented_writes_parse_identically() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut raw = Vec::new();
        Request::post("/echo", &b"fragmented body"[..])
            .write_into(&mut raw, true)
            .unwrap();
        // Trickle the request a few bytes at a time across many writes.
        for chunk in raw.chunks(3) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
        }
        let resp = Response::read_from(&mut BufReader::new(stream)).unwrap();
        assert_eq!(&resp.body[..], b"fragmented body");
    }

    #[test]
    fn head_gets_headers_without_body() {
        let server = echo_server();
        let mut req = Request::get("/hello");
        req.method = Method::Head;
        let resp = fetch(server.addr(), req).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.is_empty());
        assert_eq!(resp.header("x-entity-length"), Some("9"));
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server();
        let buf = raw_exchange(server.addr(), b"NOT-HTTP\r\n\r\n");
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        assert_eq!(server.stats().snapshot().parse_failures, 1);
    }

    /// Write raw bytes, read whatever comes back until EOF.
    fn raw_exchange(addr: SocketAddr, payload: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(payload).unwrap();
        let mut buf = String::new();
        let _ = stream.read_to_string(&mut buf);
        buf
    }

    #[test]
    fn bad_content_length_gets_400_not_a_hang() {
        let server = echo_server();
        for bad in ["abc", "-5", "18446744073709551616"] {
            let raw = format!("POST /echo HTTP/1.1\r\ncontent-length: {bad}\r\n\r\nxyz");
            let buf = raw_exchange(server.addr(), raw.as_bytes());
            assert!(buf.starts_with("HTTP/1.1 400"), "value {bad:?}: {buf}");
        }
    }

    #[test]
    fn oversized_content_length_gets_413() {
        let server = echo_server();
        let raw = format!(
            "POST /echo HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            crate::http::MAX_BODY_BYTES + 1
        );
        let buf = raw_exchange(server.addr(), raw.as_bytes());
        assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");
    }

    #[test]
    fn header_bomb_gets_431() {
        let server = echo_server();
        let mut raw = String::from("GET /hello HTTP/1.1\r\n");
        for i in 0..200 {
            raw.push_str(&format!("x-filler-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let buf = raw_exchange(server.addr(), raw.as_bytes());
        assert!(buf.starts_with("HTTP/1.1 431"), "{buf}");
    }

    #[test]
    fn sheds_with_503_past_high_water() {
        let mut config = ServerConfig {
            shed_high_water: 1,
            ..ServerConfig::default()
        };
        config.event_loops = 1;
        let server = Server::start_with(echo_handler(), config).expect("bind");
        // Occupy the one below-water slot with a served keep-alive conn.
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = stream.try_clone().unwrap();
        let mut raw = Vec::new();
        Request::get("/hello").write_into(&mut raw, false).unwrap();
        out.write_all(&raw).unwrap();
        let resp = Response::read_from(&mut BufReader::new(stream)).unwrap();
        assert_eq!(resp.status, Status::Ok);
        // The next connection lands above the mark and is shed.
        let buf = raw_exchange(server.addr(), b"GET /hello HTTP/1.1\r\n\r\n");
        assert!(buf.starts_with("HTTP/1.1 503"), "{buf}");
        assert!(buf.contains("connection: close"), "{buf}");
        let snap = server.stats().snapshot();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.accepted, 1);
    }

    #[test]
    fn idle_keep_alive_connection_is_swept() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        };
        let server = Server::start_with(echo_handler(), config).expect("bind");
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut raw = Vec::new();
        Request::get("/hello").write_into(&mut raw, false).unwrap();
        out.write_all(&raw).unwrap();
        let resp = Response::read_from(&mut reader).unwrap();
        assert_eq!(resp.status, Status::Ok);
        // Go quiet; the sweep must close us from the server side.
        let mut rest = Vec::new();
        let mut one = [0u8; 64];
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match reader.read(&mut one) {
                Ok(0) => break, // server closed: swept
                Ok(n) => rest.extend_from_slice(&one[..n]),
                Err(_) => assert!(Instant::now() < deadline, "idle sweep never fired"),
            }
        }
        assert!(rest.is_empty(), "unexpected extra bytes: {rest:?}");
        assert_eq!(server.stats().snapshot().idle_closed, 1);
    }

    #[test]
    fn shutdown_closes_idle_keep_alive_connections_promptly() {
        // Satellite regression: a persistent idle connection must not pin
        // shutdown. Seed behavior would have a worker thread stuck in a
        // blocking read until its timeout.
        let mut server = echo_server();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut raw = Vec::new();
        Request::get("/hello").write_into(&mut raw, false).unwrap();
        out.write_all(&raw).unwrap();
        let _ = Response::read_from(&mut reader).unwrap();
        // Connection now idles in keep-alive. Shutdown must return fast.
        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown pinned by idle keep-alive connection: {:?}",
            t0.elapsed()
        );
        // And the client sees the close.
        let mut one = [0u8; 16];
        assert_eq!(reader.read(&mut one).unwrap_or(0), 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_unbinds() {
        let mut server = echo_server();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        let result = fetch(addr, Request::get("/hello"));
        assert!(result.is_err());
    }

    #[test]
    fn shutdown_races_with_connects() {
        for _ in 0..8 {
            let mut server = echo_server();
            let addr = server.addr();
            let stop = Arc::new(AtomicBool::new(false));
            let clients: Vec<_> = (0..4)
                .map(|_| {
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            let _ = fetch(addr, Request::get("/hello"));
                        }
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(2));
            server.shutdown();
            stop.store(true, Ordering::SeqCst);
            for c in clients {
                c.join().unwrap();
            }
        }
    }

    #[test]
    fn half_close_still_answers_buffered_pipeline() {
        // Client writes two pipelined requests then shuts down its write
        // side; both responses must still arrive before the close.
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut raw = Vec::new();
        Request::post("/echo", &b"one"[..])
            .write_into(&mut raw, false)
            .unwrap();
        Request::post("/echo", &b"two"[..])
            .write_into(&mut raw, false)
            .unwrap();
        stream.write_all(&raw).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = BufReader::new(stream);
        let first = Response::read_from(&mut reader).unwrap();
        let second = Response::read_from(&mut reader).unwrap();
        assert_eq!(&first.body[..], b"one");
        assert_eq!(&second.body[..], b"two");
        let mut one = [0u8; 16];
        assert_eq!(reader.read(&mut one).unwrap_or(0), 0, "then closed");
    }
}
