//! Method+path request router shared by every server frontend.
//!
//! One [`Router`] now fronts both workloads — the dynamic-crawl endpoints
//! (beacon, netlog) and the static-analysis service (`POST /analyze` in
//! `wla-core`) — on either server implementation, since it lowers to the
//! plain [`Handler`] both accept. Dispatch policy: unknown path → 404;
//! known path but unregistered method → 405 with an `allow` header listing
//! the methods that would have worked (deterministic registration order,
//! so oracle and nonblocking responses stay byte-identical).

use crate::http::{Method, Request, Response, Status};
use crate::server::Handler;
use std::sync::Arc;

type RouteFn = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// Exact-path router.
#[derive(Default)]
pub struct Router {
    routes: Vec<(Method, String, RouteFn)>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths: Vec<String> = self
            .routes
            .iter()
            .map(|(m, p, _)| format!("{} {p}", m.as_str()))
            .collect();
        f.debug_struct("Router").field("routes", &paths).finish()
    }
}

impl Router {
    /// Empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a handler for `method` + exact `path` (query excluded).
    pub fn route(
        mut self,
        method: Method,
        path: &str,
        f: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push((method, path.to_owned(), Box::new(f)));
        self
    }

    /// Dispatch one request: exact method+path match, else 405 (path known
    /// under another method) or 404.
    pub fn dispatch(&self, req: &Request) -> Response {
        let path = req.path();
        let mut allowed: Vec<&'static str> = Vec::new();
        for (method, route_path, f) in &self.routes {
            if route_path != path {
                continue;
            }
            if *method == req.method {
                return f(req);
            }
            if !allowed.contains(&method.as_str()) {
                allowed.push(method.as_str());
            }
        }
        if allowed.is_empty() {
            Response::error(Status::NotFound, "unknown route")
        } else {
            let mut resp = Response::error(Status::MethodNotAllowed, "method not allowed");
            resp.headers.push(("allow".into(), allowed.join(", ")));
            resp
        }
    }

    /// Lower to the [`Handler`] both server implementations accept.
    pub fn into_handler(self) -> Handler {
        Arc::new(move |req: &Request| self.dispatch(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn router() -> Router {
        Router::new()
            .route(Method::Get, "/page", |_| {
                Response::ok("text/plain", &b"page"[..])
            })
            .route(Method::Post, "/beacon", |req| {
                Response::ok("application/octet-stream", req.body.clone())
            })
            .route(Method::Get, "/beacon", |_| {
                Response::ok("text/plain", &b"beacon-get"[..])
            })
    }

    fn req(method: Method, target: &str) -> Request {
        Request {
            method,
            target: target.into(),
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    #[test]
    fn dispatches_on_method_and_path() {
        let r = router();
        assert_eq!(&r.dispatch(&req(Method::Get, "/page")).body[..], b"page");
        assert_eq!(
            &r.dispatch(&req(Method::Get, "/beacon")).body[..],
            b"beacon-get"
        );
        // Query strings don't affect matching.
        assert_eq!(
            &r.dispatch(&req(Method::Get, "/page?x=1")).body[..],
            b"page"
        );
    }

    #[test]
    fn unknown_path_is_404() {
        let resp = router().dispatch(&req(Method::Get, "/missing"));
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn known_path_wrong_method_is_405_with_allow() {
        let resp = router().dispatch(&req(Method::Head, "/page"));
        assert_eq!(resp.status, Status::MethodNotAllowed);
        assert_eq!(resp.header("allow"), Some("GET"));
        let resp = router().dispatch(&req(Method::Head, "/beacon"));
        assert_eq!(resp.header("allow"), Some("POST, GET"));
    }
}
