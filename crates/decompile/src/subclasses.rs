//! Transitive `extends WebView` closure over parsed sources — the paper's
//! "custom WebView class implementations" (§3.1.2).

use crate::lifter::SourceFile;
use crate::parser::{parse_source, ParsedClass};
use std::collections::{HashMap, HashSet};
use wla_intern::{LocalInterner, Symbol};

/// Qualified source name of the WebView class.
pub const WEBVIEW_SOURCE_NAME: &str = "android.webkit.WebView";

/// Parse every source file and return the binary names of classes that
/// extend `android.webkit.WebView` directly or transitively, interned into
/// `lexicon`. Files that fail to parse are skipped, as the paper's tooling
/// skips decompilation failures.
///
/// The fixed point runs entirely on symbols: qualified names, superclass
/// names, and the returned binary names are interned once up front, so the
/// iteration hashes `u32`s instead of strings.
pub fn webview_subclasses_interned(
    files: &[SourceFile],
    lexicon: &mut LocalInterner,
) -> HashSet<Symbol> {
    let webview = lexicon.intern(WEBVIEW_SOURCE_NAME);
    // interned qualified source name -> (interned binary name, superclass).
    let mut classes: HashMap<Symbol, (Symbol, Option<Symbol>)> = HashMap::new();
    for f in files {
        let parsed: ParsedClass = match parse_source(&f.source) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let sup = parsed.resolved_superclass().map(|s| lexicon.intern(&s));
        classes.insert(
            lexicon.intern(&parsed.qualified_name()),
            (lexicon.intern(&f.binary_name), sup),
        );
    }

    // Fixed-point: a class is a WebView subclass if its superclass is
    // WebView or an already-known subclass.
    let mut subclass_qualified: HashSet<Symbol> = HashSet::new();
    loop {
        let mut changed = false;
        for (qname, (_, sup)) in &classes {
            if subclass_qualified.contains(qname) {
                continue;
            }
            if let Some(sup) = sup {
                if *sup == webview || subclass_qualified.contains(sup) {
                    subclass_qualified.insert(*qname);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    classes
        .into_iter()
        .filter(|(q, _)| subclass_qualified.contains(q))
        .map(|(_, (binary, _))| binary)
        .collect()
}

/// String-typed convenience wrapper over [`webview_subclasses_interned`]
/// for callers outside the interned pipeline (tests, one-off tooling).
pub fn webview_subclasses(files: &[SourceFile]) -> HashSet<String> {
    let mut lexicon = LocalInterner::new();
    webview_subclasses_interned(files, &mut lexicon)
        .into_iter()
        .map(|s| lexicon.resolve(s).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(binary: &str, source: &str) -> SourceFile {
        SourceFile {
            binary_name: binary.to_owned(),
            source: source.to_owned(),
        }
    }

    #[test]
    fn direct_subclass_found() {
        let files = vec![file(
            "com/x/Custom",
            "package com.x; import android.webkit.WebView; public class Custom extends WebView {}",
        )];
        let subs = webview_subclasses(&files);
        assert!(subs.contains("com/x/Custom"));
    }

    #[test]
    fn transitive_subclass_found() {
        let files = vec![
            file(
                "com/x/A",
                "package com.x; import android.webkit.WebView; class A extends WebView {}",
            ),
            file("com/x/B", "package com.x; class B extends A {}"),
            file("com/x/C", "package com.x; class C extends B {}"),
            file("com/x/Other", "package com.x; class Other {}"),
        ];
        let subs = webview_subclasses(&files);
        assert_eq!(subs.len(), 3);
        assert!(subs.contains("com/x/C"));
        assert!(!subs.contains("com/x/Other"));
    }

    #[test]
    fn cross_package_via_import() {
        let files = vec![
            file(
                "com/a/Base",
                "package com.a; import android.webkit.WebView; public class Base extends WebView {}",
            ),
            file(
                "com/b/Child",
                "package com.b; import com.a.Base; public class Child extends Base {}",
            ),
        ];
        let subs = webview_subclasses(&files);
        assert!(subs.contains("com/b/Child"));
    }

    #[test]
    fn lookalike_names_not_confused() {
        // A class extending an unrelated `WebView` from a different package
        // must not be flagged.
        let files = vec![file(
            "com/x/NotReally",
            "package com.x; import com.other.WebView; class NotReally extends WebView {}",
        )];
        assert!(webview_subclasses(&files).is_empty());
    }

    #[test]
    fn unparseable_files_skipped() {
        let files = vec![
            file("bad/File", "%%% not java %%%"),
            file(
                "com/x/Ok",
                "package com.x; import android.webkit.WebView; class Ok extends WebView {}",
            ),
        ];
        let subs = webview_subclasses(&files);
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn superclass_cycles_terminate() {
        let files = vec![
            file("com/x/A", "package com.x; class A extends B {}"),
            file("com/x/B", "package com.x; class B extends A {}"),
        ];
        assert!(webview_subclasses(&files).is_empty());
    }
}
