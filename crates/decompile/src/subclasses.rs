//! Transitive `extends WebView` closure — the paper's "custom WebView
//! class implementations" (§3.1.2).
//!
//! Two implementations of the same closure live here:
//!
//! * [`webview_subclasses_dex_interned`] walks the dex class tables
//!   directly (binary names, superclass links pooled across dexes). This
//!   is what the pipeline's hot path runs: no source text is materialized.
//! * [`webview_subclasses_interned`] is the paper-faithful route — lift to
//!   Java, re-parse, resolve superclasses through imports — kept as the
//!   oracle the dex-direct closure is equivalence-pinned against (here and
//!   over whole generated corpora in `tests/decode_equivalence.rs`).
//!
//! The two agree on every corpus the generator emits. They can diverge
//! only on adversarial inputs the lifter cannot round-trip faithfully:
//! binary names containing `$` (lifted to `.`), or simple-name import
//! collisions where the parser's first-match import resolution picks a
//! different class than the dex superclass link records.

use crate::lifter::SourceFile;
use crate::parser::{parse_source, ParsedClass};
use std::collections::{HashMap, HashSet};
use wla_apk::names::framework;
use wla_apk::Dex;
use wla_intern::{LocalInterner, Symbol};

/// Qualified source name of the WebView class.
pub const WEBVIEW_SOURCE_NAME: &str = "android.webkit.WebView";

/// Parse every source file and return the binary names of classes that
/// extend `android.webkit.WebView` directly or transitively, interned into
/// `lexicon`. Files that fail to parse are skipped, as the paper's tooling
/// skips decompilation failures.
///
/// The fixed point runs entirely on symbols: qualified names, superclass
/// names, and the returned binary names are interned once up front, so the
/// iteration hashes `u32`s instead of strings.
pub fn webview_subclasses_interned(
    files: &[SourceFile],
    lexicon: &mut LocalInterner,
) -> HashSet<Symbol> {
    let webview = lexicon.intern(WEBVIEW_SOURCE_NAME);
    // interned qualified source name -> (interned binary name, superclass).
    let mut classes: HashMap<Symbol, (Symbol, Option<Symbol>)> = HashMap::new();
    for f in files {
        let parsed: ParsedClass = match parse_source(&f.source) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let sup = parsed.resolved_superclass().map(|s| lexicon.intern(&s));
        classes.insert(
            lexicon.intern(&parsed.qualified_name()),
            (lexicon.intern(&f.binary_name), sup),
        );
    }

    // Fixed-point: a class is a WebView subclass if its superclass is
    // WebView or an already-known subclass.
    let mut subclass_qualified: HashSet<Symbol> = HashSet::new();
    loop {
        let mut changed = false;
        for (qname, (_, sup)) in &classes {
            if subclass_qualified.contains(qname) {
                continue;
            }
            if let Some(sup) = sup {
                if *sup == webview || subclass_qualified.contains(sup) {
                    subclass_qualified.insert(*qname);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    classes
        .into_iter()
        .filter(|(q, _)| subclass_qualified.contains(q))
        .map(|(_, (binary, _))| binary)
        .collect()
}

/// String-typed convenience wrapper over [`webview_subclasses_interned`]
/// for callers outside the interned pipeline (tests, one-off tooling).
pub fn webview_subclasses(files: &[SourceFile]) -> HashSet<String> {
    let mut lexicon = LocalInterner::new();
    webview_subclasses_interned(files, &mut lexicon)
        .into_iter()
        .map(|s| lexicon.resolve(s).to_owned())
        .collect()
}

/// The same closure computed directly on the dex class tables: binary
/// names of classes whose superclass chain (pooled across every dex of a
/// multi-dex app, matching how lifted sources are pooled) reaches
/// `android/webkit/WebView`, interned into `lexicon`.
///
/// Skips the lift-to-Java + re-parse round trip entirely, which is what
/// made decompilation ~80% of per-app analysis time; the lifted route
/// stays available as the equivalence oracle (see module docs).
pub fn webview_subclasses_dex_interned(
    dexes: &[Dex],
    lexicon: &mut LocalInterner,
) -> HashSet<Symbol> {
    // O(1) seed probe through each dex's type lookup table: a subclass
    // chain can only reach WebView if some dex *references* the WebView
    // type (superclass links are type-table entries), so an app with no
    // such reference — most of any corpus — skips the superclass-map
    // build and fixed point entirely.
    if !dexes
        .iter()
        .any(|d| d.type_by_name(framework::WEBVIEW).is_some())
    {
        return HashSet::new();
    }
    let webview = lexicon.intern(framework::WEBVIEW);
    // binary name -> superclass binary name; last definition wins, as the
    // source-map insert does in the lifted route.
    let mut supers: HashMap<Symbol, Option<Symbol>> = HashMap::new();
    for dex in dexes {
        for c in dex.classes() {
            let name = lexicon.intern(dex.type_name(c.ty));
            let sup = c.superclass.map(|s| lexicon.intern(dex.type_name(s)));
            supers.insert(name, sup);
        }
    }

    // Fixed-point: a class is a WebView subclass if its superclass is
    // WebView or an already-known subclass.
    let mut subclasses: HashSet<Symbol> = HashSet::new();
    loop {
        let mut changed = false;
        for (&name, &sup) in &supers {
            if subclasses.contains(&name) {
                continue;
            }
            if let Some(sup) = sup {
                if sup == webview || subclasses.contains(&sup) {
                    subclasses.insert(name);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    subclasses
}

/// String-typed convenience wrapper over
/// [`webview_subclasses_dex_interned`].
pub fn webview_subclasses_dex(dexes: &[Dex]) -> HashSet<String> {
    let mut lexicon = LocalInterner::new();
    webview_subclasses_dex_interned(dexes, &mut lexicon)
        .into_iter()
        .map(|s| lexicon.resolve(s).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(binary: &str, source: &str) -> SourceFile {
        SourceFile {
            binary_name: binary.to_owned(),
            source: source.to_owned(),
        }
    }

    #[test]
    fn direct_subclass_found() {
        let files = vec![file(
            "com/x/Custom",
            "package com.x; import android.webkit.WebView; public class Custom extends WebView {}",
        )];
        let subs = webview_subclasses(&files);
        assert!(subs.contains("com/x/Custom"));
    }

    #[test]
    fn transitive_subclass_found() {
        let files = vec![
            file(
                "com/x/A",
                "package com.x; import android.webkit.WebView; class A extends WebView {}",
            ),
            file("com/x/B", "package com.x; class B extends A {}"),
            file("com/x/C", "package com.x; class C extends B {}"),
            file("com/x/Other", "package com.x; class Other {}"),
        ];
        let subs = webview_subclasses(&files);
        assert_eq!(subs.len(), 3);
        assert!(subs.contains("com/x/C"));
        assert!(!subs.contains("com/x/Other"));
    }

    #[test]
    fn cross_package_via_import() {
        let files = vec![
            file(
                "com/a/Base",
                "package com.a; import android.webkit.WebView; public class Base extends WebView {}",
            ),
            file(
                "com/b/Child",
                "package com.b; import com.a.Base; public class Child extends Base {}",
            ),
        ];
        let subs = webview_subclasses(&files);
        assert!(subs.contains("com/b/Child"));
    }

    #[test]
    fn lookalike_names_not_confused() {
        // A class extending an unrelated `WebView` from a different package
        // must not be flagged.
        let files = vec![file(
            "com/x/NotReally",
            "package com.x; import com.other.WebView; class NotReally extends WebView {}",
        )];
        assert!(webview_subclasses(&files).is_empty());
    }

    #[test]
    fn unparseable_files_skipped() {
        let files = vec![
            file("bad/File", "%%% not java %%%"),
            file(
                "com/x/Ok",
                "package com.x; import android.webkit.WebView; class Ok extends WebView {}",
            ),
        ];
        let subs = webview_subclasses(&files);
        assert_eq!(subs.len(), 1);
    }

    #[test]
    fn superclass_cycles_terminate() {
        let files = vec![
            file("com/x/A", "package com.x; class A extends B {}"),
            file("com/x/B", "package com.x; class B extends A {}"),
        ];
        assert!(webview_subclasses(&files).is_empty());
    }

    mod dex_direct {
        use super::super::*;
        use crate::lifter::lift_dex;
        use wla_apk::{ClassFlags, DexBuilder};

        /// A hierarchy exercising every closure case: a direct subclass, a
        /// transitive chain crossing packages, an unrelated class, and a
        /// lookalike `WebView` from a different package.
        fn hierarchy_dex() -> Dex {
            let mut b = DexBuilder::new();
            b.define_class(
                "com/a/Base",
                Some("android/webkit/WebView"),
                ClassFlags::default(),
                vec![],
            )
            .unwrap();
            b.define_class(
                "com/b/Child",
                Some("com/a/Base"),
                ClassFlags::default(),
                vec![],
            )
            .unwrap();
            b.define_class(
                "com/b/GrandChild",
                Some("com/b/Child"),
                ClassFlags::default(),
                vec![],
            )
            .unwrap();
            b.define_class(
                "com/x/Other",
                Some("android/app/Activity"),
                ClassFlags::default(),
                vec![],
            )
            .unwrap();
            b.define_class(
                "com/x/NotReally",
                Some("com/other/WebView"),
                ClassFlags::default(),
                vec![],
            )
            .unwrap();
            b.build()
        }

        #[test]
        fn direct_and_transitive_subclasses_found() {
            let dex = hierarchy_dex();
            let subs = webview_subclasses_dex(std::slice::from_ref(&dex));
            assert_eq!(subs.len(), 3);
            assert!(subs.contains("com/a/Base"));
            assert!(subs.contains("com/b/Child"));
            assert!(subs.contains("com/b/GrandChild"));
            assert!(!subs.contains("com/x/Other"));
            assert!(!subs.contains("com/x/NotReally"));
        }

        #[test]
        fn chain_pooled_across_dexes() {
            // classes2.dex extends a base defined in classes.dex — the
            // closure must see both tables, like the pooled-sources route.
            let mut b1 = DexBuilder::new();
            b1.define_class(
                "com/a/Base",
                Some("android/webkit/WebView"),
                ClassFlags::default(),
                vec![],
            )
            .unwrap();
            let mut b2 = DexBuilder::new();
            b2.define_class(
                "com/b/Child",
                Some("com/a/Base"),
                ClassFlags::default(),
                vec![],
            )
            .unwrap();
            let dexes = [b1.build(), b2.build()];
            let subs = webview_subclasses_dex(&dexes);
            assert!(subs.contains("com/b/Child"));
            // And per-dex alone the child is invisible.
            assert!(!webview_subclasses_dex(&dexes[1..]).contains("com/b/Child"));
        }

        #[test]
        fn cycles_terminate() {
            let mut b = DexBuilder::new();
            b.define_class("com/x/A", Some("com/x/B"), ClassFlags::default(), vec![])
                .unwrap();
            b.define_class("com/x/B", Some("com/x/A"), ClassFlags::default(), vec![])
                .unwrap();
            assert!(webview_subclasses_dex(&[b.build()]).is_empty());
        }

        #[test]
        fn matches_lift_parse_oracle_on_hierarchy() {
            let dex = hierarchy_dex();
            let oracle = webview_subclasses(&lift_dex(&dex));
            let direct = webview_subclasses_dex(std::slice::from_ref(&dex));
            assert_eq!(direct, oracle);
        }
    }
}
