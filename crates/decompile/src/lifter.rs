//! The JADX analog: SDEX → Java-ish source.
//!
//! The emitted source is a faithful subset of Java — enough that a real
//! Java parser would accept it — and deliberately includes the cosmetic
//! artifacts decompilers produce (banner comments, `/* renamed from */`
//! markers, `@Override`), so the parser in this crate cannot cheat by
//! assuming sterile input.

use std::collections::{BTreeMap, BTreeSet};
use wla_apk::names::{simple_name, to_source_name};
use wla_apk::sdex::{ClassDef, Dex, Instruction, InvokeKind};

/// One decompiled source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Binary name of the class this file defines (`com/x/Foo`).
    pub binary_name: String,
    /// Java-ish source text.
    pub source: String,
}

/// Lift every defined class of `dex` to source.
pub fn lift_dex(dex: &Dex) -> Vec<SourceFile> {
    dex.classes()
        .iter()
        .map(|c| SourceFile {
            binary_name: dex.type_name(c.ty).to_owned(),
            source: lift_class(dex, c),
        })
        .collect()
}

/// Lift a single class definition to source text.
pub fn lift_class(dex: &Dex, class: &ClassDef) -> String {
    let binary = dex.type_name(class.ty);
    let source_name = to_source_name(binary);
    let (package, simple) = match source_name.rfind('.') {
        Some(i) => (Some(&source_name[..i]), &source_name[i + 1..]),
        None => (None, source_name.as_str()),
    };

    // Imports: every external type referenced by method refs or extends,
    // as real decompilers emit them. BTreeSet for stable ordering.
    let mut imports: BTreeSet<String> = BTreeSet::new();
    if let Some(sup) = class.superclass {
        let sup_name = dex.type_name(sup);
        if sup_name != "java/lang/Object" {
            imports.insert(to_source_name(sup_name));
        }
    }
    for m in &class.methods {
        for ins in &m.code {
            if let Instruction::Invoke { method, .. } = ins {
                let ref_ = dex.method_ref(*method);
                let callee_class = dex.type_name(ref_.class);
                if callee_class != binary {
                    imports.insert(to_source_name(callee_class).replace('$', "."));
                }
            }
            if let Instruction::NewInstance { ty } = ins {
                imports.insert(to_source_name(dex.type_name(*ty)).replace('$', "."));
            }
        }
    }
    // Same-package and java.lang imports are not emitted (Java semantics).
    let imports: Vec<String> = imports
        .into_iter()
        .filter(|imp| {
            let pkg = imp.rfind('.').map(|i| &imp[..i]);
            pkg != package && pkg != Some("java.lang")
        })
        .collect();

    let mut out = String::with_capacity(512);
    out.push_str("/*\n * Decompiled with WLA-JADX v1.4.7\n */\n");
    if let Some(pkg) = package {
        out.push_str(&format!("package {pkg};\n\n"));
    }
    for imp in &imports {
        out.push_str(&format!("import {imp};\n"));
    }
    if !imports.is_empty() {
        out.push('\n');
    }

    let extends = class
        .superclass
        .map(|s| dex.type_name(s))
        .filter(|s| *s != "java/lang/Object");
    let kw = if class.flags.interface {
        "interface"
    } else {
        "class"
    };
    let vis = if class.flags.public { "public " } else { "" };
    let abst = if class.flags.abstract_ {
        "abstract "
    } else {
        ""
    };
    out.push_str("/* renamed from: ");
    out.push_str(binary);
    out.push_str(" */\n");
    match extends {
        Some(sup) => {
            // Use the simple name when the superclass was imported,
            // mirroring what decompilers print.
            let sup_src = to_source_name(sup);
            let simple_sup = sup_src.rsplit('.').next().unwrap_or(&sup_src).to_owned();
            out.push_str(&format!(
                "{vis}{abst}{kw} {simple} extends {simple_sup} {{\n"
            ));
        }
        None => out.push_str(&format!("{vis}{abst}{kw} {simple} {{\n")),
    }

    for m in &class.methods {
        let ref_ = dex.method_ref(m.method);
        let name = dex.string(ref_.name);
        if name == "<init>" {
            continue; // constructors are uninteresting to the study
        }
        let vis = if m.public { "public " } else { "private " };
        let stat = if m.static_ { "static " } else { "" };
        out.push_str("    @Override // lifecycle\n");
        out.push_str(&format!("    {vis}{stat}void {name}() {{\n"));
        // Literals tracked per register, the way decompilers inline
        // values: a const-string defines, a move copies, and an invoke
        // reads its first argument register.
        let mut reg_literals: BTreeMap<u16, String> = BTreeMap::new();
        for ins in &m.code {
            match ins {
                Instruction::ConstString { dst, string } => {
                    reg_literals.insert(dst.0, dex.string(*string).to_owned());
                }
                Instruction::Move { dst, src } => {
                    match reg_literals.get(&src.0).cloned() {
                        Some(v) => reg_literals.insert(dst.0, v),
                        None => reg_literals.remove(&dst.0),
                    };
                }
                Instruction::Invoke { kind, method, args } => {
                    let ref_ = dex.method_ref(*method);
                    let callee_class = dex.type_name(ref_.class);
                    let callee = dex.string(ref_.name);
                    let recv = simple_name(callee_class).replace('$', ".");
                    let arg = args
                        .first()
                        .and_then(|r| reg_literals.get(&r.0))
                        .map(|s| format!("\"{}\"", escape_java(s)))
                        .unwrap_or_default();
                    match kind {
                        InvokeKind::Static => {
                            out.push_str(&format!("        {recv}.{callee}({arg});\n"));
                        }
                        _ => {
                            out.push_str(&format!(
                                "        this.{}Instance.{callee}({arg});\n",
                                lower_first(&recv)
                            ));
                        }
                    }
                }
                Instruction::NewInstance { ty } => {
                    let t = simple_name(dex.type_name(*ty)).replace('$', ".");
                    out.push_str(&format!("        {t} obj = new {t}();\n"));
                }
                Instruction::IfTest { offset } => {
                    out.push_str(&format!("        if (cond) {{ /* +{offset} */ }}\n"));
                }
                Instruction::Goto { .. } => out.push_str("        // goto\n"),
                Instruction::ReturnVoid => out.push_str("        return;\n"),
                Instruction::Nop => out.push_str("        ; // nop\n"),
            }
        }
        out.push_str("    }\n\n");
    }
    out.push_str("}\n");
    out
}

fn escape_java(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

fn lower_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().chain(chars).collect(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_apk::sdex::{ClassFlags, DexBuilder, Instruction, InvokeKind, MethodDef, Reg};

    fn webview_app_dex() -> Dex {
        let mut b = DexBuilder::new();
        let load = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let url = b.intern_string("https://example.com/\"quoted\"");
        let on_create = b.intern_method("com/example/app/MainActivity", "onCreate", "()V");
        b.define_class(
            "com/example/app/MainActivity",
            Some("android/app/Activity"),
            ClassFlags {
                public: true,
                ..Default::default()
            },
            vec![MethodDef::new(
                on_create,
                true,
                false,
                vec![
                    Instruction::ConstString {
                        dst: Reg(0),
                        string: url,
                    },
                    Instruction::Move {
                        dst: Reg(1),
                        src: Reg(0),
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load,
                        args: vec![Reg(1)],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        b.define_class(
            "com/example/app/CustomWebView",
            Some("android/webkit/WebView"),
            ClassFlags {
                public: true,
                ..Default::default()
            },
            vec![],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn lift_emits_package_and_extends() {
        let dex = webview_app_dex();
        let files = lift_dex(&dex);
        assert_eq!(files.len(), 2);
        let main = &files[0];
        assert!(main.source.contains("package com.example.app;"));
        assert!(main.source.contains("class MainActivity extends Activity"));
        assert!(main.source.contains("import android.app.Activity;"));
        let custom = &files[1];
        assert!(custom
            .source
            .contains("class CustomWebView extends WebView"));
        assert!(custom.source.contains("import android.webkit.WebView;"));
    }

    #[test]
    fn lift_emits_call_statements_with_escaped_strings() {
        let dex = webview_app_dex();
        let src = &lift_dex(&dex)[0].source;
        assert!(
            src.contains("loadUrl(\"https://example.com/\\\"quoted\\\"\")"),
            "{src}"
        );
    }

    #[test]
    fn same_package_types_not_imported() {
        let mut b = DexBuilder::new();
        let helper = b.intern_method("com/x/Helper", "go", "()V");
        let m = b.intern_method("com/x/Main", "run", "()V");
        b.define_class(
            "com/x/Helper",
            Some("java/lang/Object"),
            ClassFlags::default(),
            vec![],
        )
        .unwrap();
        b.define_class(
            "com/x/Main",
            Some("java/lang/Object"),
            ClassFlags::default(),
            vec![MethodDef::new(
                m,
                true,
                false,
                vec![
                    Instruction::Invoke {
                        kind: InvokeKind::Static,
                        method: helper,
                        args: vec![],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        let dex = b.build();
        let src = lift_class(&dex, dex.class_by_name("com/x/Main").unwrap());
        assert!(!src.contains("import com.x.Helper;"), "{src}");
        assert!(src.contains("Helper.go();"));
    }

    #[test]
    fn object_superclass_not_printed() {
        let mut b = DexBuilder::new();
        b.define_class(
            "com/x/A",
            Some("java/lang/Object"),
            ClassFlags::default(),
            vec![],
        )
        .unwrap();
        let dex = b.build();
        let src = lift_class(&dex, &dex.classes()[0]);
        assert!(!src.contains("extends"), "{src}");
    }
}
