//! The javalang analog: parse decompiled Java source and recover the facts
//! §3.1.2 needs — package, imports, class name, and `extends` target.
//!
//! The parser is a real lexer + recursive-descent header parser: it strips
//! line and block comments, understands string/char literals (so braces and
//! keywords inside strings don't confuse it), skips annotations and
//! generics, and stops after the type header — the study never needs method
//! bodies from source (those come from bytecode).

use std::fmt;

/// Facts recovered from one source file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedClass {
    /// Declared package, if any.
    pub package: Option<String>,
    /// Imported qualified names.
    pub imports: Vec<String>,
    /// Simple class (or interface) name.
    pub class_name: String,
    /// The raw `extends` target as written (simple or qualified).
    pub extends: Option<String>,
    /// Whether the declaration is an interface.
    pub is_interface: bool,
}

impl ParsedClass {
    /// Resolve the `extends` target to a qualified source name using the
    /// imports, the declaring package, and `java.lang` defaults — standard
    /// Java name resolution for the cases decompiled code produces.
    pub fn resolved_superclass(&self) -> Option<String> {
        let target = self.extends.as_deref()?;
        if target.contains('.') {
            return Some(target.to_owned());
        }
        for imp in &self.imports {
            if imp.rsplit('.').next() == Some(target) {
                return Some(imp.clone());
            }
        }
        match &self.package {
            Some(pkg) => Some(format!("{pkg}.{target}")),
            None => Some(target.to_owned()),
        }
    }

    /// Qualified source name of this class.
    pub fn qualified_name(&self) -> String {
        match &self.package {
            Some(pkg) => format!("{pkg}.{}", self.class_name),
            None => self.class_name.clone(),
        }
    }
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input ended before a type declaration was found.
    NoTypeDeclaration,
    /// A declaration was malformed at roughly this byte offset.
    Malformed {
        /// Approximate byte offset.
        at: usize,
        /// What the parser expected.
        expected: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NoTypeDeclaration => write!(f, "no class/interface declaration found"),
            ParseError::Malformed { at, expected } => {
                write!(f, "malformed declaration at byte {at}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

/// Lex the source into identifiers and punctuation, discarding comments,
/// whitespace, and literal contents. Returns `(token, byte_offset)` pairs.
fn lex(src: &str) -> Vec<(Tok, usize)> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            // Line comment.
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            // Block comment.
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            // String literal — skip contents, honoring escapes.
            '"' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += if bytes[i] == b'\\' { 2 } else { 1 };
                }
                i += 1;
                toks.push((Tok::Punct('s'), i)); // literal marker (unused)
            }
            // Char literal.
            '\'' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += if bytes[i] == b'\\' { 2 } else { 1 };
                }
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' || ch == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(src[start..i].to_owned()), start));
            }
            c if c.is_whitespace() => i += 1,
            other => {
                toks.push((Tok::Punct(other), i));
                i += 1;
            }
        }
    }
    toks
}

/// Read a dotted qualified name starting at `pos`; returns (name, new pos).
fn qualified_name(toks: &[(Tok, usize)], mut pos: usize) -> Option<(String, usize)> {
    let mut name = match toks.get(pos) {
        Some((Tok::Ident(id), _)) => id.clone(),
        _ => return None,
    };
    pos += 1;
    while let (Some((Tok::Punct('.'), _)), Some((Tok::Ident(id), _))) =
        (toks.get(pos), toks.get(pos + 1))
    {
        name.push('.');
        name.push_str(id);
        pos += 2;
    }
    Some((name, pos))
}

/// Skip an annotation (`@Name` optionally followed by a balanced argument
/// list) starting at the `@`.
fn skip_annotation(toks: &[(Tok, usize)], mut pos: usize) -> usize {
    pos += 1; // '@'
    if let Some((name, after)) = qualified_name(toks, pos) {
        let _ = name;
        pos = after;
    }
    if let Some((Tok::Punct('('), _)) = toks.get(pos) {
        let mut depth = 0i32;
        while pos < toks.len() {
            match toks[pos].0 {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        pos += 1;
                        break;
                    }
                }
                _ => {}
            }
            pos += 1;
        }
    }
    pos
}

/// Skip a generics argument list starting at `<`.
fn skip_generics(toks: &[(Tok, usize)], mut pos: usize) -> usize {
    let mut depth = 0i32;
    while pos < toks.len() {
        match toks[pos].0 {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    pos += 1;
                    break;
                }
            }
            _ => {}
        }
        pos += 1;
    }
    pos
}

const MODIFIERS: [&str; 8] = [
    "public",
    "private",
    "protected",
    "static",
    "final",
    "abstract",
    "sealed",
    "strictfp",
];

/// Parse one source file.
pub fn parse_source(src: &str) -> Result<ParsedClass, ParseError> {
    let toks = lex(src);
    let mut out = ParsedClass::default();
    let mut pos = 0usize;

    while pos < toks.len() {
        match &toks[pos].0 {
            Tok::Ident(kw) if kw == "package" => {
                let (name, after) =
                    qualified_name(&toks, pos + 1).ok_or(ParseError::Malformed {
                        at: toks[pos].1,
                        expected: "package name",
                    })?;
                out.package = Some(name);
                pos = after;
            }
            Tok::Ident(kw) if kw == "import" => {
                // `import static` and wildcard imports both occur in the wild.
                let mut p = pos + 1;
                if matches!(&toks.get(p), Some((Tok::Ident(s), _)) if s == "static") {
                    p += 1;
                }
                let (mut name, mut after) =
                    qualified_name(&toks, p).ok_or(ParseError::Malformed {
                        at: toks[pos].1,
                        expected: "import name",
                    })?;
                if let (Some((Tok::Punct('.'), _)), Some((Tok::Punct('*'), _))) =
                    (toks.get(after), toks.get(after + 1))
                {
                    name.push_str(".*");
                    after += 2;
                }
                out.imports.push(name);
                pos = after;
            }
            Tok::Punct('@') => pos = skip_annotation(&toks, pos),
            Tok::Ident(kw) if MODIFIERS.contains(&kw.as_str()) => pos += 1,
            Tok::Ident(kw) if kw == "class" || kw == "interface" || kw == "enum" => {
                out.is_interface = kw == "interface";
                let at = toks[pos].1;
                pos += 1;
                let name = match toks.get(pos) {
                    Some((Tok::Ident(id), _)) => id.clone(),
                    _ => {
                        return Err(ParseError::Malformed {
                            at,
                            expected: "type name",
                        })
                    }
                };
                out.class_name = name;
                pos += 1;
                if let Some((Tok::Punct('<'), _)) = toks.get(pos) {
                    pos = skip_generics(&toks, pos);
                }
                // Optional extends / implements clauses before '{'.
                while pos < toks.len() {
                    match &toks[pos].0 {
                        Tok::Ident(kw) if kw == "extends" => {
                            let (sup, after) =
                                qualified_name(&toks, pos + 1).ok_or(ParseError::Malformed {
                                    at: toks[pos].1,
                                    expected: "superclass name",
                                })?;
                            out.extends = Some(sup);
                            pos = after;
                            if let Some((Tok::Punct('<'), _)) = toks.get(pos) {
                                pos = skip_generics(&toks, pos);
                            }
                        }
                        Tok::Ident(kw) if kw == "implements" => {
                            // Skip the interface list.
                            pos += 1;
                            while pos < toks.len() {
                                match &toks[pos].0 {
                                    Tok::Punct('{') => break,
                                    Tok::Ident(k2) if k2 == "extends" => break,
                                    _ => pos += 1,
                                }
                            }
                        }
                        Tok::Punct('{') => return Ok(out),
                        _ => {
                            return Err(ParseError::Malformed {
                                at: toks[pos].1,
                                expected: "extends/implements/{",
                            })
                        }
                    }
                }
                return Ok(out);
            }
            _ => pos += 1,
        }
    }
    Err(ParseError::NoTypeDeclaration)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_class() {
        let src = r#"
            package com.example.app;

            import android.webkit.WebView;

            public class CustomWebView extends WebView {
                void x() { }
            }
        "#;
        let p = parse_source(src).unwrap();
        assert_eq!(p.package.as_deref(), Some("com.example.app"));
        assert_eq!(p.class_name, "CustomWebView");
        assert_eq!(p.extends.as_deref(), Some("WebView"));
        assert_eq!(
            p.resolved_superclass().as_deref(),
            Some("android.webkit.WebView")
        );
        assert_eq!(p.qualified_name(), "com.example.app.CustomWebView");
    }

    #[test]
    fn qualified_extends_wins_over_imports() {
        let src = "package a.b; import c.d.WebView; class X extends e.f.WebView { }";
        let p = parse_source(src).unwrap();
        assert_eq!(p.resolved_superclass().as_deref(), Some("e.f.WebView"));
    }

    #[test]
    fn same_package_resolution() {
        let src = "package a.b; class X extends Base { }";
        let p = parse_source(src).unwrap();
        assert_eq!(p.resolved_superclass().as_deref(), Some("a.b.Base"));
    }

    #[test]
    fn comments_and_strings_ignored() {
        let src = r#"
            // class Fake extends WebView {
            /* class AlsoFake extends WebView { */
            package p;
            public class Real {
                String s = "class InString extends WebView {";
            }
        "#;
        let p = parse_source(src).unwrap();
        assert_eq!(p.class_name, "Real");
        assert_eq!(p.extends, None);
    }

    #[test]
    fn annotations_and_generics_skipped() {
        let src = r#"
            package p;
            @SuppressWarnings("unchecked")
            @Keep
            public final class Holder<T extends Object> extends java.util.AbstractList<T> implements Cloneable {
            }
        "#;
        let p = parse_source(src).unwrap();
        assert_eq!(p.class_name, "Holder");
        assert_eq!(p.extends.as_deref(), Some("java.util.AbstractList"),);
    }

    #[test]
    fn interface_detected() {
        let p = parse_source("package p; interface Callbacks { }").unwrap();
        assert!(p.is_interface);
        assert_eq!(p.class_name, "Callbacks");
    }

    #[test]
    fn static_and_wildcard_imports() {
        let src = "package p; import static java.lang.Math.max; import java.util.*; class A {}";
        let p = parse_source(src).unwrap();
        assert!(p.imports.contains(&"java.lang.Math.max".to_owned()));
        assert!(p.imports.contains(&"java.util.*".to_owned()));
    }

    #[test]
    fn missing_declaration_is_error() {
        assert_eq!(
            parse_source("package p; // nothing else"),
            Err(ParseError::NoTypeDeclaration)
        );
    }

    #[test]
    fn malformed_class_is_error() {
        assert!(matches!(
            parse_source("class { }"),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn parser_never_panics_on_noise() {
        // Exercise with byte noise; thorough fuzzing lives in proptests.
        for s in [
            "",
            "@",
            "class",
            "class X extends",
            "\"unterminated",
            "'c",
            "/*",
        ] {
            let _ = parse_source(s);
        }
    }
}
