//! # wla-decompile — decompiler and Java source parser
//!
//! Step (3) of the paper's pipeline (Figure 1): "decompile each APK (using
//! JADX) and extract the names of classes that extend the WebView class",
//! where the extraction runs a Java source parser (`javalang`) over the
//! decompiled source. Both halves are real here:
//!
//! * [`lifter`] — the JADX analog: lifts SDEX classes to Java-ish source
//!   text (package declaration, imports derived from referenced types,
//!   `extends` clause, method bodies with call statements), including the
//!   cosmetic noise real decompilers emit (header comments, `/* renamed
//!   from */` markers, `@Override` annotations);
//! * [`parser`] — the javalang analog: a lexer + recursive-descent parser
//!   that recovers the package, imports, class name, and `extends` target
//!   from source text, tolerant of comments, strings, annotations, and
//!   generics;
//! * [`subclasses`] — resolves `extends` names against imports and computes
//!   the transitive `extends WebView` closure, the paper's "custom WebView
//!   implementations". Ships two routes: the lifted-source one above (the
//!   paper-faithful oracle) and a dex-direct closure over superclass links
//!   that the pipeline's hot path uses, equivalence-pinned to the oracle.
//!
//! Round-trip property: for every class the lifter emits, the parser must
//! recover exactly the class name, package, and superclass the SDEX declares
//! — enforced by property tests against generated corpora.

pub mod lifter;
pub mod parser;
pub mod subclasses;

pub use lifter::{lift_class, lift_dex, SourceFile};
pub use parser::{parse_source, ParseError, ParsedClass};
pub use subclasses::{
    webview_subclasses, webview_subclasses_dex, webview_subclasses_dex_interned,
    webview_subclasses_interned,
};
