//! Web URI intents and their resolution.
//!
//! "As per Android's documentation, the default browser handles the Web URI
//! intent on Android 12 and later versions, unless there is an app
//! installed that can handle URLs from that specific domain" (§4.2). The
//! IAB apps of Table 8 never raise the intent at all — they intercept the
//! tap in app logic — which is exactly what the classification probe
//! observes.

use wla_manifest::Manifest;
use wla_net::netlog::host_of;

/// A (simplified) Android intent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intent {
    /// Intent action (`android.intent.action.VIEW`).
    pub action: String,
    /// Data URI.
    pub data: String,
}

impl Intent {
    /// A VIEW intent for a web URL.
    pub fn view(url: &str) -> Intent {
        Intent {
            action: wla_manifest::ACTION_VIEW.to_owned(),
            data: url.to_owned(),
        }
    }

    /// Host of the data URI, if it is a web URL.
    pub fn host(&self) -> Option<&str> {
        if self.data.starts_with("http://") || self.data.starts_with("https://") {
            host_of(&self.data)
        } else {
            None
        }
    }
}

/// Where an intent lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntentTarget {
    /// The default browser.
    DefaultBrowser,
    /// A specific installed app (package name) claimed the host via a
    /// verified deep link.
    App(String),
    /// Nothing can handle it.
    Unresolved,
}

/// Resolve a web intent against the installed apps' manifests.
pub fn resolve_intent(intent: &Intent, installed: &[&Manifest]) -> IntentTarget {
    let Some(host) = intent.host() else {
        // Non-web URIs would consult custom schemes; out of scope.
        return IntentTarget::Unresolved;
    };
    for manifest in installed {
        if manifest.handles_web_host(host) {
            return IntentTarget::App(manifest.package.clone());
        }
    }
    IntentTarget::DefaultBrowser
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_manifest::{Component, ComponentKind, IntentFilter};

    fn maps_manifest() -> Manifest {
        let mut m = Manifest::new("com.google.maps");
        m.components.push(Component {
            kind: ComponentKind::Activity,
            class_name: "com/google/maps/DeepLink".into(),
            exported: true,
            intent_filters: vec![IntentFilter {
                actions: vec![wla_manifest::ACTION_VIEW.into()],
                categories: vec![wla_manifest::CATEGORY_BROWSABLE.into()],
                data_schemes: vec!["https".into()],
                data_hosts: vec!["maps.google.com".into()],
            }],
        });
        m
    }

    #[test]
    fn claimed_host_routes_to_app() {
        // "a maps.google.com URL clicked from a social media app will
        // launch the Google Maps app if it is present" (§4.2).
        let maps = maps_manifest();
        let target = resolve_intent(&Intent::view("https://maps.google.com/place/x"), &[&maps]);
        assert_eq!(target, IntentTarget::App("com.google.maps".into()));
    }

    #[test]
    fn unclaimed_host_routes_to_browser() {
        let maps = maps_manifest();
        let target = resolve_intent(&Intent::view("https://example.com/"), &[&maps]);
        assert_eq!(target, IntentTarget::DefaultBrowser);
    }

    #[test]
    fn non_web_uri_unresolved() {
        let target = resolve_intent(&Intent::view("myapp://open"), &[]);
        assert_eq!(target, IntentTarget::Unresolved);
    }

    #[test]
    fn no_installed_apps_routes_to_browser() {
        let target = resolve_intent(&Intent::view("https://example.com/"), &[]);
        assert_eq!(target, IntentTarget::DefaultBrowser);
    }
}
