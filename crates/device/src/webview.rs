//! The WebView runtime.
//!
//! Every public method interposes through the attached [`FridaRecorder`]
//! (method name + arguments) before acting — that is the paper's
//! measurement surface. Pages load either over real loopback HTTP (the
//! controlled page) or from synthetic site content (the top-site crawl);
//! either way the instance's netlog records the main document and every
//! subresource the parsed DOM references, attributable to this instance's
//! source id.

use crate::browser::CookieJar;
use crate::frida::FridaRecorder;
use crate::logcat::Logcat;
use std::net::SocketAddr;
use std::sync::Arc;
use wla_net::netlog::host_of;
use wla_net::{fetch, NetLog, NetLogPhase, Request};
use wla_web::script::{execute, execute_readonly, ScriptEffect, ScriptOutcome};
use wla_web::webapi::DomSession;
use wla_web::{html, Document};

/// WebView settings (the knobs §4.1.1 discusses — Ad SDKs can disable Safe
/// Browsing in a WebView; a CT is always subject to the browser's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebViewSettings {
    /// `setJavaScriptEnabled`.
    pub javascript_enabled: bool,
    /// `setSafeBrowsingEnabled`.
    pub safe_browsing_enabled: bool,
}

impl Default for WebViewSettings {
    fn default() -> Self {
        WebViewSettings {
            javascript_enabled: true,
            safe_browsing_enabled: true,
        }
    }
}

/// Where a page's content comes from.
#[derive(Debug, Clone)]
pub enum PageSource {
    /// Fetch `path` from a real loopback server; the page is *addressed*
    /// as `url` for netlog purposes.
    Http {
        /// Server to fetch from.
        server: SocketAddr,
        /// Request path (e.g. `/page`).
        path: String,
        /// Logical URL of the page.
        url: String,
    },
    /// Synthetic content (top-site model).
    Synthetic {
        /// Logical URL.
        url: String,
        /// Page markup.
        html: String,
        /// Additional requests the page makes beyond DOM-referenced
        /// subresources (XHR endpoints, trackers).
        extra_requests: Vec<String>,
    },
    /// A page parsed once and shared across many visits (the crawl
    /// pipeline visits every site through eleven different IABs; parsing
    /// and subresource resolution happen once per site, not per visit).
    Prepared(Arc<PreparedPage>),
}

impl PageSource {
    /// Logical URL of the page.
    pub fn url(&self) -> &str {
        match self {
            PageSource::Http { url, .. } | PageSource::Synthetic { url, .. } => url,
            PageSource::Prepared(page) => &page.url,
        }
    }
}

/// A page whose parse, subresource resolution, and URL strings are
/// computed once and shared (`Arc`) across visits. Loading a prepared
/// page records exactly the netlog event sequence the equivalent
/// [`PageSource::Synthetic`] load would — same URLs, same order, same
/// clock steps — but without re-parsing or re-allocating any of it.
#[derive(Debug, Clone)]
pub struct PreparedPage {
    /// Logical URL.
    pub url: Arc<str>,
    /// Parsed DOM prototype; visits that run scripts clone it so DOM
    /// mutations stay visit-local.
    pub doc: Arc<Document>,
    /// Resolved subresource URLs (DOM-referenced first, then extras), in
    /// the order a synthetic load would fetch them.
    pub sub_urls: Vec<Arc<str>>,
    /// Cached intrinsic read-only outcomes (see [`ReadOnlyCache`]).
    pub readonly: ReadOnlyCache,
}

/// Lazily computed outcomes of the intrinsic (payload-free) read-only
/// effects — pure functions of the shared prototype DOM, so the first
/// visit's computation serves every later visit to the page.
#[derive(Debug, Clone, Default)]
pub struct ReadOnlyCache {
    scan: std::sync::OnceLock<ScriptOutcome>,
    tag_counts: std::sync::OnceLock<ScriptOutcome>,
    simhash: std::sync::OnceLock<ScriptOutcome>,
}

impl PreparedPage {
    /// Parse `markup` once and precompute the full fetch list.
    pub fn from_markup(url: &str, markup: &str, extra_requests: &[String]) -> PreparedPage {
        PreparedPage::from_document(url, html::parse(markup), extra_requests)
    }

    /// Wrap an already-built document (a corpus generator emitting DOM
    /// directly) and precompute the full fetch list.
    pub fn from_document(url: &str, doc: Document, extra_requests: &[String]) -> PreparedPage {
        let page_host = host_of(url).unwrap_or("localhost");
        let mut sub_urls: Vec<Arc<str>> = collect_subresource_urls(&doc, page_host)
            .into_iter()
            .map(Arc::from)
            .collect();
        sub_urls.extend(extra_requests.iter().map(|u| Arc::from(u.as_str())));
        PreparedPage {
            url: Arc::from(url),
            doc: Arc::new(doc),
            sub_urls,
            readonly: ReadOnlyCache::default(),
        }
    }

    /// Run a read-only effect against the shared prototype, caching the
    /// intrinsic ones so each page computes them at most once.
    fn readonly_outcome(&self, effect: &ScriptEffect) -> Option<ScriptOutcome> {
        let slot = match effect {
            ScriptEffect::ReadOnlyScan => &self.readonly.scan,
            ScriptEffect::DomTagCounts => &self.readonly.tag_counts,
            ScriptEffect::SimHashPage => &self.readonly.simhash,
            _ => return execute_readonly(effect, &self.doc),
        };
        Some(
            slot.get_or_init(|| {
                execute_readonly(effect, &self.doc).expect("intrinsic effects are read-only")
            })
            .clone(),
        )
    }
}

/// Subresource URLs referenced by a parsed DOM, resolved against the page
/// host — the fetch list a WebView issues after the main document.
pub fn collect_subresource_urls(doc: &Document, page_host: &str) -> Vec<String> {
    let mut sub_urls = Vec::new();
    for node in doc.walk() {
        let attr = match doc.tag(node) {
            Some("script") | Some("img") | Some("iframe") => doc.get_attr(node, "src"),
            Some("link") => doc.get_attr(node, "href"),
            _ => None,
        };
        if let Some(raw) = attr {
            sub_urls.push(resolve_url(raw, page_host));
        }
    }
    sub_urls
}

/// One WebView instance inside an app.
#[derive(Debug)]
pub struct WebViewInstance {
    /// Netlog source id of this instance.
    pub source_id: u32,
    /// Owning app package (sent as `X-Requested-With`, §5).
    pub app_package: String,
    /// Settings.
    pub settings: WebViewSettings,
    /// This WebView's own cookie jar — *not* shared with the browser,
    /// which is why sessions don't persist (Table 1).
    pub cookies: CookieJar,
    recorder: FridaRecorder,
    netlog: NetLog,
    logcat: Logcat,
    bridges: Vec<String>,
    dom: PageDom,
    current_url: Option<Arc<str>>,
    reporter: Option<SocketAddr>,
}

/// DOM state of the instance. Prepared pages stay `Pending` (a shared,
/// immutable prototype) until a script or bridge actually needs the DOM,
/// at which point the prototype is cloned into a visit-local session —
/// script-free visits never pay for a DOM copy.
#[derive(Debug)]
enum PageDom {
    /// Nothing loaded.
    None,
    /// Prepared page loaded; session not yet materialized.
    Pending(Arc<PreparedPage>),
    /// Materialized, visit-local instrumented session.
    Live(DomSession),
}

impl WebViewInstance {
    /// Create an instance wired to the device's recorder/netlog/logcat.
    pub fn new(
        source_id: u32,
        app_package: &str,
        recorder: FridaRecorder,
        netlog: NetLog,
        logcat: Logcat,
    ) -> WebViewInstance {
        WebViewInstance {
            source_id,
            app_package: app_package.to_owned(),
            settings: WebViewSettings::default(),
            cookies: CookieJar::new(),
            recorder,
            netlog,
            logcat,
            bridges: Vec::new(),
            dom: PageDom::None,
            current_url: None,
            reporter: None,
        }
    }

    /// Attach a measurement server: Web-API calls made by injected scripts
    /// will beacon to it over real HTTP.
    pub fn with_reporter(mut self, server: SocketAddr) -> WebViewInstance {
        self.reporter = Some(server);
        self
    }

    /// Exposed JS bridge names.
    pub fn bridges(&self) -> &[String] {
        &self.bridges
    }

    /// The instrumented DOM session of the loaded page (`None` until a
    /// page is loaded; prepared pages materialize on first mutable use).
    pub fn session(&self) -> Option<&DomSession> {
        match &self.dom {
            PageDom::Live(session) => Some(session),
            _ => None,
        }
    }

    /// Mutable session access (for assertions and follow-up effects).
    /// Materializes a pending prepared page into a visit-local session.
    pub fn session_mut(&mut self) -> Option<&mut DomSession> {
        if let PageDom::Pending(page) = &self.dom {
            let doc = Document::clone(&page.doc);
            self.dom = PageDom::Live(self.make_session(doc));
        }
        match &mut self.dom {
            PageDom::Live(session) => Some(session),
            _ => None,
        }
    }

    fn make_session(&self, doc: Document) -> DomSession {
        match self.reporter {
            Some(addr) => DomSession::with_reporter(doc, addr, &self.app_package),
            None => DomSession::new(doc),
        }
    }

    /// Currently loaded URL.
    pub fn current_url(&self) -> Option<&str> {
        self.current_url.as_deref()
    }

    /// `addJavascriptInterface` — expose a JS bridge.
    pub fn add_javascript_interface(&mut self, object_class: &str, name: &str) {
        self.recorder
            .record("addJavascriptInterface", &[object_class, name]);
        self.logcat
            .info("WebView", &format!("bridge exposed: {name}"));
        self.bridges.push(name.to_owned());
    }

    /// `removeJavascriptInterface`.
    pub fn remove_javascript_interface(&mut self, name: &str) {
        self.recorder.record("removeJavascriptInterface", &[name]);
        self.bridges.retain(|b| b != name);
    }

    /// `loadUrl` with a page source. Records the hook, fetches/parses the
    /// content, logs the main document and every subresource.
    pub fn load(&mut self, source: PageSource) {
        let url: Arc<str> = match &source {
            PageSource::Prepared(page) => page.url.clone(),
            other => Arc::from(other.url()),
        };
        self.recorder.record("loadUrl", &[&url]);
        self.logcat
            .info("WebView", &format!("loading {url} in {}", self.app_package));
        self.netlog
            .record_shared(self.source_id, url.clone(), NetLogPhase::RequestSent);

        if let PageSource::Prepared(page) = &source {
            // Fast path: the parse, subresource resolution, and URL
            // strings were computed once for the site; replay them.
            self.netlog
                .record_shared(self.source_id, url.clone(), NetLogPhase::ResponseReceived);
            self.netlog
                .record_request_pairs(self.source_id, &page.sub_urls, 2);
            self.dom = PageDom::Pending(page.clone());
            self.current_url = Some(url);
            return;
        }

        let (doc, extra) = match &source {
            PageSource::Http { server, path, .. } => {
                let request =
                    Request::get(path.clone()).with_header("X-Requested-With", &self.app_package);
                match fetch(*server, request) {
                    Ok(resp) => {
                        self.netlog.record_shared(
                            self.source_id,
                            url.clone(),
                            NetLogPhase::ResponseReceived,
                        );
                        let body = String::from_utf8_lossy(&resp.body).into_owned();
                        (html::parse(&body), Vec::new())
                    }
                    Err(e) => {
                        self.netlog
                            .record_shared(self.source_id, url.clone(), NetLogPhase::Failed);
                        self.logcat
                            .info("WebView", &format!("load failed for {url}: {e}"));
                        (Document::new(), Vec::new())
                    }
                }
            }
            PageSource::Synthetic {
                html: markup,
                extra_requests,
                ..
            } => {
                self.netlog.record_shared(
                    self.source_id,
                    url.clone(),
                    NetLogPhase::ResponseReceived,
                );
                (html::parse(markup), extra_requests.clone())
            }
            PageSource::Prepared(_) => unreachable!("handled above"),
        };

        // Subresources referenced by the DOM.
        let page_host = host_of(&url).unwrap_or("localhost");
        let mut sub_urls = collect_subresource_urls(&doc, page_host);
        sub_urls.extend(extra);
        for sub in sub_urls {
            self.netlog.advance_clock(2);
            self.netlog
                .record(self.source_id, &sub, NetLogPhase::RequestSent);
            self.netlog
                .record(self.source_id, &sub, NetLogPhase::ResponseReceived);
        }

        self.dom = PageDom::Live(self.make_session(doc));
        self.current_url = Some(url);
    }

    /// `evaluateJavascript` — inject and run a script effect.
    /// Returns `None` when JavaScript is disabled or no page is loaded.
    pub fn evaluate_javascript(&mut self, effect: &ScriptEffect) -> Option<ScriptOutcome> {
        self.recorder
            .record("evaluateJavascript", &[&effect_js(effect)]);
        self.run_effect(effect)
    }

    /// `loadUrl("javascript:…")` — the other injection route (§3.2.2).
    pub fn load_javascript_url(&mut self, effect: &ScriptEffect) -> Option<ScriptOutcome> {
        self.recorder
            .record("loadUrl", &[&format!("javascript:{}", effect_js(effect))]);
        self.run_effect(effect)
    }

    fn run_effect(&mut self, effect: &ScriptEffect) -> Option<ScriptOutcome> {
        if !self.settings.javascript_enabled {
            self.logcat
                .info("WebView", "JS disabled; injection ignored");
            return None;
        }
        // A read-only effect on a still-pending prepared page runs against
        // the shared prototype (cached for the intrinsic effects) — the
        // visit never pays for a DOM copy.
        if let PageDom::Pending(page) = &self.dom {
            if let Some(outcome) = page.readonly_outcome(effect) {
                return Some(outcome);
            }
        }
        let session = self.session_mut()?;
        Some(execute(effect, session))
    }
}

/// Resolve a (possibly relative) resource URL against the page host.
fn resolve_url(raw: &str, page_host: &str) -> String {
    if raw.starts_with("http://") || raw.starts_with("https://") {
        raw.to_owned()
    } else if let Some(rest) = raw.strip_prefix("//") {
        format!("https://{rest}")
    } else if raw.starts_with('/') {
        format!("https://{page_host}{raw}")
    } else {
        format!("https://{page_host}/{raw}")
    }
}

/// Compact pseudo-JS rendering of an effect — what the Frida hook sees as
/// the injected argument. Borrowed for the parameter-free effects so the
/// per-visit injection hooks don't allocate.
pub fn effect_js(effect: &ScriptEffect) -> std::borrow::Cow<'static, str> {
    match effect {
        ScriptEffect::InsertScriptElement { src, element_id } => format!(
            "(function(d,s,id){{var js,fjs=d.getElementsByTagName(s)[0];if(d.getElementById(id)){{return;}}js=d.createElement(s);js.id=id;js.src=\"{src}\";fjs.parentNode.insertBefore(js,fjs);}}(document,'script','{element_id}'))"
        )
        .into(),
        ScriptEffect::DomTagCounts => {
            "(function(){var c={};document.querySelectorAll('*')…return c;})()".into()
        }
        ScriptEffect::SimHashPage => {
            "(function(){/* cloaker-catcher simhash: text+dom, text, dom */})()".into()
        }
        ScriptEffect::LogPerformance { .. } => {
            "(function(){console.log('perf', performance.timing)})()".into()
        }
        ScriptEffect::AdProbe(p) => format!(
            "(function(){{var ad={{\"adUnit\":\"{}\",\"src\":\"{}\",\"width\":{},\"height\":{}}};/* obfuscated */}})()",
            p.ad_unit, p.source_host, p.width, p.height
        )
        .into(),
        ScriptEffect::ReadOnlyScan => {
            "(function(){document.querySelectorAll('ins,.adsbygoogle')})()".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_net::MeasurementServer;
    use wla_web::testpage::test_page_html;

    fn instance() -> WebViewInstance {
        WebViewInstance::new(
            1,
            "com.example.app",
            FridaRecorder::new(),
            NetLog::new(),
            Logcat::new(),
        )
    }

    #[test]
    fn load_real_page_over_http() {
        let server = MeasurementServer::start(test_page_html()).unwrap();
        let recorder = FridaRecorder::new();
        let netlog = NetLog::new();
        let mut wv = WebViewInstance::new(
            7,
            "com.facebook.katana",
            recorder.clone(),
            netlog.clone(),
            Logcat::new(),
        )
        .with_reporter(server.addr());
        wv.load(PageSource::Http {
            server: server.addr(),
            path: "/page".into(),
            url: "https://measurement.example/page".into(),
        });
        assert!(wv.session().is_some());
        // Hook saw the load.
        assert_eq!(recorder.calls_to("loadUrl").len(), 1);
        // Netlog attributed the main document + subresources to source 7.
        let events = netlog.events_for(7);
        assert!(events.len() >= 3, "{events:?}");
        // DOM-referenced subresources appear (page.js etc.).
        assert!(events.iter().any(|e| e.url.contains("page.js")));
    }

    #[test]
    fn synthetic_page_logs_extras() {
        let netlog = NetLog::new();
        let mut wv = WebViewInstance::new(
            2,
            "kik.android",
            FridaRecorder::new(),
            netlog.clone(),
            Logcat::new(),
        );
        wv.load(PageSource::Synthetic {
            url: "https://news.example.com/".into(),
            html: "<img src=\"/hero.png\"><script src=\"https://cdn.site/app.js\"></script>".into(),
            extra_requests: vec!["https://ads.mopub.com/bid".into()],
        });
        let hosts = netlog.distinct_hosts_for(2);
        assert!(hosts.contains("news.example.com"));
        assert!(hosts.contains("cdn.site"));
        assert!(hosts.contains("ads.mopub.com"));
    }

    #[test]
    fn injection_requires_js_enabled() {
        let mut wv = instance();
        wv.load(PageSource::Synthetic {
            url: "https://x.example/".into(),
            html: "<p>hi</p>".into(),
            extra_requests: vec![],
        });
        wv.settings.javascript_enabled = false;
        assert!(wv
            .evaluate_javascript(&ScriptEffect::DomTagCounts)
            .is_none());
        wv.settings.javascript_enabled = true;
        assert!(wv
            .evaluate_javascript(&ScriptEffect::DomTagCounts)
            .is_some());
    }

    #[test]
    fn injection_without_page_is_none() {
        let mut wv = instance();
        assert!(wv
            .evaluate_javascript(&ScriptEffect::DomTagCounts)
            .is_none());
    }

    #[test]
    fn bridges_are_recorded_and_tracked() {
        let recorder = FridaRecorder::new();
        let mut wv = WebViewInstance::new(
            3,
            "in.mohalla.video",
            recorder.clone(),
            NetLog::new(),
            Logcat::new(),
        );
        wv.add_javascript_interface("com.google.ads.JsBridge", "googleAdsJsInterface");
        assert_eq!(wv.bridges(), ["googleAdsJsInterface"]);
        wv.remove_javascript_interface("googleAdsJsInterface");
        assert!(wv.bridges().is_empty());
        assert_eq!(recorder.calls_to("addJavascriptInterface").len(), 1);
        assert_eq!(recorder.calls_to("removeJavascriptInterface").len(), 1);
    }

    #[test]
    fn javascript_url_injection_recorded_as_loadurl() {
        let recorder = FridaRecorder::new();
        let mut wv =
            WebViewInstance::new(4, "com.app", recorder.clone(), NetLog::new(), Logcat::new());
        wv.load(PageSource::Synthetic {
            url: "https://x.example/".into(),
            html: "<p>t</p>".into(),
            extra_requests: vec![],
        });
        wv.load_javascript_url(&ScriptEffect::DomTagCounts);
        let loads = recorder.calls_to("loadUrl");
        assert_eq!(loads.len(), 2);
        assert!(loads[1].args[0].starts_with("javascript:"));
        assert!(recorder.interacts_beyond_loading());
    }

    #[test]
    fn url_resolution() {
        assert_eq!(resolve_url("https://a/b", "h"), "https://a/b");
        assert_eq!(resolve_url("//cdn.x/y", "h"), "https://cdn.x/y");
        assert_eq!(
            resolve_url("/p.png", "host.example"),
            "https://host.example/p.png"
        );
        assert_eq!(
            resolve_url("r.js", "host.example"),
            "https://host.example/r.js"
        );
    }
}
