//! In-App Browser behaviour profiles — Table 8 as executable models.
//!
//! For each of the ten apps whose WebView-based IAB the paper instruments,
//! the profile lists the app's redirector (if any), the JS bridges it
//! injects, the script effects it runs, and the network endpoints its IAB
//! contacts as a function of page richness. [`open_in_iab`] drives a
//! profile through a page visit on the simulated device; everything the
//! paper measured (hooked WebView calls, Web-API beacons, netlog
//! endpoints) falls out of running it.

use crate::frida::FridaRecorder;
use crate::logcat::Logcat;
use crate::webview::{PageSource, WebViewInstance};
use wla_net::{NetLog, NetLogPhase};
use wla_web::script::{AdPayload, ScriptEffect, ScriptOutcome};

/// One endpoint the IAB contacts on its own initiative, gated on how
/// content-rich the visited page is (0 = always, 10 = only the richest).
/// A profile's rules are kept ordered by `min_richness`, so the set that
/// fires for a given page is always a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointRule {
    /// Host contacted.
    pub host: &'static str,
    /// Minimum page richness (0–10) for the contact to fire.
    pub min_richness: u8,
}

/// Behaviour profile of one app's IAB.
#[derive(Debug, Clone)]
pub struct IabProfile {
    /// Display name.
    pub app_name: &'static str,
    /// Package name.
    pub package: &'static str,
    /// UGC surface the link was tapped on (Table 8's "WebView Via").
    pub surface: &'static str,
    /// Redirector host+path the tap routes through, if any.
    pub redirector: Option<&'static str>,
    /// JS bridge names injected via `addJavascriptInterface`.
    pub bridges: Vec<&'static str>,
    /// Whether the bridge class name is obfuscated (Pinterest).
    pub obfuscated_bridge: bool,
    /// Script effects injected after page load.
    pub scripts: Vec<ScriptEffect>,
    /// IAB-initiated endpoint contacts, ordered by `min_richness`.
    pub endpoint_rules: Vec<EndpointRule>,
    /// Contact URL per endpoint rule, derived once by
    /// [`IabProfile::with_collect_urls`] and shared across visits so the
    /// hot crawl path records them without allocating.
    pub collect_urls: Vec<std::sync::Arc<str>>,
}

impl IabProfile {
    /// Does the profile inject any HTML/JS?
    pub fn injects_js(&self) -> bool {
        !self.scripts.is_empty()
    }

    /// Does the profile inject any JS bridge?
    pub fn injects_bridge(&self) -> bool {
        !self.bridges.is_empty()
    }

    /// Derive the shared per-rule contact URLs (and check the richness
    /// ordering the prefix-firing fast path relies on).
    pub fn with_collect_urls(mut self) -> IabProfile {
        debug_assert!(
            self.endpoint_rules
                .windows(2)
                .all(|w| w[0].min_richness <= w[1].min_richness),
            "{}: endpoint rules must be ordered by min_richness",
            self.app_name
        );
        self.collect_urls = self
            .endpoint_rules
            .iter()
            .map(|rule| format!("https://{}/collect", rule.host).into())
            .collect();
        self
    }
}

/// The zero-size Google Ads payload Moj/Chingari/Kik inject on pages with
/// no compatible ad view.
fn google_ads_probe() -> ScriptEffect {
    ScriptEffect::AdProbe(AdPayload {
        ad_unit: "/21775744923/example/fixed".into(),
        source_host: "googleads.g.doubleclick.net".into(),
        width: 0,
        height: 0,
    })
}

/// All ten WebView-IAB profiles of Table 8.
pub fn all_profiles() -> Vec<IabProfile> {
    let meta_scripts = vec![
        ScriptEffect::InsertScriptElement {
            src: "//connect.facebook.net/en_US/iab.autofill.enhanced.js".into(),
            element_id: "instagram-autofill-sdk".into(),
        },
        ScriptEffect::DomTagCounts,
        ScriptEffect::SimHashPage,
        ScriptEffect::LogPerformance {
            dom_content_loaded_ms: 340,
        },
    ];
    let meta_bridges = vec![
        "fbpayIAWBridge",
        "metaCheckoutIAWBridge",
        "_AutofillExtensions",
    ];

    vec![
        IabProfile {
            app_name: "Facebook",
            package: "com.facebook.katana",
            surface: "Post",
            redirector: Some("lm.facebook.com/l.php"),
            bridges: meta_bridges.clone(),
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            scripts: meta_scripts.clone(),
            endpoint_rules: vec![],
        },
        IabProfile {
            app_name: "Instagram",
            package: "com.instagram.android",
            surface: "DM",
            redirector: Some("l.instagram.com"),
            bridges: meta_bridges,
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            scripts: meta_scripts,
            endpoint_rules: vec![],
        },
        IabProfile {
            app_name: "Snapchat",
            package: "com.snapchat.android",
            surface: "Story",
            redirector: None,
            bridges: vec![],
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            scripts: vec![],
            endpoint_rules: vec![],
        },
        IabProfile {
            app_name: "Twitter",
            package: "com.twitter.android",
            surface: "DM",
            redirector: Some("t.co"),
            bridges: vec![],
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            scripts: vec![],
            endpoint_rules: vec![],
        },
        IabProfile {
            app_name: "LinkedIn",
            package: "com.linkedin.android",
            surface: "Post",
            redirector: None,
            bridges: vec![],
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            // The Cedexis Radar client runs as injected JS interacting with
            // the radar API; its network side is the endpoint rules below.
            scripts: vec![ScriptEffect::ReadOnlyScan],
            endpoint_rules: vec![
                EndpointRule {
                    host: "radar.cedexis.com",
                    min_richness: 0,
                },
                EndpointRule {
                    host: "cedexis-radar.net",
                    min_richness: 0,
                },
                EndpointRule {
                    host: "licdn.com",
                    min_richness: 2,
                },
                EndpointRule {
                    host: "perf.linkedin.com",
                    min_richness: 4,
                },
                EndpointRule {
                    host: "px.ads.linkedin.com",
                    min_richness: 5,
                },
                EndpointRule {
                    host: "api.linkedin.com",
                    min_richness: 7,
                },
                EndpointRule {
                    host: "www.linkedin.com",
                    min_richness: 8,
                },
            ],
        },
        IabProfile {
            app_name: "Pinterest",
            package: "com.pinterest",
            surface: "DM",
            redirector: None,
            bridges: vec!["a"],
            collect_urls: Vec::new(),
            obfuscated_bridge: true,
            scripts: vec![],
            endpoint_rules: vec![],
        },
        IabProfile {
            app_name: "Moj",
            package: "in.mohalla.video",
            surface: "Profile",
            redirector: None,
            bridges: vec!["googleAdsJsInterface"],
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            scripts: vec![google_ads_probe()],
            endpoint_rules: vec![
                EndpointRule {
                    host: "googleads.g.doubleclick.net",
                    min_richness: 0,
                },
                EndpointRule {
                    host: "pagead2.googlesyndication.com",
                    min_richness: 3,
                },
            ],
        },
        IabProfile {
            app_name: "Chingari",
            package: "io.chingari.app",
            surface: "Bio",
            redirector: None,
            bridges: vec!["googleAdsJsInterface"],
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            scripts: vec![google_ads_probe()],
            endpoint_rules: vec![
                EndpointRule {
                    host: "googleads.g.doubleclick.net",
                    min_richness: 0,
                },
                EndpointRule {
                    host: "pagead2.googlesyndication.com",
                    min_richness: 3,
                },
            ],
        },
        IabProfile {
            app_name: "Reddit",
            package: "com.reddit.frontpage",
            surface: "DM",
            redirector: None,
            bridges: vec![],
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            scripts: vec![],
            endpoint_rules: vec![],
        },
        IabProfile {
            app_name: "Kik",
            package: "kik.android",
            surface: "DM",
            redirector: None,
            bridges: vec!["googleAdsJsInterface"],
            collect_urls: Vec::new(),
            obfuscated_bridge: false,
            scripts: vec![google_ads_probe(), ScriptEffect::ReadOnlyScan],
            endpoint_rules: vec![
                EndpointRule {
                    host: "ads.mopub.com",
                    min_richness: 0,
                },
                EndpointRule {
                    host: "supply.inmobicdn.net",
                    min_richness: 2,
                },
                EndpointRule {
                    host: "googleads.g.doubleclick.net",
                    min_richness: 3,
                },
                EndpointRule {
                    host: "cloudfront.net",
                    min_richness: 3,
                },
                EndpointRule {
                    host: "adnxs.com",
                    min_richness: 4,
                },
                EndpointRule {
                    host: "criteo.com",
                    min_richness: 4,
                },
                EndpointRule {
                    host: "rubiconproject.com",
                    min_richness: 5,
                },
                EndpointRule {
                    host: "openx.net",
                    min_richness: 5,
                },
                EndpointRule {
                    host: "pubmatic.com",
                    min_richness: 6,
                },
                EndpointRule {
                    host: "adsrvr.org",
                    min_richness: 6,
                },
                EndpointRule {
                    host: "casalemedia.com",
                    min_richness: 7,
                },
                EndpointRule {
                    host: "smartadserver.com",
                    min_richness: 7,
                },
                EndpointRule {
                    host: "taboola.com",
                    min_richness: 7,
                },
                EndpointRule {
                    host: "outbrain.com",
                    min_richness: 8,
                },
                EndpointRule {
                    host: "amazon-adsystem.com",
                    min_richness: 8,
                },
                EndpointRule {
                    host: "yieldmo.com",
                    min_richness: 8,
                },
                EndpointRule {
                    host: "sharethrough.com",
                    min_richness: 9,
                },
                EndpointRule {
                    host: "triplelift.com",
                    min_richness: 9,
                },
            ],
        },
    ]
    .into_iter()
    .map(IabProfile::with_collect_urls)
    .collect()
}

/// Profile lookup by package name.
pub fn profile_for(package: &str) -> Option<IabProfile> {
    all_profiles().into_iter().find(|p| p.package == package)
}

/// Result of driving a profile through one page visit.
#[derive(Debug)]
pub struct IabVisit {
    /// The WebView instance after the visit (session, bridges, cookies).
    pub webview: WebViewInstance,
    /// Script outcomes in injection order.
    pub outcomes: Vec<ScriptOutcome>,
    /// The URL the user asked for.
    pub requested_url: String,
    /// Redirector URL actually loaded first, if the app uses one.
    pub redirector_url: Option<String>,
}

/// Open `source` in the app's WebView-based IAB: redirector hop, page
/// load, bridge injection, script injection, and IAB-initiated endpoint
/// contacts — all recorded through the supplied recorder/netlog/logcat.
#[allow(clippy::too_many_arguments)] // mirrors the device wiring: every handle is distinct
pub fn open_in_iab(
    profile: &IabProfile,
    source_id: u32,
    source: PageSource,
    richness: u8,
    recorder: FridaRecorder,
    netlog: NetLog,
    logcat: Logcat,
    reporter: Option<std::net::SocketAddr>,
) -> IabVisit {
    let requested_url = source.url().to_owned();
    logcat.info(
        "ActivityManager",
        &format!(
            "START u0 {{cmp={}/.IabActivity}} (no VIEW intent raised)",
            profile.package
        ),
    );

    let mut webview = WebViewInstance::new(
        source_id,
        profile.package,
        recorder,
        netlog.clone(),
        logcat.clone(),
    );
    if let Some(addr) = reporter {
        webview = webview.with_reporter(addr);
    }

    // Redirector hop: the app routes the tap through its own tracker URL
    // ("which could be exploited for tracking the user", §4.2.1).
    let redirector_url = profile.redirector.map(|r| {
        let tracked = format!(
            "https://{r}?u={}&h=wla{:08x}",
            wla_net::http::form_encode(&requested_url),
            source_id.wrapping_mul(0x9E37_79B9)
        );
        netlog.record(source_id, &tracked, NetLogPhase::RequestSent);
        netlog.record(source_id, &tracked, NetLogPhase::ResponseReceived);
        tracked
    });

    webview.load(source);

    // Bridges first (apps inject them before page scripts run).
    for bridge in &profile.bridges {
        let class = if profile.obfuscated_bridge {
            "a.b.c".to_owned()
        } else {
            format!("com.{}.bridge.{bridge}", profile.app_name.to_lowercase())
        };
        webview.add_javascript_interface(&class, bridge);
    }

    // Script injections.
    let mut outcomes = Vec::new();
    for effect in &profile.scripts {
        if let Some(outcome) = webview.evaluate_javascript(effect) {
            // An inserted script element is fetched by the page.
            if let ScriptOutcome::ScriptInserted {
                src,
                already_present: false,
            } = &outcome
            {
                let url = if src.starts_with("//") {
                    format!("https:{src}")
                } else {
                    src.clone()
                };
                netlog.record(source_id, &url, NetLogPhase::RequestSent);
                netlog.record(source_id, &url, NetLogPhase::ResponseReceived);
            }
            outcomes.push(outcome);
        }
    }

    // IAB-initiated endpoint contacts, richness-gated. Rules are ordered
    // by `min_richness`, so the firing set is a prefix; profiles built by
    // [`IabProfile::with_collect_urls`] record it without allocating.
    let fired = profile
        .endpoint_rules
        .partition_point(|rule| richness >= rule.min_richness);
    if profile.collect_urls.len() == profile.endpoint_rules.len() {
        netlog.record_request_pairs(source_id, &profile.collect_urls[..fired], 1);
    } else {
        // Hand-built profile without derived URLs: same records, per-rule.
        for rule in &profile.endpoint_rules[..fired] {
            let url = format!("https://{}/collect", rule.host);
            netlog.advance_clock(1);
            netlog.record(source_id, &url, NetLogPhase::RequestSent);
            netlog.record(source_id, &url, NetLogPhase::ResponseReceived);
        }
    }

    IabVisit {
        webview,
        outcomes,
        requested_url,
        redirector_url,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_web::testpage::test_page_html;

    fn visit(package: &str, richness: u8) -> (IabVisit, NetLog, FridaRecorder) {
        let profile = profile_for(package).expect("profile");
        let netlog = NetLog::new();
        let recorder = FridaRecorder::new();
        let visit = open_in_iab(
            &profile,
            42,
            PageSource::Synthetic {
                url: "https://example.com/".into(),
                html: test_page_html(),
                extra_requests: vec![],
            },
            richness,
            recorder.clone(),
            netlog.clone(),
            Logcat::new(),
            None,
        );
        (visit, netlog, recorder)
    }

    #[test]
    fn endpoint_rules_are_richness_ordered_with_derived_urls() {
        for p in all_profiles() {
            assert!(
                p.endpoint_rules
                    .windows(2)
                    .all(|w| w[0].min_richness <= w[1].min_richness),
                "{}",
                p.app_name
            );
            assert_eq!(p.collect_urls.len(), p.endpoint_rules.len());
            for (url, rule) in p.collect_urls.iter().zip(&p.endpoint_rules) {
                assert_eq!(url.as_ref(), format!("https://{}/collect", rule.host));
            }
        }
    }

    #[test]
    fn ten_profiles_match_table8() {
        let profiles = all_profiles();
        assert_eq!(profiles.len(), 10);
        let get = |n: &str| profiles.iter().find(|p| p.app_name == n).unwrap();
        // No-injection apps.
        for app in ["Snapchat", "Twitter", "Reddit"] {
            let p = get(app);
            assert!(!p.injects_js() && !p.injects_bridge(), "{app}");
        }
        // Pinterest: obfuscated bridge, no JS.
        let pinterest = get("Pinterest");
        assert!(pinterest.injects_bridge() && pinterest.obfuscated_bridge);
        assert!(!pinterest.injects_js());
        // Meta apps inject both.
        for app in ["Facebook", "Instagram"] {
            let p = get(app);
            assert!(p.injects_js() && p.injects_bridge(), "{app}");
            assert!(p.bridges.contains(&"fbpayIAWBridge"));
        }
        // Ad-injecting apps share the Google Ads bridge.
        for app in ["Moj", "Chingari", "Kik"] {
            assert!(get(app).bridges.contains(&"googleAdsJsInterface"), "{app}");
        }
    }

    #[test]
    fn facebook_visit_produces_meta_behaviours() {
        let (visit, netlog, recorder) = visit("com.facebook.katana", 0);
        // Redirector hop observed.
        let red = visit.redirector_url.expect("redirector");
        assert!(red.contains("lm.facebook.com"));
        assert!(red.contains("u=https%3A%2F%2Fexample.com"));
        // All three bridges exposed.
        assert_eq!(visit.webview.bridges().len(), 3);
        // Four script outcomes; autofill script fetched from Meta's CDN.
        assert_eq!(visit.outcomes.len(), 4);
        assert!(netlog
            .distinct_hosts_for(42)
            .contains("connect.facebook.net"));
        // Frida saw injections beyond loading.
        assert!(recorder.interacts_beyond_loading());
    }

    #[test]
    fn snapchat_visit_is_clean() {
        let (visit, netlog, recorder) = visit("com.snapchat.android", 10);
        assert!(visit.outcomes.is_empty());
        assert!(visit.webview.bridges().is_empty());
        assert!(visit.redirector_url.is_none());
        // Only the page and its own subresources — no IAB endpoints.
        for host in netlog.distinct_hosts_for(42) {
            assert!(
                host == "example.com"
                    || host.ends_with(".example.com")
                    || host == "cdn.example"
                    || host.contains("localhost"),
                "unexpected host {host}"
            );
        }
        // Plain loading only.
        assert!(!recorder.interacts_beyond_loading());
    }

    #[test]
    fn kik_endpoints_scale_with_richness() {
        let (_, netlog_poor, _) = visit("kik.android", 0);
        let poor = netlog_poor.distinct_hosts_for(42).len();
        let (_, netlog_rich, _) = visit("kik.android", 10);
        let rich = netlog_rich.distinct_hosts_for(42).len();
        assert!(rich > poor + 10, "poor={poor} rich={rich}");
        assert!(netlog_rich.distinct_hosts_for(42).contains("ads.mopub.com"));
        assert!(netlog_rich
            .distinct_hosts_for(42)
            .contains("supply.inmobicdn.net"));
    }

    #[test]
    fn moj_ad_probe_reports_no_ad_view() {
        let (visit, _, _) = visit("in.mohalla.video", 0);
        assert_eq!(visit.outcomes.len(), 1);
        assert_eq!(
            visit.outcomes[0],
            ScriptOutcome::AdResult {
                displayed: false,
                not_visible_reason: Some("noAdView".into()),
            }
        );
    }

    #[test]
    fn linkedin_contacts_cedexis_even_on_plain_pages() {
        let (_, netlog, _) = visit("com.linkedin.android", 0);
        let hosts = netlog.distinct_hosts_for(42);
        assert!(hosts.contains("radar.cedexis.com"));
        assert!(hosts.contains("cedexis-radar.net"));
        assert!(!hosts.contains("px.ads.linkedin.com")); // needs rich pages
    }
}
