//! Per-visit device session.
//!
//! The crawl script's "purge the logs on the device" step used to be a
//! `netlog.clear()` on a device-wide shared log — which serialized every
//! visit and made `run_visit` order-dependent. A [`VisitSession`] is the
//! per-visit replacement: its own netlog, its own logcat, its own hook
//! recorder, and visit-scoped source-id allocation. A visit that owns its
//! session is a pure function of `(site, profile)`; nothing needs purging
//! because the whole session is dropped with the visit, and sessions on
//! different worker threads never contend.

use crate::frida::FridaRecorder;
use crate::logcat::Logcat;
use wla_net::NetLog;

/// Device state scoped to a single visit: fresh logs, fresh recorder,
/// fresh source-id space.
#[derive(Debug, Default, Clone)]
pub struct VisitSession {
    netlog: NetLog,
    logcat: Logcat,
    recorder: FridaRecorder,
    next_source_id: u32,
}

impl VisitSession {
    /// Fresh session (empty logs, source ids starting at 1).
    pub fn new() -> VisitSession {
        VisitSession::default()
    }

    /// Allocate the next WebView source id in this session's private id
    /// space (1-based — 0 is reserved as "no source").
    pub fn allocate_source_id(&mut self) -> u32 {
        self.next_source_id += 1;
        self.next_source_id
    }

    /// The session's network log.
    pub fn netlog(&self) -> &NetLog {
        &self.netlog
    }

    /// The session's device log buffer.
    pub fn logcat(&self) -> &Logcat {
        &self.logcat
    }

    /// The session's WebView hook recorder.
    pub fn recorder(&self) -> &FridaRecorder {
        &self.recorder
    }

    /// Total netlog events captured during the visit.
    pub fn requests_logged(&self) -> usize {
        self.netlog.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_net::NetLogPhase;

    #[test]
    fn source_ids_are_session_scoped() {
        let mut a = VisitSession::new();
        let mut b = VisitSession::new();
        assert_eq!(a.allocate_source_id(), 1);
        assert_eq!(a.allocate_source_id(), 2);
        // A fresh session restarts the id space — ids are visit-scoped,
        // not device-global.
        assert_eq!(b.allocate_source_id(), 1);
    }

    #[test]
    fn sessions_are_isolated() {
        let a = VisitSession::new();
        let b = VisitSession::new();
        a.netlog()
            .record(1, "https://x.example/", NetLogPhase::RequestSent);
        a.logcat().info("adb", "launch");
        assert_eq!(a.requests_logged(), 1);
        assert_eq!(b.requests_logged(), 0);
        assert!(b.logcat().lines().is_empty());
        assert!(b.recorder().calls().is_empty());
    }
}
