//! Logcat — the device log buffer the manual analysis reads (§4.2).

use parking_lot::Mutex;
use std::sync::Arc;

/// Log priority levels (Android's subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Debug.
    Debug,
    /// Info.
    Info,
    /// Warning.
    Warn,
    /// Error.
    Error,
}

/// One log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLine {
    /// Priority.
    pub priority: Priority,
    /// Tag (component name).
    pub tag: String,
    /// Message.
    pub message: String,
}

/// Shared device log.
#[derive(Debug, Default, Clone)]
pub struct Logcat {
    lines: Arc<Mutex<Vec<LogLine>>>,
}

impl Logcat {
    /// Fresh empty log.
    pub fn new() -> Logcat {
        Logcat::default()
    }

    /// Append a line.
    pub fn log(&self, priority: Priority, tag: &str, message: &str) {
        self.lines.lock().push(LogLine {
            priority,
            tag: tag.to_owned(),
            message: message.to_owned(),
        });
    }

    /// Shorthand for info-level logging.
    pub fn info(&self, tag: &str, message: &str) {
        self.log(Priority::Info, tag, message);
    }

    /// Snapshot of all lines.
    pub fn lines(&self) -> Vec<LogLine> {
        self.lines.lock().clone()
    }

    /// Lines whose tag matches.
    pub fn lines_for(&self, tag: &str) -> Vec<LogLine> {
        self.lines
            .lock()
            .iter()
            .filter(|l| l.tag == tag)
            .cloned()
            .collect()
    }

    /// Does any line mention `needle`? (The manual workflow greps logs for
    /// intent launches.)
    pub fn contains(&self, needle: &str) -> bool {
        self.lines.lock().iter().any(|l| l.message.contains(needle))
    }

    /// Purge ("we also purge the logs on the device" between crawls).
    pub fn clear(&self) {
        self.lines.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_filter() {
        let log = Logcat::new();
        log.info(
            "ActivityManager",
            "START u0 {act=android.intent.action.VIEW}",
        );
        log.log(Priority::Warn, "WebView", "loading without safe browsing");
        assert_eq!(log.lines().len(), 2);
        assert_eq!(log.lines_for("WebView").len(), 1);
        assert!(log.contains("android.intent.action.VIEW"));
        assert!(!log.contains("missing"));
    }

    #[test]
    fn clear_purges() {
        let log = Logcat::new();
        log.info("t", "m");
        log.clear();
        assert!(log.lines().is_empty());
    }
}
