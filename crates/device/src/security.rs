//! Executable versions of Table 1's attack-surface rows.
//!
//! * **Safe Browsing** (§4.1.1): "Ad SDKs can choose to disable
//!   SafeBrowsing \[in a WebView\], whereas Ad SDKs using CTs would be
//!   subject to SafeBrowsing unless the user has explicitly disabled it in
//!   their browser." [`SafeBrowsing`] is the threat-intelligence service;
//!   WebViews consult it only when their own setting allows, Custom Tabs
//!   always go through the browser's.
//! * **JS-bridge exposure** (Mahmud et al., §4.1.4): a bridge injected
//!   with `addJavascriptInterface` is callable by *any* page loaded in the
//!   WebView — [`BridgeHost`] models the native object, and
//!   [`page_invoke_bridge`] is the malicious page's call. The CT analog
//!   does not exist: `CustomTab` has no bridge API at all.

use crate::webview::WebViewInstance;
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;

/// A Safe-Browsing-style URL reputation service.
#[derive(Debug, Default, Clone)]
pub struct SafeBrowsing {
    flagged_hosts: Arc<RwLock<HashSet<String>>>,
}

impl SafeBrowsing {
    /// Empty blocklist.
    pub fn new() -> SafeBrowsing {
        SafeBrowsing::default()
    }

    /// Flag a host as dangerous.
    pub fn flag(&self, host: &str) {
        self.flagged_hosts.write().insert(host.to_owned());
    }

    /// Is the URL's host flagged?
    pub fn is_flagged(&self, url: &str) -> bool {
        match wla_net::netlog::host_of(url) {
            Some(host) => self.flagged_hosts.read().contains(host),
            None => false,
        }
    }

    /// Verdict for a load attempted by a WebView with the given setting:
    /// blocked only when the check actually runs.
    pub fn webview_verdict(&self, url: &str, safe_browsing_enabled: bool) -> LoadVerdict {
        if safe_browsing_enabled && self.is_flagged(url) {
            LoadVerdict::Blocked
        } else if self.is_flagged(url) {
            LoadVerdict::LoadedDespiteThreat
        } else {
            LoadVerdict::Loaded
        }
    }

    /// Verdict for a Custom-Tab load: the browser's check always runs.
    pub fn custom_tab_verdict(&self, url: &str) -> LoadVerdict {
        if self.is_flagged(url) {
            LoadVerdict::Blocked
        } else {
            LoadVerdict::Loaded
        }
    }
}

/// Outcome of a guarded load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadVerdict {
    /// Clean URL, loaded.
    Loaded,
    /// Flagged URL, interstitial shown.
    Blocked,
    /// Flagged URL loaded anyway — the WebView had Safe Browsing off.
    LoadedDespiteThreat,
}

/// The kinds of data a real payment/identity bridge exposes (Mahmud et
/// al. found 20 SDKs breaching OWASP MASVS PLAT-4 this way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeData {
    /// Cardholder data from a payment SDK.
    PaymentCard {
        /// PAN (already a breach to expose).
        number: String,
        /// Cardholder.
        holder: String,
    },
    /// Profile data from an identity SDK.
    UserProfile {
        /// Real name.
        name: String,
        /// Email.
        email: String,
    },
    /// No sensitive payload.
    Benign,
}

/// A native object registered via `addJavascriptInterface`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeHost {
    /// Bridge name as exposed to JS.
    pub name: String,
    /// What `getData()` returns to the page.
    pub data: BridgeData,
}

/// A page's attempt to call `window.<bridge>.getData()`. Succeeds iff the
/// WebView actually exposed the bridge — which is exactly the attack
/// surface: the page does not have to be the page the SDK intended.
pub fn page_invoke_bridge(
    webview: &WebViewInstance,
    hosts: &[BridgeHost],
    bridge_name: &str,
) -> Option<BridgeData> {
    if !webview.bridges().iter().any(|b| b == bridge_name) {
        return None;
    }
    hosts
        .iter()
        .find(|h| h.name == bridge_name)
        .map(|h| h.data.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frida::FridaRecorder;
    use crate::logcat::Logcat;
    use crate::webview::PageSource;
    use wla_net::NetLog;

    fn webview() -> WebViewInstance {
        WebViewInstance::new(
            1,
            "com.app",
            FridaRecorder::new(),
            NetLog::new(),
            Logcat::new(),
        )
    }

    #[test]
    fn safe_browsing_blocks_when_enabled() {
        let sb = SafeBrowsing::new();
        sb.flag("malware.example");
        assert_eq!(
            sb.webview_verdict("https://malware.example/drop", true),
            LoadVerdict::Blocked
        );
        assert_eq!(
            sb.webview_verdict("https://clean.example/", true),
            LoadVerdict::Loaded
        );
    }

    #[test]
    fn webview_with_safebrowsing_off_loads_threats() {
        // The Table 1 asymmetry: the app (or an ad SDK) can switch the
        // check off in a WebView; it cannot in a CT.
        let sb = SafeBrowsing::new();
        sb.flag("cryptojack.example");
        assert_eq!(
            sb.webview_verdict("https://cryptojack.example/miner.js", false),
            LoadVerdict::LoadedDespiteThreat
        );
        assert_eq!(
            sb.custom_tab_verdict("https://cryptojack.example/miner.js"),
            LoadVerdict::Blocked
        );
    }

    #[test]
    fn any_page_can_call_an_exposed_bridge() {
        let mut wv = webview();
        wv.load(PageSource::Synthetic {
            url: "https://attacker.example/".into(),
            html: "<p>innocent looking page</p>".into(),
            extra_requests: vec![],
        });
        // A payment SDK exposed its checkout bridge earlier in the session.
        wv.add_javascript_interface("com.paysdk.CheckoutBridge", "checkoutBridge");
        let hosts = [BridgeHost {
            name: "checkoutBridge".into(),
            data: BridgeData::PaymentCard {
                number: "4111111111111111".into(),
                holder: "A. User".into(),
            },
        }];
        // The attacker's page reads the card data.
        let leaked = page_invoke_bridge(&wv, &hosts, "checkoutBridge");
        assert!(matches!(leaked, Some(BridgeData::PaymentCard { .. })));
    }

    #[test]
    fn removed_bridge_is_unreachable() {
        let mut wv = webview();
        wv.add_javascript_interface("com.paysdk.CheckoutBridge", "checkoutBridge");
        wv.remove_javascript_interface("checkoutBridge");
        let hosts = [BridgeHost {
            name: "checkoutBridge".into(),
            data: BridgeData::Benign,
        }];
        assert_eq!(page_invoke_bridge(&wv, &hosts, "checkoutBridge"), None);
    }

    #[test]
    fn unexposed_bridge_is_unreachable() {
        let wv = webview();
        let hosts = [BridgeHost {
            name: "fbpayIAWBridge".into(),
            data: BridgeData::UserProfile {
                name: "A".into(),
                email: "a@example.com".into(),
            },
        }];
        assert_eq!(page_invoke_bridge(&wv, &hosts, "fbpayIAWBridge"), None);
    }
}
