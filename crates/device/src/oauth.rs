//! OAuth flows over WebViews vs Custom Tabs — §4.1.6/§4.1.8 and RFC 8252.
//!
//! "Using CTs for authorization requests is also in line with the best
//! practices set out in the IETF RFC 8252 for 'OAuth 2.0 for Native
//! Apps'." This module runs both flows against the simulated device and
//! produces the properties the paper argues from:
//!
//! * a CT flow reuses the browser session (no retyped credentials), shows
//!   the secure browser UI, and keeps credentials outside the app's reach;
//! * a WebView flow forces fresh credential entry (its cookie jar is
//!   empty), has no trusted UI, and types the password *through app-
//!   controllable surface* (keystrokes and DOM are both interceptable) —
//!   and the IDP may refuse it outright (Figure 5).

use crate::browser::Browser;
use crate::customtabs::CustomTab;
use crate::frida::FridaRecorder;
use crate::logcat::Logcat;
use crate::webview::{PageSource, WebViewInstance};
use wla_net::NetLog;
use wla_web::website::{ClientContext, Website};

/// Which mechanism the app's auth SDK uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthMechanism {
    /// Embedded WebView (Gigya, VK, Kakao, Amazon Identity …).
    EmbeddedWebView,
    /// Custom Tab (Facebook Login, Firebase Auth, NAVER …).
    CustomTab,
}

/// Observable outcome of one authorization attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OAuthOutcome {
    /// The flow completed with an authorization grant.
    pub authorized: bool,
    /// An existing IDP session was reused (no credential entry).
    pub session_reused: bool,
    /// The user had to type credentials into app-controllable surface.
    pub credentials_typed_in_app_surface: bool,
    /// A trusted (browser-drawn) security UI was visible.
    pub trusted_ui: bool,
    /// The IDP refused the client (Figure 5's "Log in Disabled").
    pub refused_by_idp: bool,
}

/// Run an authorization flow for `app_package` against `idp`, given the
/// user's browser state.
pub fn run_oauth_flow(
    mechanism: AuthMechanism,
    app_package: &str,
    idp: &Website,
    browser: &mut Browser,
) -> OAuthOutcome {
    match mechanism {
        AuthMechanism::CustomTab => {
            let page = idp.login_page(&ClientContext::browser());
            let tab = CustomTab::launch(
                browser,
                &format!("https://{}/oauth/authorize", idp.host),
                "<p>authorize</p>",
            );
            let session_reused = tab.session_restored(browser);
            if !session_reused {
                // The user signs in *in the browser context*; the session
                // persists for every future flow.
                browser.cookies.login(&idp.host);
            }
            OAuthOutcome {
                authorized: page.login_possible(),
                session_reused,
                credentials_typed_in_app_surface: false,
                trusted_ui: tab.secure_ui,
                refused_by_idp: !page.login_possible(),
            }
        }
        AuthMechanism::EmbeddedWebView => {
            let mut wv = WebViewInstance::new(
                500,
                app_package,
                FridaRecorder::new(),
                NetLog::new(),
                Logcat::new(),
            );
            wv.load(PageSource::Synthetic {
                url: format!("https://{}/oauth/authorize", idp.host),
                html: "<p>authorize</p>".into(),
                extra_requests: vec![],
            });
            let page = idp.login_page(&ClientContext::webview(app_package));
            let refused = !page.login_possible();
            // WebView cookie jars are per-app and start cold: the browser
            // session is invisible, so credentials must be typed unless
            // the IDP refuses entirely.
            let session_reused = wv.cookies.is_logged_in(&idp.host);
            debug_assert!(!session_reused);
            OAuthOutcome {
                authorized: !refused,
                session_reused,
                credentials_typed_in_app_surface: !refused,
                trusted_ui: false,
                refused_by_idp: refused,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_web::website::WebViewLoginPolicy;

    fn idp() -> Website {
        Website::new("idp.example", WebViewLoginPolicy::Allow)
    }

    #[test]
    fn ct_flow_reuses_browser_session() {
        let mut browser = Browser::new(NetLog::new());
        browser.cookies.login("idp.example");
        let out = run_oauth_flow(AuthMechanism::CustomTab, "com.app", &idp(), &mut browser);
        assert!(out.authorized);
        assert!(out.session_reused);
        assert!(!out.credentials_typed_in_app_surface);
        assert!(out.trusted_ui);
    }

    #[test]
    fn first_ct_login_persists_for_later_flows() {
        let mut browser = Browser::new(NetLog::new());
        let first = run_oauth_flow(AuthMechanism::CustomTab, "com.a", &idp(), &mut browser);
        assert!(!first.session_reused);
        // A different app's flow now reuses the session — the conversion
        // benefit the paper attributes to Facebook's CT migration.
        let second = run_oauth_flow(AuthMechanism::CustomTab, "com.b", &idp(), &mut browser);
        assert!(second.session_reused);
    }

    #[test]
    fn webview_flow_types_credentials_without_trusted_ui() {
        let mut browser = Browser::new(NetLog::new());
        browser.cookies.login("idp.example"); // browser session exists…
        let out = run_oauth_flow(
            AuthMechanism::EmbeddedWebView,
            "com.app",
            &idp(),
            &mut browser,
        );
        assert!(out.authorized);
        // …but the WebView can't see it: credentials go through app
        // surface, with no trusted UI.
        assert!(!out.session_reused);
        assert!(out.credentials_typed_in_app_surface);
        assert!(!out.trusted_ui);
    }

    #[test]
    fn blocking_idp_refuses_webview_but_not_ct() {
        let fb = Website::facebook();
        let mut browser = Browser::new(NetLog::new());
        let wv = run_oauth_flow(AuthMechanism::EmbeddedWebView, "com.app", &fb, &mut browser);
        assert!(wv.refused_by_idp);
        assert!(!wv.authorized);
        let ct = run_oauth_flow(AuthMechanism::CustomTab, "com.app", &fb, &mut browser);
        assert!(ct.authorized);
        assert!(!ct.refused_by_idp);
    }
}
