//! The Custom Tabs runtime.
//!
//! The contrast with [`crate::webview`] is structural, not behavioural:
//! [`CustomTab`] exposes *no* injection or bridge API at all — the page
//! loads in the browser's context with the browser's cookies, and the app
//! only gets the coarse engagement callbacks `CustomTabsCallback`
//! provides. "Untrusted web content loads in browser context isolated from
//! app context (no bidirectional access)" (Table 1).

use crate::browser::Browser;
use wla_net::netlog::host_of;
use wla_net::NetLogPhase;
use wla_web::html;

/// Navigation events surfaced through `CustomTabsCallback` — the paper
/// notes CTs "natively measure similar user engagement signals" (§4.1.2),
/// and the Engagement Signals API reports scroll behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NavigationEvent {
    /// Navigation started.
    Started,
    /// Navigation finished.
    Finished,
    /// Greatest scroll percentage reached (Engagement Signals API).
    GreatestScrollPercentage(u8),
    /// The user interacted with the page (vertical scroll observed).
    VerticalScroll,
}

/// A launched Custom Tab.
#[derive(Debug)]
pub struct CustomTab {
    /// Netlog source id (a browser tab source).
    pub source_id: u32,
    /// URL shown.
    pub url: String,
    /// Whether the secure UI (TLS lock) is visible — always, in a CT.
    pub secure_ui: bool,
    /// Engagement callbacks delivered to the app.
    pub callbacks: Vec<NavigationEvent>,
}

impl CustomTab {
    /// `CustomTabsIntent.launchUrl`: load `url` (with `html` content) in
    /// the browser context.
    pub fn launch(browser: &mut Browser, url: &str, page_html: &str) -> CustomTab {
        let source_id = browser.allocate_source();
        browser
            .netlog
            .record(source_id, url, NetLogPhase::RequestSent);
        // The page sees the browser's cookies: an authenticated session on
        // this host stays authenticated (Table 1's UX row).
        browser
            .netlog
            .record(source_id, url, NetLogPhase::ResponseReceived);
        let doc = html::parse(page_html);
        let page_host = host_of(url).unwrap_or("localhost").to_owned();
        for node in doc.walk() {
            let attr = match doc.tag(node) {
                Some("script") | Some("img") | Some("iframe") => doc.get_attr(node, "src"),
                Some("link") => doc.get_attr(node, "href"),
                _ => None,
            };
            if let Some(raw) = attr {
                let sub = if raw.starts_with("http") {
                    raw.to_owned()
                } else if let Some(rest) = raw.strip_prefix("//") {
                    format!("https://{rest}")
                } else {
                    format!("https://{page_host}/{}", raw.trim_start_matches('/'))
                };
                browser.netlog.advance_clock(1);
                browser
                    .netlog
                    .record(source_id, &sub, NetLogPhase::RequestSent);
                browser
                    .netlog
                    .record(source_id, &sub, NetLogPhase::ResponseReceived);
            }
        }
        CustomTab {
            source_id,
            url: url.to_owned(),
            secure_ui: true,
            callbacks: vec![NavigationEvent::Started, NavigationEvent::Finished],
        }
    }

    /// Whether the user's existing session on the tab's host is active —
    /// true iff the *browser* jar says so.
    pub fn session_restored(&self, browser: &Browser) -> bool {
        host_of(&self.url).is_some_and(|h| browser.cookies.is_logged_in(h))
    }

    /// The user scrolled; the Engagement Signals API reports it to the app
    /// as coarse callbacks — the whole engagement surface a CT offers,
    /// versus a WebView's full DOM access (§4.1.2).
    pub fn report_scroll(&mut self, greatest_percentage: u8) {
        self.callbacks.push(NavigationEvent::VerticalScroll);
        self.callbacks
            .push(NavigationEvent::GreatestScrollPercentage(
                greatest_percentage.min(100),
            ));
    }

    /// Peak scroll percentage reported so far.
    pub fn greatest_scroll(&self) -> u8 {
        self.callbacks
            .iter()
            .filter_map(|e| match e {
                NavigationEvent::GreatestScrollPercentage(p) => Some(*p),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// A Partial Custom Tab — the resizable inline variant Google showcased in
/// 2023 for launching CTs "in response to native ads" (§5's future-work
/// direction for migrating ad SDKs off WebViews).
#[derive(Debug)]
pub struct PartialCustomTab {
    /// The underlying tab (browser context, shared cookies, secure UI).
    pub tab: CustomTab,
    /// Current sheet height in pixels.
    pub height_px: u32,
    /// Height of the host activity's window.
    pub window_height_px: u32,
}

impl PartialCustomTab {
    /// Launch a partial CT occupying `height_px` of a `window_height_px`
    /// window.
    pub fn launch(
        browser: &mut Browser,
        url: &str,
        page_html: &str,
        height_px: u32,
        window_height_px: u32,
    ) -> PartialCustomTab {
        PartialCustomTab {
            tab: CustomTab::launch(browser, url, page_html),
            height_px: height_px.min(window_height_px),
            window_height_px,
        }
    }

    /// User drags the sheet; height is clamped to the window.
    pub fn resize(&mut self, height_px: u32) {
        self.height_px = height_px.min(self.window_height_px);
    }

    /// Expand to full height.
    pub fn maximize(&mut self) {
        self.height_px = self.window_height_px;
    }

    /// Fraction of the window the sheet covers.
    pub fn coverage(&self) -> f64 {
        self.height_px as f64 / self.window_height_px as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_net::NetLog;

    #[test]
    fn ct_uses_browser_cookies() {
        let mut browser = Browser::new(NetLog::new());
        browser.cookies.login("example.com");
        let tab = CustomTab::launch(&mut browser, "https://example.com/article", "<p>t</p>");
        assert!(tab.session_restored(&browser));
        assert!(tab.secure_ui);
        // A different host is not logged in.
        let tab2 = CustomTab::launch(&mut browser, "https://other.com/", "<p>t</p>");
        assert!(!tab2.session_restored(&browser));
    }

    #[test]
    fn ct_requests_attributed_to_browser_source() {
        let netlog = NetLog::new();
        let mut browser = Browser::new(netlog.clone());
        let tab = CustomTab::launch(
            &mut browser,
            "https://site.example/",
            "<script src=\"https://cdn.example/x.js\"></script>",
        );
        let hosts = netlog.distinct_hosts_for(tab.source_id);
        assert!(hosts.contains("site.example"));
        assert!(hosts.contains("cdn.example"));
    }

    #[test]
    fn engagement_callbacks_delivered() {
        let mut browser = Browser::new(NetLog::new());
        let tab = CustomTab::launch(&mut browser, "https://x.example/", "<p>t</p>");
        assert_eq!(
            tab.callbacks,
            vec![NavigationEvent::Started, NavigationEvent::Finished]
        );
    }
}

#[cfg(test)]
mod partial_tests {
    use super::*;
    use wla_net::NetLog;

    #[test]
    fn partial_ct_resizes_within_window() {
        let mut browser = Browser::new(NetLog::new());
        let mut pct = PartialCustomTab::launch(
            &mut browser,
            "https://ad-landing.example/",
            "<p>offer</p>",
            600,
            2_000,
        );
        assert!((pct.coverage() - 0.3).abs() < 1e-9);
        pct.resize(5_000); // clamped
        assert_eq!(pct.height_px, 2_000);
        pct.resize(900);
        pct.maximize();
        assert_eq!(pct.height_px, 2_000);
        // Still a real CT underneath: secure UI, browser cookies.
        assert!(pct.tab.secure_ui);
    }

    #[test]
    fn engagement_signals_report_scroll() {
        let mut browser = Browser::new(NetLog::new());
        let mut tab = CustomTab::launch(&mut browser, "https://news.example/", "<p>story</p>");
        assert_eq!(tab.greatest_scroll(), 0);
        tab.report_scroll(40);
        tab.report_scroll(90);
        tab.report_scroll(250); // clamped to 100
        assert_eq!(tab.greatest_scroll(), 100);
        assert!(tab
            .callbacks
            .iter()
            .any(|e| matches!(e, NavigationEvent::VerticalScroll)));
    }
}
