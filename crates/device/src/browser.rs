//! The device's default browser: persistent cookies and its own netlog
//! sources. Custom Tabs borrow both — that sharing is the UX advantage the
//! paper highlights (sessions persist, no repeated logins).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wla_net::NetLog;

/// A per-host cookie store.
#[derive(Debug, Default, Clone)]
pub struct CookieJar {
    inner: Arc<Mutex<HashMap<String, HashMap<String, String>>>>,
}

impl CookieJar {
    /// Fresh empty jar.
    pub fn new() -> CookieJar {
        CookieJar::default()
    }

    /// Set a cookie for a host.
    pub fn set(&self, host: &str, name: &str, value: &str) {
        self.inner
            .lock()
            .entry(host.to_owned())
            .or_default()
            .insert(name.to_owned(), value.to_owned());
    }

    /// Read a cookie.
    pub fn get(&self, host: &str, name: &str) -> Option<String> {
        self.inner.lock().get(host)?.get(name).cloned()
    }

    /// Mark the user as logged in on `host` (session cookie).
    pub fn login(&self, host: &str) {
        self.set(host, "session", "authenticated");
    }

    /// Whether an authenticated session exists for `host`.
    pub fn is_logged_in(&self, host: &str) -> bool {
        self.get(host, "session").as_deref() == Some("authenticated")
    }

    /// Number of hosts with cookies.
    pub fn host_count(&self) -> usize {
        self.inner.lock().len()
    }
}

/// The default browser.
#[derive(Debug)]
pub struct Browser {
    /// Persistent cookie store (shared with Custom Tabs).
    pub cookies: CookieJar,
    /// Netlog shared with the rest of the device.
    pub netlog: NetLog,
    /// Whether the browser engine is warm (pre-initialized) — Custom Tabs
    /// benefit from this, WebViews cannot (Figure 7).
    warm: bool,
    next_source: u32,
}

impl Browser {
    /// New browser over the device netlog.
    pub fn new(netlog: NetLog) -> Browser {
        Browser {
            cookies: CookieJar::new(),
            netlog,
            warm: false,
            next_source: 1_000,
        }
    }

    /// Pre-initialize the engine (`CustomTabsClient.warmup`).
    pub fn warm_up(&mut self) {
        self.warm = true;
    }

    /// Whether the engine is warm.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Allocate a netlog source id for a new tab.
    pub fn allocate_source(&mut self) -> u32 {
        let id = self.next_source;
        self.next_source += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cookie_persistence_and_login() {
        let jar = CookieJar::new();
        assert!(!jar.is_logged_in("facebook.com"));
        jar.login("facebook.com");
        assert!(jar.is_logged_in("facebook.com"));
        assert!(!jar.is_logged_in("example.com"));
        jar.set("example.com", "pref", "dark");
        assert_eq!(jar.get("example.com", "pref").as_deref(), Some("dark"));
        assert_eq!(jar.host_count(), 2);
    }

    #[test]
    fn browser_sources_are_distinct() {
        let mut b = Browser::new(NetLog::new());
        let a = b.allocate_source();
        let c = b.allocate_source();
        assert_ne!(a, c);
    }

    #[test]
    fn warmup_flag() {
        let mut b = Browser::new(NetLog::new());
        assert!(!b.is_warm());
        b.warm_up();
        assert!(b.is_warm());
    }
}
