//! UI/Application Exerciser Monkey analog — the automation the paper
//! considered and rejected (§3.2.3): "Automating account creation is
//! challenging … Android's Monkey, despite its efficacy in other studies,
//! may also not be effective in our context."
//!
//! The monkey fires random UI events at an app; reaching a user-posted
//! link requires (1) passing any access gate — which random input cannot —
//! and (2) landing the specific navigate → focus-field → type-URL → tap
//! sequence. [`run_monkey`] models that event walk so the limitation is
//! *measured* rather than asserted; the scripted crawler in `wla-crawler`
//! is the contrast.

use rand_like::MonkeyRng;
use wla_corpus::ecosystem::TopAppSpec;

/// Random UI events the monkey emits (Monkey's touch/motion/nav mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonkeyEvent {
    /// Random screen tap.
    Tap,
    /// Random swipe.
    Swipe,
    /// Back button.
    Back,
    /// Random text input.
    Text,
}

/// Outcome of a monkey session against one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonkeyOutcome {
    /// The monkey got past the app's entry (login/registration) screen.
    pub passed_entry: bool,
    /// The monkey reached a surface where user links appear.
    pub reached_link_surface: bool,
    /// The monkey actually opened a posted link.
    pub opened_link: bool,
    /// Events consumed.
    pub events_used: u32,
}

/// A tiny deterministic xorshift RNG so this module needs no external
/// crates (the monkey is not statistically demanding).
mod rand_like {
    /// xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct MonkeyRng(u64);

    impl MonkeyRng {
        /// Seeded generator (0 is mapped to a fixed non-zero state).
        pub fn new(seed: u64) -> MonkeyRng {
            MonkeyRng(if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            })
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Per-event probabilities of the three hurdles. An app behind an access
/// gate has entry probability 0 — the paper's core point: "the creation of
/// dummy accounts was a prerequisite" in all ten IAB apps.
fn entry_probability(app: &TopAppSpec) -> f64 {
    if app.gate.is_some() {
        0.0
    } else {
        // Random input very occasionally lands the exact taps that
        // dismiss onboarding, accept prompts, and skip sign-in.
        0.000_5
    }
}

/// Run a monkey session of `max_events` random events.
pub fn run_monkey(app: &TopAppSpec, seed: u64, max_events: u32) -> MonkeyOutcome {
    let mut rng = MonkeyRng::new(seed ^ 0xFEED_FACE);
    let mut passed_entry = false;
    let mut reached_link_surface = false;
    let mut opened_link = false;
    let mut events_used = 0;

    for _ in 0..max_events {
        events_used += 1;
        if !passed_entry {
            if rng.unit() < entry_probability(app) {
                passed_entry = true;
            }
            continue;
        }
        if app.ugc.is_none() {
            // Nothing to find; the monkey wanders forever.
            continue;
        }
        if !reached_link_surface {
            // Random taps occasionally land on the right tab/screen.
            if rng.unit() < 0.002 {
                reached_link_surface = true;
            }
            continue;
        }
        if !opened_link {
            // Must hit the link itself (and a Back event loses the screen).
            let draw = rng.unit();
            if draw < 0.01 {
                opened_link = true;
                break;
            } else if draw > 0.9 {
                reached_link_surface = false; // pressed Back / navigated away
            }
        }
    }

    MonkeyOutcome {
        passed_entry,
        reached_link_surface,
        opened_link,
        events_used,
    }
}

/// Success rate of the monkey over the UGC-bearing apps of a population.
pub fn monkey_success_rate(apps: &[TopAppSpec], seed: u64, max_events: u32) -> f64 {
    let targets: Vec<&TopAppSpec> = apps.iter().filter(|a| a.ugc.is_some()).collect();
    if targets.is_empty() {
        return 0.0;
    }
    let hits = targets
        .iter()
        .enumerate()
        .filter(|(i, a)| run_monkey(a, seed ^ *i as u64, max_events).opened_link)
        .count();
    hits as f64 / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_corpus::ecosystem::top_thousand;

    #[test]
    fn gated_apps_never_pass_entry() {
        let apps = top_thousand(3);
        let gated = apps.iter().find(|a| a.gate.is_some()).unwrap();
        for seed in 0..20 {
            let out = run_monkey(gated, seed, 10_000);
            assert!(!out.passed_entry, "seed {seed}");
            assert!(!out.opened_link);
        }
    }

    #[test]
    fn monkey_is_deterministic() {
        let apps = top_thousand(3);
        let app = apps.iter().find(|a| a.ugc.is_some()).unwrap();
        assert_eq!(run_monkey(app, 7, 5_000), run_monkey(app, 7, 5_000));
    }

    #[test]
    fn monkey_sometimes_succeeds_with_huge_budgets() {
        // Not impossible — just unreliable.
        let apps = top_thousand(3);
        let rate = monkey_success_rate(&apps, 11, 50_000);
        assert!(rate > 0.0, "monkey never succeeded at all");
    }

    #[test]
    fn monkey_is_ineffective_at_realistic_budgets() {
        // The §3.2.3 claim: at a realistic event budget the monkey reaches
        // only a fraction of what the scripted driver reaches (the
        // scripted driver reaches 100% of accessible UGC apps by
        // construction).
        let apps = top_thousand(3);
        let rate = monkey_success_rate(&apps, 11, 500);
        assert!(rate < 0.5, "monkey rate {rate}");
    }

    #[test]
    fn apps_without_ugc_never_yield_links() {
        let apps = top_thousand(3);
        let no_ugc = apps
            .iter()
            .find(|a| a.ugc.is_none() && a.gate.is_none() && !a.is_browser)
            .unwrap();
        let out = run_monkey(no_ugc, 5, 20_000);
        assert!(!out.opened_link);
        assert!(!out.reached_link_surface);
    }
}
