//! Frida-analog dynamic instrumentation.
//!
//! The paper "dynamically override\[s\] all methods of `android.webkit.
//! WebView` at run-time in order to record the WebView APIs used by the
//! app, along with the arguments passed". [`FridaRecorder`] is that
//! interposition layer for the simulated runtime: every WebView API entry
//! point reports itself (method name + stringified arguments) before
//! executing.

use parking_lot::Mutex;
use std::sync::Arc;

/// One intercepted WebView API call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookedCall {
    /// WebView method name.
    pub method: String,
    /// Stringified arguments, in order.
    pub args: Vec<String>,
}

/// Shared, thread-safe hook recorder attached to WebView instances.
#[derive(Debug, Default, Clone)]
pub struct FridaRecorder {
    calls: Arc<Mutex<Vec<HookedCall>>>,
}

impl FridaRecorder {
    /// Fresh recorder.
    pub fn new() -> FridaRecorder {
        FridaRecorder::default()
    }

    /// Record one call.
    pub fn record(&self, method: &str, args: &[&str]) {
        self.calls.lock().push(HookedCall {
            method: method.to_owned(),
            args: args.iter().map(|s| (*s).to_owned()).collect(),
        });
    }

    /// Snapshot of all calls.
    pub fn calls(&self) -> Vec<HookedCall> {
        self.calls.lock().clone()
    }

    /// Calls to a specific method.
    pub fn calls_to(&self, method: &str) -> Vec<HookedCall> {
        self.calls
            .lock()
            .iter()
            .filter(|c| c.method == method)
            .cloned()
            .collect()
    }

    /// Whether any call beyond plain page loading happened — "when an app
    /// interacts with WebView beyond mere loading of the URL" (§3.2.2).
    pub fn interacts_beyond_loading(&self) -> bool {
        self.calls
            .lock()
            .iter()
            .any(|c| c.method != "loadUrl" || c.args.iter().any(|a| a.starts_with("javascript:")))
    }

    /// Clear between visits.
    pub fn clear(&self) {
        self.calls.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_methods_and_args() {
        let rec = FridaRecorder::new();
        rec.record("loadUrl", &["https://example.com/"]);
        rec.record("addJavascriptInterface", &["obj", "fbpayIAWBridge"]);
        assert_eq!(rec.calls().len(), 2);
        assert_eq!(rec.calls_to("loadUrl").len(), 1);
        assert_eq!(
            rec.calls_to("addJavascriptInterface")[0].args[1],
            "fbpayIAWBridge"
        );
    }

    #[test]
    fn plain_loading_is_not_interaction() {
        let rec = FridaRecorder::new();
        rec.record("loadUrl", &["https://example.com/"]);
        assert!(!rec.interacts_beyond_loading());
        rec.record("loadUrl", &["javascript:(function(){})()"]);
        assert!(rec.interacts_beyond_loading());
    }

    #[test]
    fn evaluate_counts_as_interaction() {
        let rec = FridaRecorder::new();
        rec.record("evaluateJavascript", &["document.title"]);
        assert!(rec.interacts_beyond_loading());
    }

    #[test]
    fn shared_clone_sees_same_calls() {
        let rec = FridaRecorder::new();
        let other = rec.clone();
        rec.record("loadUrl", &["x"]);
        assert_eq!(other.calls().len(), 1);
        other.clear();
        assert!(rec.calls().is_empty());
    }
}
