//! # wla-device — simulated Android device
//!
//! The dynamic study (§3.2) runs on a rooted Pixel 3: apps are installed,
//! links are tapped, WebView methods are hooked with Frida, and Chrome
//! netlogs are pulled per WebView instance. This crate is that device:
//!
//! * [`intent`] — Web URI intents and Android-12 resolution (default
//!   browser unless an installed app claims the host);
//! * [`webview`] — the WebView runtime: settings, JS bridges
//!   (`addJavascriptInterface`), page loading over real loopback HTTP or
//!   from synthetic page content, script injection via
//!   `evaluateJavascript`/`loadUrl("javascript:…")`, per-instance netlog
//!   attribution, and cookie isolation;
//! * [`customtabs`] — the Custom Tabs runtime: browser-context loading,
//!   shared browser cookies (sessions persist), warmup/pre-init, and *no*
//!   injection surface — the security contrast the paper centers on;
//! * [`frida`] — the dynamic-instrumentation analog: a recorder that
//!   intercepts every WebView API call with its arguments;
//! * [`logcat`] — the device log buffer;
//! * [`iab`] — In-App Browser behaviour profiles for the ten WebView-IAB
//!   apps of Table 8 (plus Discord's CT IAB), and the machinery to drive a
//!   profile through a page visit;
//! * [`browser`] — the default browser: cookie persistence and a netlog
//!   source of its own.

pub mod browser;
pub mod customtabs;
pub mod frida;
pub mod iab;
pub mod intent;
pub mod logcat;
pub mod monkey;
pub mod oauth;
pub mod security;
pub mod session;
pub mod webview;

pub use browser::Browser;
pub use customtabs::{CustomTab, NavigationEvent, PartialCustomTab};
pub use frida::{FridaRecorder, HookedCall};
pub use iab::{profile_for, IabProfile, IabVisit};
pub use intent::{resolve_intent, Intent, IntentTarget};
pub use logcat::Logcat;
pub use monkey::{monkey_success_rate, run_monkey, MonkeyOutcome};
pub use oauth::{run_oauth_flow, AuthMechanism, OAuthOutcome};
pub use security::{page_invoke_bridge, BridgeData, BridgeHost, LoadVerdict, SafeBrowsing};
pub use session::VisitSession;
pub use webview::{PageSource, PreparedPage, WebViewInstance, WebViewSettings};
