//! Study orchestration: configure once, run each campaign.

use wla_corpus::playstore::{FilterSpec, MetadataUniverse, UniverseConfig};
use wla_corpus::{top_thousand, CorpusConfig, GeneratedApp, Generator, TopAppSpec};
use wla_dynamic::classify::{classify_top_apps, ClassificationOutcome, Table6Counts};
use wla_dynamic::crawl_study::{run_crawl_study, run_crawl_study_parallel, CrawlStudy};
use wla_dynamic::iab_study::{run_iab_study, IabStudy};
use wla_dynamic::CrawlConfig;
use wla_sdk_index::SdkIndex;
use wla_static::{
    aggregate, run_pipeline, run_pipeline_streamed, CorpusInput, PipelineConfig, PipelineStats,
    StreamConfig, StudyResults,
};

/// Top-level study configuration.
#[derive(Debug, Clone)]
pub struct Study {
    /// Corpus scale divisor (1 = the paper's 146.8K apps; default
    /// experiments use 100 ⇒ 1,468 apps).
    pub scale: u32,
    /// Master seed.
    pub seed: u64,
    /// SDK catalog.
    pub catalog: SdkIndex,
}

/// Output of the §3.1 static campaign.
#[derive(Debug)]
pub struct StaticRun {
    /// Generated corpus (ground truth + bytes).
    pub corpus: Vec<GeneratedApp>,
    /// Aggregated pipeline results.
    pub results: StudyResults,
    /// Pipeline observability: throughput, per-stage timers, failure
    /// taxonomy (rendered by `wla-report`'s stats module).
    pub stats: PipelineStats,
    /// The popularity threshold used for "top SDK" status, rescaled from
    /// the paper's >100 apps.
    pub top_sdk_threshold: usize,
}

/// Output of the Table 2 funnel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunnelRun {
    /// Metadata records generated.
    pub total: u64,
    /// Found on the Play Store.
    pub found: u64,
    /// 100K+ downloads.
    pub popular: u64,
    /// …and updated after 2021.
    pub maintained: u64,
    /// Successfully analyzed (from the scaled APK corpus, rescaled).
    pub analyzed_rescaled: u64,
}

/// Output of the §3.2 dynamic campaign.
#[derive(Debug)]
pub struct DynamicRun {
    /// The top-1K population driven through the device.
    pub top_apps: Vec<TopAppSpec>,
    /// Table 6 counts.
    pub table6: Table6Counts,
    /// Per-app classification outcomes.
    pub outcomes: std::collections::BTreeMap<String, ClassificationOutcome>,
    /// The ten-IAB instrumentation study (Tables 8 & 9).
    pub iab: IabStudy,
}

/// Output of the crawl campaign (Figures 6a/6b).
pub type CrawlRun = CrawlStudy;

impl Study {
    /// New study at `scale` with `seed`.
    pub fn new(scale: u32, seed: u64) -> Study {
        Study {
            scale,
            seed,
            catalog: SdkIndex::paper(),
        }
    }

    /// Default experiment configuration: scale 100, fixed seed.
    pub fn default_experiment() -> Study {
        Study::new(100, 0xDA7A_5EED)
    }

    /// Factor to rescale measured counts to paper scale.
    pub fn rescale(&self, measured: usize) -> u64 {
        measured as u64 * self.scale as u64
    }

    /// Run the §3.1 campaign: generate the corpus, run the pipeline over
    /// raw bytes, aggregate.
    pub fn run_static(&self) -> StaticRun {
        let cfg = CorpusConfig {
            scale: self.scale,
            seed: self.seed,
            ..CorpusConfig::default()
        };
        let corpus = Generator::new(&self.catalog, cfg).generate();
        let inputs: Vec<CorpusInput> = corpus
            .iter()
            .map(|g| CorpusInput {
                meta: g.spec.meta.clone(),
                bytes: g.bytes.clone(),
            })
            .collect();
        let output = run_pipeline(&inputs, &self.catalog, PipelineConfig::default());
        // The catalog already encodes the paper's >100-apps popularity
        // criterion; any observed usage of a catalog SDK counts.
        let top_sdk_threshold = 1;
        let results = aggregate(&output, &self.catalog, top_sdk_threshold);
        StaticRun {
            corpus,
            results,
            stats: output.stats,
            top_sdk_threshold,
        }
    }

    /// Run the §3.1 campaign through the sharded on-disk streaming path:
    /// generate the corpus, persist it as shards under `dir`, and analyze
    /// it with [`run_pipeline_streamed`] — results are bit-identical to
    /// [`Study::run_static`] at any worker count.
    ///
    /// The generator is deterministic, so re-persisting writes the exact
    /// same shard bytes (same checksums): a rerun over the same `dir`
    /// serves completed shards from the resume manifest instead of
    /// re-analyzing them.
    pub fn run_static_streamed(
        &self,
        dir: &std::path::Path,
        config: StreamConfig,
    ) -> std::io::Result<StaticRun> {
        let cfg = CorpusConfig {
            scale: self.scale,
            seed: self.seed,
            ..CorpusConfig::default()
        };
        let corpus = Generator::new(&self.catalog, cfg).generate();
        wla_corpus::write_sharded_corpus(dir, &corpus, 64)?;
        let output = run_pipeline_streamed(dir, &self.catalog, config)?;
        let top_sdk_threshold = 1;
        let results = aggregate(&output, &self.catalog, top_sdk_threshold);
        Ok(StaticRun {
            corpus,
            results,
            stats: output.stats,
            top_sdk_threshold,
        })
    }

    /// Run the Table 2 funnel: the metadata universe always runs at full
    /// scale (metadata is cheap); the analyzed row comes from the scaled
    /// byte-level corpus via `static_run`.
    pub fn run_funnel(&self, static_run: &StaticRun) -> FunnelRun {
        let cfg = UniverseConfig {
            seed: self.seed ^ 0xFA11_FA11,
            ..UniverseConfig::default()
        };
        let filter = FilterSpec::default();
        let mut total = 0u64;
        let mut found = 0u64;
        let mut popular = 0u64;
        let mut maintained = 0u64;
        for meta in MetadataUniverse::new(cfg) {
            total += 1;
            if meta.on_play_store {
                found += 1;
            }
            if filter.is_popular(&meta) {
                popular += 1;
            }
            if filter.accepts(&meta) {
                maintained += 1;
            }
        }
        FunnelRun {
            total,
            found,
            popular,
            maintained,
            analyzed_rescaled: self.rescale(static_run.results.analyzed),
        }
    }

    /// Run the §3.2 campaign: top-1K classification + the ten-IAB
    /// controlled-page instrumentation. Always full scale.
    pub fn run_dynamic(&self) -> DynamicRun {
        let top_apps = top_thousand(self.seed ^ 0x70B_1000);
        let (table6, outcomes) = classify_top_apps(&top_apps);
        let iab = run_iab_study();
        DynamicRun {
            top_apps,
            table6,
            outcomes,
            iab,
        }
    }

    /// Run the 100-site crawl campaign for the named apps (None = all 10).
    pub fn run_crawl(&self, apps: Option<&[&str]>) -> CrawlRun {
        run_crawl_study(None, apps)
    }

    /// [`Study::run_crawl`] on the parallel, fault-isolated pipeline —
    /// bit-identical output to the serial run at any worker count.
    pub fn run_crawl_parallel(&self, apps: Option<&[&str]>, config: CrawlConfig) -> CrawlRun {
        run_crawl_study_parallel(None, apps, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_static_run_is_consistent() {
        let study = Study::new(2_000, 7);
        let run = study.run_static();
        assert_eq!(run.corpus.len(), 73); // 146_800 / 2_000
        assert_eq!(run.results.analyzed + run.results.broken, run.corpus.len());
        assert!(run.results.webview_apps > 0);
        // The observability layer and the aggregation must agree.
        assert_eq!(run.stats.total, run.corpus.len());
        assert_eq!(run.stats.analyzed, run.results.analyzed);
        assert_eq!(run.stats.broken, run.results.broken);
        assert!(run.stats.stage.total_ns() > 0);
    }

    #[test]
    fn streamed_static_run_matches_in_memory_and_resumes() {
        let study = Study::new(4_000, 7);
        let baseline = study.run_static();
        let dir = std::env::temp_dir().join(format!("wla-study-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let streamed = study
            .run_static_streamed(&dir, StreamConfig::default())
            .unwrap();
        assert_eq!(streamed.results, baseline.results);
        assert_eq!(streamed.stats.total, baseline.stats.total);
        assert!(streamed.stats.stream.entries_streamed > 0);
        assert_eq!(streamed.stats.stream.entries_cached, 0);

        // Same dir, same seed: the deterministic generator re-persists
        // identical shard bytes, so the second run is served from the
        // resume manifest — and is still identical.
        let resumed = study
            .run_static_streamed(&dir, StreamConfig::default())
            .unwrap();
        assert_eq!(resumed.results, baseline.results);
        assert_eq!(resumed.stats.stream.shards_read, 0);
        assert_eq!(resumed.stats.stream.entries_cached, baseline.stats.total);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rescale_multiplies_by_scale() {
        let study = Study::new(100, 1);
        assert_eq!(study.rescale(1_468), 146_800);
    }
}
