//! The paper's published numbers, as comparison targets.
//!
//! Everything here is transcribed from the IMC '24 paper; experiment
//! binaries compare measured values against these and EXPERIMENTS.md
//! records both sides.

/// Table 2 — dataset funnel.
pub mod table2 {
    /// Play Store apps in AndroZoo.
    pub const ANDROZOO: u64 = 6_507_222;
    /// Apps found on the Play Store.
    pub const FOUND: u64 = 2_454_488;
    /// Apps with 100K+ downloads.
    pub const POPULAR: u64 = 198_324;
    /// …and updated after 2021.
    pub const MAINTAINED: u64 = 146_800;
    /// Apps successfully analyzed.
    pub const ANALYZED: u64 = 146_558;
}

/// Table 3 — SDK counts by category: (label, webview, ct, both).
pub const TABLE3: [(&str, u32, u32, u32); 10] = [
    ("Advertising", 46, 3, 3),
    ("Payments", 15, 6, 5),
    ("Development Tools", 11, 7, 5),
    ("Engagement", 12, 0, 0),
    ("Social", 10, 6, 4),
    ("Authentication", 7, 10, 6),
    ("Unknown", 10, 4, 4),
    ("Hybrid Functionality", 6, 7, 5),
    ("Utility", 4, 2, 2),
    ("User Support", 4, 0, 0),
];

/// Table 3 totals.
pub const TABLE3_TOTALS: (u32, u32, u32) = (125, 45, 34);

/// Table 4 — headline WebView SDKs: (name, apps).
pub const TABLE4_TOP: [(&str, u32); 10] = [
    ("AppLovin", 27_397),
    ("ironSource", 16_326),
    ("ByteDance", 13_080),
    ("InMobi", 10_066),
    ("Digital Turbine", 8_654),
    ("Open Measurement", 11_333),
    ("SafeDK", 7_427),
    ("Flutter", 5_568),
    ("Stripe", 1_171),
    ("Zendesk", 1_000),
];

/// Table 5 — headline CT SDKs: (name, apps).
pub const TABLE5_TOP: [(&str, u32); 5] = [
    ("Facebook", 23_234),
    ("Google Firebase", 7_565),
    ("HyprMX", 1_257),
    ("Linkvertise", 383),
    ("Taboola", 317),
];

/// Table 6 — manual classification of the top 1K apps.
pub mod table6 {
    /// Users can post links.
    pub const CAN_POST: usize = 38;
    /// …link opens in browser.
    pub const BROWSER: usize = 27;
    /// …link opens in a WebView.
    pub const WEBVIEW: usize = 10;
    /// …link opens in a CT.
    pub const CT: usize = 1;
    /// Users cannot post links.
    pub const NO_UGC: usize = 905;
    /// Browser apps.
    pub const BROWSER_APPS: usize = 9;
    /// Could not classify.
    pub const UNCLASSIFIED: usize = 48;
    /// …required a phone number.
    pub const PHONE: usize = 24;
    /// …app incompatibility.
    pub const INCOMPATIBLE: usize = 22;
    /// …required a paid account.
    pub const PAID: usize = 2;
}

/// Table 7 — per-method app counts: (method, apps, via top SDKs).
pub const TABLE7_METHODS: [(&str, u64, u64); 7] = [
    ("loadUrl", 77_930, 50_984),
    ("addJavascriptInterface", 36_899, 23_087),
    ("loadDataWithBaseURL", 35_680, 27_474),
    ("evaluateJavascript", 26_891, 18_716),
    ("removeJavascriptInterface", 19_684, 15_034),
    ("loadData", 8_275, 918),
    ("postUrl", 5_028, 2_678),
];

/// Table 7 — headline app counts.
pub mod table7 {
    /// Apps using WebViews.
    pub const WEBVIEW_APPS: u64 = 81_720;
    /// …via top SDKs.
    pub const WEBVIEW_VIA_SDK: u64 = 54_833;
    /// Apps using CTs.
    pub const CT_APPS: u64 = 29_130;
    /// …via top SDKs.
    pub const CT_VIA_SDK: u64 = 27_891;
    /// Apps using both.
    pub const BOTH_APPS: u64 = 21_938;
    /// …via top SDKs.
    pub const BOTH_VIA_SDK: u64 = 16_810;
}

/// Headline shares (§4.1): WebView 55.7%, CT ~20%, both ~15%.
pub mod shares {
    /// Apps using WebViews.
    pub const WEBVIEW: f64 = 0.557;
    /// Apps using CTs.
    pub const CUSTOM_TABS: f64 = 0.199;
    /// Apps using both.
    pub const BOTH: f64 = 0.150;
}

/// Figure 7's headline ratio: CT loads ≈ 2× faster than a WebView.
pub const FIG7_CT_SPEEDUP: f64 = 2.0;

/// §4.2.2: LinkedIn's IAB contacts "more than 2 trackers on average" on
/// content-rich sites.
pub const FIG6A_MIN_TRACKERS_RICH: f64 = 2.0;

/// §4.2.4: Kik's IAB contacts "over 15 ad network endpoints" on rich sites.
pub const FIG6B_MIN_ENDPOINTS_RICH: f64 = 15.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_totals_consistent() {
        let wv: u32 = TABLE3.iter().map(|r| r.1).sum();
        let ct: u32 = TABLE3.iter().map(|r| r.2).sum();
        let both: u32 = TABLE3.iter().map(|r| r.3).sum();
        assert_eq!((wv, ct, both), TABLE3_TOTALS);
    }

    #[test]
    fn table6_composition_sums_to_1000() {
        use table6::*;
        assert_eq!(CAN_POST + NO_UGC + BROWSER_APPS + UNCLASSIFIED, 1_000);
        assert_eq!(BROWSER + WEBVIEW + CT, CAN_POST);
        assert_eq!(PHONE + INCOMPATIBLE + PAID, UNCLASSIFIED);
    }

    #[test]
    fn funnel_is_monotonic() {
        use table2::*;
        const { assert!(ANDROZOO > FOUND && FOUND > POPULAR && POPULAR > MAINTAINED) };
        assert_eq!(MAINTAINED - ANALYZED, 242);
    }

    #[test]
    fn method_rows_are_descending_in_total() {
        for w in TABLE7_METHODS.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
