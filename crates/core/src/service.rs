//! Analysis-as-a-service: the HTTP face of the static pipeline.
//!
//! `POST /analyze` takes a raw SDEX container body and returns the full
//! per-app static analysis as JSON (rendered with `wla_report::json`'s
//! emitter — stable field order, no wall-clock anything, so responses are
//! deterministic and the oracle/nonblocking equivalence suite can pin
//! them byte-for-byte). A container that decodes but is broken is a `422
//! Unprocessable Entity` whose JSON body carries the stable
//! [`ApkError::kind`] label; an oversized body never reaches the handler
//! (the codec answers 413), and a wrong method never reaches it either
//! (the router answers 405).
//!
//! [`service_router`] mounts the analysis routes *and* the dynamic-crawl
//! endpoints (beacon + netlog) on one router, so a single server fronts
//! both pipelines — `wla serve` exposes exactly that.

use std::sync::Arc;
use wla_apk::ApkError;
use wla_callgraph::UrlOrigin;
use wla_corpus::playstore::{AppMeta, PlayCategory};
use wla_intern::Symbol;
use wla_net::beacon::{beacon_routes, BeaconStore};
use wla_net::http::{parse_form, Method, Request, Response, Status};
use wla_net::netlog::{netlog_routes, NetLog};
use wla_net::Router;
use wla_report::json::{escape, number};
use wla_sdk_index::{LabelId, SdkIndex};
use wla_static::analyze::{analyze_app_timed_with, AnalysisCtx, AppAnalysis};
use wla_static::{CtSiteSummary, WebViewSiteSummary};

/// Mount `POST /analyze` and `GET /healthz` onto a router.
///
/// Each request runs the per-app pipeline in a fresh [`AnalysisCtx`] over
/// the shared paper catalog: contexts are cheap relative to an analysis,
/// the handler stays lock-free across event loops, and — since every
/// symbol is resolved to its string before emission — responses depend
/// only on the request bytes.
pub fn analysis_routes(router: Router, catalog: Arc<SdkIndex>) -> Router {
    router
        .route(Method::Get, "/healthz", |_req: &Request| {
            Response::ok("text/plain", &b"ok"[..])
        })
        .route(Method::Post, "/analyze", move |req: &Request| {
            let meta = meta_from_query(req.query());
            let mut ctx = AnalysisCtx::new(&catalog);
            let (result, _timings) = analyze_app_timed_with(meta, &req.body, &mut ctx);
            match result {
                Ok(analysis) => Response::ok(
                    "application/json",
                    analysis_json(&analysis, &ctx).into_bytes(),
                ),
                Err(e) => {
                    let mut resp =
                        Response::error(Status::UnprocessableEntity, &analysis_error_json(&e));
                    // error() defaults to text/plain; the taxonomy body is JSON.
                    resp.headers[0].1 = "application/json".into();
                    resp
                }
            }
        })
}

/// One router fronting both pipelines: static analysis (`/analyze`,
/// `/healthz`) plus the dynamic-crawl measurement endpoints (`/page`,
/// `/beacon`, `/netlog`, `/netlog/hosts`).
pub fn service_router(
    catalog: Arc<SdkIndex>,
    page_html: Arc<String>,
    store: BeaconStore,
    log: NetLog,
) -> Router {
    let router = analysis_routes(Router::new(), catalog);
    let router = beacon_routes(router, page_html, store);
    netlog_routes(router, log)
}

/// Build the [`AppMeta`] an analysis request is attributed to from the
/// optional query parameters `package`, `category`, and `downloads`.
/// Absent parameters take fixed defaults so identical requests always
/// analyze identically.
fn meta_from_query(query: Option<&str>) -> AppMeta {
    let pairs = query.map(parse_form).unwrap_or_default();
    let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
    AppMeta {
        package: get("package").unwrap_or("app.submitted").to_owned(),
        on_play_store: true,
        downloads: get("downloads")
            .and_then(|d| d.parse().ok())
            .unwrap_or(100_000),
        category: get("category")
            .and_then(PlayCategory::from_label)
            .unwrap_or(PlayCategory::Tools),
        last_update_day: 0,
    }
}

fn origin_str(origin: UrlOrigin) -> &'static str {
    match origin {
        UrlOrigin::Resolved => "resolved",
        UrlOrigin::Unknown => "unknown",
        UrlOrigin::Conflict => "conflict",
    }
}

fn label_str(label: LabelId, catalog: &SdkIndex) -> String {
    match label {
        LabelId::Sdk(idx) => catalog.sdks()[idx as usize].name.clone(),
        LabelId::CoreAndroid => "core-android".to_owned(),
        LabelId::Obfuscated => "obfuscated".to_owned(),
        LabelId::Unlabeled => "unlabeled".to_owned(),
    }
}

fn opt_sym_json(sym: Option<Symbol>, ctx: &AnalysisCtx<'_>) -> String {
    match sym {
        Some(s) => format!("\"{}\"", escape(ctx.lexicon.resolve(s))),
        None => "null".to_owned(),
    }
}

fn webview_site_json(s: &WebViewSiteSummary, ctx: &AnalysisCtx<'_>) -> String {
    format!(
        "{{\"method\":\"{}\",\"caller_class\":\"{}\",\"caller_package\":{},\"label\":\"{}\",\
         \"deep_link\":{},\"load_method\":{},\"argument\":{},\"origin\":\"{}\"}}",
        escape(ctx.lexicon.resolve(s.method)),
        escape(ctx.lexicon.resolve(s.caller_class)),
        opt_sym_json(s.caller_package.map(|p| p.symbol()), ctx),
        escape(&label_str(s.label, ctx.catalog)),
        s.in_deep_link_activity,
        s.is_load_method,
        opt_sym_json(s.argument, ctx),
        origin_str(s.origin),
    )
}

fn ct_site_json(s: &CtSiteSummary, ctx: &AnalysisCtx<'_>) -> String {
    format!(
        "{{\"method\":\"{}\",\"caller_class\":\"{}\",\"caller_package\":{},\"label\":\"{}\",\
         \"deep_link\":{},\"launch\":{},\"argument\":{},\"origin\":\"{}\"}}",
        escape(ctx.lexicon.resolve(s.method)),
        escape(ctx.lexicon.resolve(s.caller_class)),
        opt_sym_json(s.caller_package.map(|p| p.symbol()), ctx),
        escape(&label_str(s.label, ctx.catalog)),
        s.in_deep_link_activity,
        s.is_launch,
        opt_sym_json(s.argument, ctx),
        origin_str(s.origin),
    )
}

/// Render one [`AppAnalysis`] as the service's JSON document. Symbols are
/// resolved against the producing context's lexicon; every collection is
/// emitted in a deterministic order.
pub fn analysis_json(analysis: &AppAnalysis, ctx: &AnalysisCtx<'_>) -> String {
    let mut methods: Vec<&'static str> = analysis.methods_used().into_iter().collect();
    methods.sort_unstable();
    let methods: Vec<String> = methods
        .into_iter()
        .map(|m| format!("\"{}\"", escape(m)))
        .collect();
    let custom: Vec<String> = analysis
        .custom_webview_classes
        .iter()
        .map(|c| format!("\"{}\"", escape(ctx.lexicon.resolve(*c))))
        .collect();
    let wv: Vec<String> = analysis
        .webview_sites
        .iter()
        .map(|s| webview_site_json(s, ctx))
        .collect();
    let ct: Vec<String> = analysis
        .ct_sites
        .iter()
        .map(|s| ct_site_json(s, ctx))
        .collect();
    format!(
        "{{\"package\":\"{}\",\"category\":\"{}\",\"downloads\":{},\
         \"uses_webview\":{},\"uses_custom_tabs\":{},\"methods_used\":[{}],\
         \"custom_webview_classes\":[{}],\"unreachable_webview_sites\":{},\
         \"webview_sites\":[{}],\"ct_sites\":[{}]}}",
        escape(&analysis.package),
        escape(analysis.meta.category.label()),
        number(analysis.meta.downloads as f64),
        analysis.uses_webview(),
        analysis.uses_custom_tabs(),
        methods.join(","),
        custom.join(","),
        number(analysis.unreachable_webview_sites as f64),
        wv.join(","),
        ct.join(","),
    )
}

/// Flatten a live server's counters into `wla-report`'s renderable form.
pub fn server_stats_report(snap: &wla_net::ServerStatsSnapshot) -> wla_report::ServerStatsReport {
    wla_report::ServerStatsReport {
        accepted: snap.accepted,
        shed: snap.shed,
        active: snap.active,
        idle_closed: snap.idle_closed,
        requests: snap.requests,
        keepalive_requests: snap.keepalive_requests,
        parse_failures: snap.parse_failures,
        requests_per_connection: snap.requests_per_connection,
        p50_us: snap.p50_us,
        p99_us: snap.p99_us,
    }
}

/// The 422 body: the stable machine-readable error kind plus the human
/// detail line.
pub fn analysis_error_json(e: &ApkError) -> String {
    format!(
        "{{\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
        escape(e.kind()),
        escape(&e.to_string())
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_corpus::generator::{CorpusConfig, Generator};

    fn one_app() -> (AppMeta, Vec<u8>) {
        let catalog = SdkIndex::paper();
        let config = CorpusConfig {
            scale: 2_000,
            seed: 7,
            corrupt_fraction: 0.0,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, config).generate();
        let app = apps
            .into_iter()
            .find(|a| {
                wla_static::analyze::analyze_app(a.spec.meta.clone(), &a.bytes)
                    .map(|r| r.uses_webview())
                    .unwrap_or(false)
            })
            .expect("corpus contains a webview app");
        (app.spec.meta, app.bytes)
    }

    #[test]
    fn analyze_route_returns_analysis_json() {
        let catalog = Arc::new(SdkIndex::paper());
        let router = analysis_routes(Router::new(), Arc::clone(&catalog));
        let (meta, bytes) = one_app();
        let target = format!(
            "/analyze?package={}&category={}&downloads={}",
            wla_net::http::form_encode(&meta.package),
            wla_net::http::form_encode(meta.category.label()),
            meta.downloads
        );
        let resp = router.dispatch(&Request::post(target, bytes.clone()));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("\"uses_webview\":true"), "{body}");
        assert!(body.contains("\"webview_sites\":["), "{body}");

        // Deterministic: the same bytes produce the same document.
        let resp2 = router.dispatch(&Request::post(
            format!(
                "/analyze?package={}&category={}&downloads={}",
                wla_net::http::form_encode(&meta.package),
                wla_net::http::form_encode(meta.category.label()),
                meta.downloads
            ),
            bytes,
        ));
        assert_eq!(resp.body, resp2.body);
    }

    #[test]
    fn corrupted_container_is_422_with_error_kind() {
        let catalog = Arc::new(SdkIndex::paper());
        let router = analysis_routes(Router::new(), catalog);
        let resp = router.dispatch(&Request::post("/analyze", &b"not an sdex container"[..]));
        assert_eq!(resp.status, Status::UnprocessableEntity);
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("\"kind\":\"bad-magic\""), "{body}");
    }

    #[test]
    fn wrong_method_is_405() {
        let catalog = Arc::new(SdkIndex::paper());
        let router = analysis_routes(Router::new(), catalog);
        let resp = router.dispatch(&Request::get("/analyze"));
        assert_eq!(resp.status, Status::MethodNotAllowed);
        assert_eq!(resp.header("allow"), Some("POST"));
    }

    #[test]
    fn server_stats_report_renders_snapshot() {
        let snap = wla_net::ServerStatsSnapshot {
            accepted: 10,
            requests: 30,
            keepalive_requests: 20,
            requests_per_connection: 3.0,
            p50_us: 12.5,
            p99_us: 800.0,
            ..Default::default()
        };
        let rendered = server_stats_report(&snap).render();
        assert!(rendered.contains("HTTP server summary"), "{rendered}");
        assert!(rendered.contains("3.00"), "{rendered}");
        assert!(rendered.contains("800.0 us"), "{rendered}");
    }

    #[test]
    fn service_router_fronts_both_pipelines() {
        let catalog = Arc::new(SdkIndex::paper());
        let log = NetLog::new();
        let store = BeaconStore::default();
        let router = service_router(
            catalog,
            Arc::new("<html>page</html>".to_owned()),
            store.clone(),
            log.clone(),
        );
        assert_eq!(resp_status(&router, Request::get("/healthz")), Status::Ok);
        assert_eq!(resp_status(&router, Request::get("/page")), Status::Ok);
        let beacon = wla_net::beacon::encode_beacon("Document", "write", None, "com.x");
        assert_eq!(
            resp_status(&router, Request::post("/beacon", beacon.into_bytes())),
            Status::NoContent
        );
        assert_eq!(
            resp_status(
                &router,
                Request::post("/netlog", &b"source=1&url=https%3A%2F%2Fads.x%2Fb"[..])
            ),
            Status::NoContent
        );
        assert_eq!(store.records().len(), 1);
        assert_eq!(log.len(), 1);
    }

    fn resp_status(router: &Router, req: Request) -> Status {
        router.dispatch(&req).status
    }
}
