//! Per-experiment builders: one function per table/figure of the paper.
//!
//! Each returns an [`Experiment`]: the reproduced artifact (table and/or
//! rendered figure blocks) plus a paper-vs-measured [`Comparison`]. The
//! `exp_*` binaries in `wla-bench` are thin wrappers over these, and
//! EXPERIMENTS.md is generated from their output.

use crate::paper;
use crate::study::{CrawlRun, DynamicRun, FunnelRun, StaticRun, Study};
use wla_corpus::ecosystem::named_top_apps;
use wla_crawler::loadtime::{figure7_series, LoadContext, LoadMode};
use wla_crawler::EndpointKind;
use wla_report::{
    bar_chart, heatmap, percent, thousands, Comparison, CrawlStatsReport, PipelineStatsReport,
    Series, Table, UrlOriginReport,
};
use wla_sdk_index::SdkCategory;

/// One reproduced experiment.
#[derive(Debug)]
pub struct Experiment {
    /// Experiment id (`table2` … `fig7`).
    pub id: &'static str,
    /// The reproduced table (may be empty for pure figures).
    pub table: Table,
    /// Paper-vs-measured comparison.
    pub comparison: Comparison,
    /// Rendered figure blocks (bar charts, heatmaps, CSV).
    pub figures: Vec<String>,
}

/// Flatten a static run's [`wla_static::PipelineStats`] into the
/// renderer's plain-data report: counts, throughput, the per-stage timing
/// columns `exp_table2` prints, and the failure taxonomy.
pub fn pipeline_stats_report(run: &StaticRun) -> PipelineStatsReport {
    let s = &run.stats;
    let ms = |ns: u64| ns as f64 * 1e-6;
    let stages_ms = if s.stage.total_ns() == 0 {
        Vec::new()
    } else {
        vec![
            ("decode".to_owned(), ms(s.stage.decode_ns)),
            ("decompile".to_owned(), ms(s.stage.decompile_ns)),
            ("callgraph".to_owned(), ms(s.stage.callgraph_ns)),
            ("label".to_owned(), ms(s.stage.label_ns)),
        ]
    };
    PipelineStatsReport {
        total: s.total as u64,
        analyzed: s.analyzed as u64,
        broken: s.broken as u64,
        panicked: s.panicked as u64,
        wall_ms: ms(s.wall_ns),
        serial_tail_ms: ms(s.serial_tail_ns),
        apps_per_second: s.apps_per_second(),
        utilization: s.utilization(),
        workers: s.workers.len(),
        batch: s.batch,
        stages_ms,
        failure_kinds: s
            .failure_kinds
            .iter()
            .map(|(kind, count)| ((*kind).to_owned(), *count as u64))
            .collect(),
        interned_symbols: s.interner.global_symbols as u64,
        interned_bytes: s.interner.global_bytes as u64,
        intern_hit_rate: s.interner.local_hit_rate(),
        label_hit_rate: s.interner.label_hit_rate(),
        presize_hit_rate: s.interner.presize_hit_rate(),
        callgraph_edges: s.callgraph.edges,
        vtable_hit_rate: s.callgraph.vtable_hit_rate(),
        bitset_reuses: s.callgraph.bitset_reuses,
        edges_per_second: if s.stage.callgraph_ns > 0 {
            s.callgraph.edges_traversed as f64 / (s.stage.callgraph_ns as f64 * 1e-9)
        } else {
            0.0
        },
        decode_full: s.decode.full,
        decode_checksum_only: s.decode.checksum_only,
        decode_trusted: s.decode.trusted,
        lut_present: s.decode.lut_present,
        lut_rebuilds: s.decode.lut_rebuilds,
        dataflow_methods: s.dataflow.methods,
        dataflow_linear_rate: if s.dataflow.methods > 0 {
            s.dataflow.linear_methods as f64 / s.dataflow.methods as f64
        } else {
            0.0
        },
        dataflow_sites: s.dataflow.sites(),
        dataflow_resolved_rate: s.dataflow.resolved_rate(),
        shards_read: s.stream.shards_read as u64,
        shards_cached: s.stream.shards_cached as u64,
        shard_failures: s.stream.shard_failures as u64,
        shard_failure_kinds: s
            .stream
            .shard_failure_kinds
            .iter()
            .map(|(kind, count)| ((*kind).to_owned(), *count as u64))
            .collect(),
        entries_streamed: s.stream.entries_streamed as u64,
        entries_cached: s.stream.entries_cached as u64,
        bytes_mapped: s.stream.bytes_mapped,
        peak_mapped_bytes: s.stream.peak_mapped_bytes,
    }
}

/// Flatten a crawl run's [`wla_dynamic::CrawlStats`] into the renderer's
/// plain-data report.
pub fn crawl_stats_report(run: &CrawlRun) -> CrawlStatsReport {
    let s = &run.stats;
    let ms = |ns: u64| ns as f64 * 1e-6;
    CrawlStatsReport {
        visits_total: s.visits_total as u64,
        visits_completed: s.visits_completed as u64,
        visits_panicked: s.visits_panicked as u64,
        rows: s.rows as u64,
        sites: s.sites as u64,
        workers: s.workers.len(),
        batch: s.batch,
        steps_executed: s.steps_executed,
        requests_logged: s.requests_logged,
        wall_ms: ms(s.total_ns),
        prepare_ms: ms(s.prepare_ns),
        visit_ms: ms(s.visit_ns),
        merge_ms: ms(s.merge_ns),
        visits_per_second: if s.total_ns > 0 {
            s.visits_total as f64 / (s.total_ns as f64 * 1e-9)
        } else {
            0.0
        },
        utilization: s.utilization(),
        interned_symbols: s.interner.global_symbols as u64,
        interned_bytes: s.interner.global_bytes as u64,
        intern_hit_rate: {
            let total = s.interner.local_hits + s.interner.local_misses;
            if total > 0 {
                s.interner.local_hits as f64 / total as f64
            } else {
                0.0
            }
        },
        classify_hit_rate: s.classify_hit_rate(),
        failure_kinds: s
            .failure_kinds
            .iter()
            .map(|(kind, count)| ((*kind).to_owned(), *count as u64))
            .collect(),
    }
}

/// Table 2 — dataset funnel.
pub fn table2(study: &Study, funnel: &FunnelRun) -> Experiment {
    let mut t = Table::new(
        "Table 2: Statistics for apps that we statically analyze",
        &["Dataset", "No. of apps"],
    );
    t.row_owned(vec![
        "Play Store apps in Androzoo".into(),
        thousands(funnel.total),
    ]);
    t.row_owned(vec![
        "Apps found on Play Store".into(),
        thousands(funnel.found),
    ]);
    t.row_owned(vec![
        "Apps with 100k+ downloads".into(),
        thousands(funnel.popular),
    ]);
    t.row_owned(vec![
        "… and updated after 2021".into(),
        thousands(funnel.maintained),
    ]);
    t.row_owned(vec![
        format!("Apps successfully analyzed (rescaled ×{})", study.scale),
        thousands(funnel.analyzed_rescaled),
    ]);

    let mut c = Comparison::new("table2");
    c.tolerance = 0.05;
    c.add(
        "AndroZoo apps",
        paper::table2::ANDROZOO as f64,
        funnel.total as f64,
    );
    c.add(
        "Found on Play",
        paper::table2::FOUND as f64,
        funnel.found as f64,
    );
    c.add(
        "100K+ downloads",
        paper::table2::POPULAR as f64,
        funnel.popular as f64,
    );
    c.add(
        "Updated after 2021",
        paper::table2::MAINTAINED as f64,
        funnel.maintained as f64,
    );
    c.add(
        "Successfully analyzed",
        paper::table2::ANALYZED as f64,
        funnel.analyzed_rescaled as f64,
    );
    Experiment {
        id: "table2",
        table: t,
        comparison: c,
        figures: vec![],
    }
}

/// Table 3 — SDK counts by category × mechanism.
pub fn table3(_study: &Study, run: &StaticRun) -> Experiment {
    let mut t = Table::new(
        "Table 3: Statistics for use of WebViews and CTs in SDKs",
        &["Type of SDK", "Use WebViews", "Use CT", "Use both"],
    );
    let mut c = Comparison::new("table3");
    c.tolerance = 0.30;
    let (mut wv_total, mut ct_total, mut both_total) = (0u32, 0u32, 0u32);
    for &(label, p_wv, p_ct, p_both) in &paper::TABLE3 {
        let measured = run
            .results
            .sdk_type_counts
            .iter()
            .find(|r| r.category.label() == label);
        let (m_wv, m_ct, m_both) = measured
            .map(|r| (r.webview as u32, r.custom_tabs as u32, r.both as u32))
            .unwrap_or((0, 0, 0));
        wv_total += m_wv;
        ct_total += m_ct;
        both_total += m_both;
        t.row_owned(vec![
            label.into(),
            m_wv.to_string(),
            m_ct.to_string(),
            m_both.to_string(),
        ]);
        if p_wv >= 4 {
            c.add(format!("{label} (WebView SDKs)"), p_wv as f64, m_wv as f64);
        }
        if p_ct >= 4 {
            c.add(format!("{label} (CT SDKs)"), p_ct as f64, m_ct as f64);
        }
        let _ = p_both;
    }
    t.row_owned(vec![
        "Total".into(),
        wv_total.to_string(),
        ct_total.to_string(),
        both_total.to_string(),
    ]);
    c.add(
        "Total WebView SDKs",
        paper::TABLE3_TOTALS.0 as f64,
        wv_total as f64,
    );
    c.add(
        "Total CT SDKs",
        paper::TABLE3_TOTALS.1 as f64,
        ct_total as f64,
    );
    c.add(
        "Total both",
        paper::TABLE3_TOTALS.2 as f64,
        both_total as f64,
    );
    Experiment {
        id: "table3",
        table: t,
        comparison: c,
        figures: vec![],
    }
}

fn sdk_table(
    id: &'static str,
    title: &str,
    study: &Study,
    run: &StaticRun,
    custom_tabs: bool,
    paper_rows: &[(&str, u32)],
) -> Experiment {
    let count_of = |r: &wla_static::SdkUsageRow| if custom_tabs { r.ct_apps } else { r.wv_apps };
    let mut t = Table::new(title, &["Type of SDK", "SDK Name", "#apps (rescaled)"]);
    for cat in SdkCategory::ALL {
        let mut rows: Vec<&wla_static::SdkUsageRow> = run
            .results
            .sdk_usage
            .iter()
            .filter(|r| r.category == cat && count_of(r) > 0)
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(count_of(r)));
        for (i, r) in rows.iter().take(3).enumerate() {
            t.row_owned(vec![
                if i == 0 {
                    cat.label().into()
                } else {
                    String::new()
                },
                r.name.clone(),
                thousands(study.rescale(count_of(r))),
            ]);
        }
    }
    let mut c = Comparison::new(id);
    c.tolerance = 0.35;
    for &(name, p_apps) in paper_rows {
        // Only compare SDKs big enough to survive the scale factor.
        if (p_apps as u64) < 50 * study.scale as u64 {
            continue;
        }
        let measured = run
            .results
            .sdk_usage
            .iter()
            .find(|r| r.name == name)
            .map(|r| study.rescale(count_of(r)))
            .unwrap_or(0);
        c.add(name, p_apps as f64, measured as f64);
    }
    Experiment {
        id,
        table: t,
        comparison: c,
        figures: vec![],
    }
}

/// Table 4 — popular SDKs using WebViews.
pub fn table4(study: &Study, run: &StaticRun) -> Experiment {
    sdk_table(
        "table4",
        "Table 4: Popular SDKs which use WebViews",
        study,
        run,
        false,
        &paper::TABLE4_TOP,
    )
}

/// Table 5 — popular SDKs using CTs.
pub fn table5(study: &Study, run: &StaticRun) -> Experiment {
    sdk_table(
        "table5",
        "Table 5: Popular SDKs which use CTs",
        study,
        run,
        true,
        &paper::TABLE5_TOP,
    )
}

/// Table 6 — top-1K hyperlink-click classification.
pub fn table6(run: &DynamicRun) -> Experiment {
    let counts = &run.table6;
    let mut t = Table::new(
        "Table 6: Manual classification of hyperlink clicking behavior in the top 1K apps",
        &["Classification of apps", "#apps"],
    );
    let rows: &[(&str, usize)] = &[
        ("Users can post links.", counts.can_post_links),
        ("  Link opens in browser.", counts.opens_browser),
        ("  Link opens in a WebView.", counts.opens_webview),
        ("  Link opens in CT.", counts.opens_ct),
        ("Users can not post links.", counts.no_user_links),
        ("Browser Apps.", counts.browser_apps),
        ("Could not classify app.", counts.unclassifiable),
        ("  Required a phone number.", counts.required_phone),
        ("  App incompatibility error.", counts.incompatible),
        ("  Required paid account.", counts.required_paid),
    ];
    for (label, n) in rows {
        t.row_owned(vec![(*label).into(), n.to_string()]);
    }
    let mut c = Comparison::new("table6");
    c.tolerance = 0.0; // the classification must be exact
    c.add(
        "Can post links",
        paper::table6::CAN_POST as f64,
        counts.can_post_links as f64,
    );
    c.add(
        "Opens in browser",
        paper::table6::BROWSER as f64,
        counts.opens_browser as f64,
    );
    c.add(
        "Opens in WebView",
        paper::table6::WEBVIEW as f64,
        counts.opens_webview as f64,
    );
    c.add(
        "Opens in CT",
        paper::table6::CT as f64,
        counts.opens_ct as f64,
    );
    c.add(
        "No user links",
        paper::table6::NO_UGC as f64,
        counts.no_user_links as f64,
    );
    c.add(
        "Browser apps",
        paper::table6::BROWSER_APPS as f64,
        counts.browser_apps as f64,
    );
    c.add(
        "Unclassifiable",
        paper::table6::UNCLASSIFIED as f64,
        counts.unclassifiable as f64,
    );
    Experiment {
        id: "table6",
        table: t,
        comparison: c,
        figures: vec![],
    }
}

/// Table 7 — apps using WebViews/CTs with the per-method census.
pub fn table7(study: &Study, run: &StaticRun) -> Experiment {
    let r = &run.results;
    let mut t = Table::new(
        "Table 7: Statistics of the apps using WebViews and CTs (rescaled)",
        &["Dataset", "Total #apps", "#apps using top SDKs"],
    );
    t.row_owned(vec![
        "Apps using WebViews".into(),
        thousands(study.rescale(r.webview_apps)),
        thousands(study.rescale(r.webview_apps_via_top_sdks)),
    ]);
    for row in &r.method_census {
        t.row_owned(vec![
            format!("  {}", row.method),
            thousands(study.rescale(row.apps)),
            thousands(study.rescale(row.apps_via_top_sdks)),
        ]);
    }
    t.row_owned(vec![
        "Apps using CTs".into(),
        thousands(study.rescale(r.ct_apps)),
        thousands(study.rescale(r.ct_apps_via_top_sdks)),
    ]);
    t.row_owned(vec![
        "Apps using both WebViews and CTs".into(),
        thousands(study.rescale(r.both_apps)),
        thousands(study.rescale(r.both_apps_via_top_sdks)),
    ]);

    let mut c = Comparison::new("table7");
    c.tolerance = 0.20;
    c.add(
        "Apps using WebViews",
        paper::table7::WEBVIEW_APPS as f64,
        study.rescale(r.webview_apps) as f64,
    );
    c.add(
        "… via top SDKs",
        paper::table7::WEBVIEW_VIA_SDK as f64,
        study.rescale(r.webview_apps_via_top_sdks) as f64,
    );
    c.add(
        "Apps using CTs",
        paper::table7::CT_APPS as f64,
        study.rescale(r.ct_apps) as f64,
    );
    c.add(
        "… via top SDKs",
        paper::table7::CT_VIA_SDK as f64,
        study.rescale(r.ct_apps_via_top_sdks) as f64,
    );
    c.add(
        "Apps using both",
        paper::table7::BOTH_APPS as f64,
        study.rescale(r.both_apps) as f64,
    );
    for (method, p_total, p_via) in paper::TABLE7_METHODS {
        let measured = r.method_census.iter().find(|m| m.method == method);
        let (m_total, m_via) = measured
            .map(|m| (study.rescale(m.apps), study.rescale(m.apps_via_top_sdks)))
            .unwrap_or((0, 0));
        c.add(format!("{method} (total)"), p_total as f64, m_total as f64);
        c.add(format!("{method} (via SDKs)"), p_via as f64, m_via as f64);
    }
    Experiment {
        id: "table7",
        table: t,
        comparison: c,
        figures: vec![url_origin_report(run).table().render()],
    }
}

/// Flatten a static run's URL-origin census for the renderer. The site
/// counts are raw (not rescaled): they describe what the constant
/// propagation measured on the corpus actually analyzed.
pub fn url_origin_report(run: &StaticRun) -> UrlOriginReport {
    let c = &run.results.url_origin_census;
    UrlOriginReport {
        resolved_sites: c.resolved_sites as u64,
        unknown_sites: c.unknown_sites as u64,
        conflict_sites: c.conflict_sites as u64,
        apps_fully_resolved: c.apps_fully_resolved as u64,
        apps_with_unresolved: c.apps_with_unresolved as u64,
    }
}

/// Table 8 — the ten WebView-IAB apps and their injections.
pub fn table8(run: &DynamicRun) -> Experiment {
    let named = named_top_apps();
    let downloads_of = |pkg: &str| {
        named
            .iter()
            .find(|a| a.package == pkg)
            .map(|a| a.downloads)
            .unwrap_or(0)
    };
    let mut reports: Vec<&wla_dynamic::IabAppReport> = run.iab.reports.iter().collect();
    reports.sort_by_key(|r| std::cmp::Reverse(downloads_of(&r.package)));

    let mut t = Table::new(
        "Table 8: WebView injection and its inferred intents in WebView-based IABs",
        &[
            "Downloads",
            "App",
            "Via",
            "HTML/JS Injected",
            "JS Bridge Injected",
        ],
    );
    for r in &reports {
        let bridge_cell = if !r.injects_bridge {
            "No injection.".to_owned()
        } else if r.obfuscated_bridge {
            "(Obfuscated)".to_owned()
        } else {
            r.bridges.join(", ")
        };
        let js_cell = if r.injects_js {
            r.inferred_intents.join(" / ")
        } else {
            "No injection.".to_owned()
        };
        t.row_owned(vec![
            thousands(downloads_of(&r.package)),
            r.app_name.clone(),
            r.surface.clone(),
            js_cell,
            bridge_cell,
        ]);
    }

    // Paper's qualitative grid: which apps inject JS / bridges. Encode as
    // 0/1 comparisons so EXPERIMENTS.md shows exact agreement.
    let paper_grid: &[(&str, f64, f64)] = &[
        ("Facebook", 1.0, 1.0),
        ("Instagram", 1.0, 1.0),
        ("Snapchat", 0.0, 0.0),
        ("Twitter", 0.0, 0.0),
        ("LinkedIn", 1.0, 0.0),
        ("Pinterest", 0.0, 1.0),
        ("Moj", 1.0, 1.0),
        ("Chingari", 1.0, 1.0),
        ("Reddit", 0.0, 0.0),
        ("Kik", 1.0, 1.0),
    ];
    let mut c = Comparison::new("table8");
    c.tolerance = 0.0;
    for (app, p_js, p_bridge) in paper_grid {
        let r = run.iab.report(app).expect("report exists");
        c.add(
            format!("{app} injects JS"),
            *p_js,
            r.injects_js as u8 as f64,
        );
        c.add(
            format!("{app} injects bridge"),
            *p_bridge,
            r.injects_bridge as u8 as f64,
        );
    }
    Experiment {
        id: "table8",
        table: t,
        comparison: c,
        figures: vec![],
    }
}

/// Table 9 — Web APIs recorded by the controlled page server.
pub fn table9(run: &DynamicRun) -> Experiment {
    let mut t = Table::new(
        "Table 9: Web APIs accessed by apps, as recorded by our controlled web page server",
        &["App", "Interface", "Method"],
    );
    for r in &run.iab.reports {
        if r.web_api_usage.is_empty() {
            continue;
        }
        for (i, (iface, method)) in r.web_api_usage.iter().enumerate() {
            t.row_owned(vec![
                if i == 0 {
                    r.app_name.clone()
                } else {
                    String::new()
                },
                iface.clone(),
                method.clone(),
            ]);
        }
    }

    // Paper's Table 9 pairs for Facebook/Instagram and Kik.
    let meta_pairs: &[(&str, &str)] = &[
        ("Document", "getElementById"),
        ("Document", "createElement"),
        ("Document", "querySelectorAll"),
        ("Document", "getElementsByTagName"),
        ("Document", "addEventListener"),
        ("Document", "removeEventListener"),
        ("Element", "insertBefore"),
        ("Element", "hasAttribute"),
        ("Element", "getElementsByTagName"),
        ("HTMLBodyElement", "insertBefore"),
        ("HTMLCollection", "item"),
        ("NodeList", "item"),
        ("HTMLMetaElement", "getAttribute"),
    ];
    let kik_pairs: &[(&str, &str)] = &[
        ("HTMLDocument", "querySelectorAll"),
        ("HTMLMetaElement", "getAttribute"),
        ("Document", "querySelectorAll"),
    ];
    let mut c = Comparison::new("table9");
    c.tolerance = 0.0;
    for app in ["Facebook", "Instagram"] {
        let r = run.iab.report(app).expect("report");
        let hits = meta_pairs
            .iter()
            .filter(|(i, m)| {
                r.web_api_usage
                    .contains(&((*i).to_owned(), (*m).to_owned()))
            })
            .count();
        c.add(
            format!("{app}: Table 9 pairs observed"),
            meta_pairs.len() as f64,
            hits as f64,
        );
    }
    let kik = run.iab.report("Kik").expect("report");
    let kik_hits = kik_pairs
        .iter()
        .filter(|(i, m)| {
            kik.web_api_usage
                .contains(&((*i).to_owned(), (*m).to_owned()))
        })
        .count();
    c.add(
        "Kik: Table 9 pairs observed",
        kik_pairs.len() as f64,
        kik_hits as f64,
    );
    c.add(
        "Kik: extraneous pairs",
        0.0,
        (kik.web_api_usage.len() - kik_hits) as f64,
    );
    Experiment {
        id: "table9",
        table: t,
        comparison: c,
        figures: vec![],
    }
}

/// Figure 3 — SDK use-case distribution per top-10 app category.
pub fn fig3(_study: &Study, run: &StaticRun) -> Experiment {
    let render_panel = |title: &str, rows: &[wla_static::CategoryBreakdown]| {
        let mut t = Table::new(
            title,
            &["App category", "Total", "Breakdown (SDK type: share)"],
        );
        for row in rows {
            let breakdown = row
                .by_sdk_category
                .iter()
                .map(|(cat, n)| {
                    format!("{}: {}", cat.label(), percent(*n as f64 / row.total as f64))
                })
                .collect::<Vec<_>>()
                .join(", ");
            t.row_owned(vec![
                row.play_category.label().into(),
                row.total.to_string(),
                breakdown,
            ]);
        }
        t.render()
    };
    let wv_panel = render_panel(
        "Figure 3 (left): use-cases per app category — WebView SDKs",
        &run.results.category_webview,
    );
    let ct_panel = render_panel(
        "Figure 3 (right): use-cases per app category — CT SDKs",
        &run.results.category_ct,
    );

    // Shape checks the paper states: education apps use a lower proportion
    // of ad SDKs (44%) and a higher proportion of payment SDKs (~16.2%);
    // gaming categories appear in the CT panel (social SDKs).
    let mut c = Comparison::new("fig3");
    c.tolerance = 0.5;
    if let Some(edu) = run
        .results
        .category_webview
        .iter()
        .find(|r| r.play_category.label() == "Education")
    {
        let share = |cat: SdkCategory| {
            edu.by_sdk_category
                .iter()
                .find(|(c2, _)| *c2 == cat)
                .map(|(_, n)| *n as f64 / edu.total as f64)
                .unwrap_or(0.0)
        };
        c.add(
            "Education: ad-SDK share",
            0.44,
            share(SdkCategory::Advertising),
        );
        c.add(
            "Education: payment-SDK share",
            0.162,
            share(SdkCategory::Payments),
        );
    }
    let games_in_ct_top10 = run
        .results
        .category_ct
        .iter()
        .filter(|r| r.play_category.is_game())
        .count();
    c.add(
        "Gaming categories in CT top-10",
        4.0,
        games_in_ct_top10 as f64,
    );

    Experiment {
        id: "fig3",
        table: Table::new("Figure 3 — see panels", &[]),
        comparison: c,
        figures: vec![wv_panel, ct_panel],
    }
}

/// Figure 4 — heatmap of WebView API method calls by SDK type.
pub fn fig4(_study: &Study, run: &StaticRun) -> Experiment {
    let rows = &run.results.heatmap;
    let row_labels: Vec<String> = rows.iter().map(|r| r.category.label().to_owned()).collect();
    let col_labels: Vec<String> = wla_corpus::METHODS
        .iter()
        .map(|m| (*m).to_owned())
        .collect();
    let values: Vec<Vec<f64>> = rows.iter().map(|r| r.method_fraction.to_vec()).collect();
    let rendered = heatmap(
        "Figure 4: WebView API method calls made by apps via SDKs (P(method | SDK type))",
        &row_labels,
        &col_labels,
        &values,
    );

    let mut c = Comparison::new("fig4");
    c.tolerance = 0.25;
    let cell = |cat: SdkCategory, method_idx: usize| {
        rows.iter()
            .find(|r| r.category == cat)
            .map(|r| r.method_fraction[method_idx])
            .unwrap_or(0.0)
    };
    // §4.1.1: >45% of ad-SDK apps expose a JS bridge; >30% inject JS.
    c.add(
        "Ads: addJavascriptInterface",
        0.45,
        cell(SdkCategory::Advertising, 1),
    );
    c.add(
        "Ads: evaluateJavascript",
        0.30,
        cell(SdkCategory::Advertising, 3),
    );
    // §4.1.4: 48.5% of payment apps expose a bridge.
    c.add(
        "Payments: addJavascriptInterface",
        0.485,
        cell(SdkCategory::Payments, 1),
    );
    // §4.1.5: 100% of user-support apps load local data; 45.9% loadUrl.
    c.add(
        "User support: loadDataWithBaseURL",
        1.0,
        cell(SdkCategory::UserSupport, 2),
    );
    c.add(
        "User support: loadUrl",
        0.459,
        cell(SdkCategory::UserSupport, 0),
    );

    Experiment {
        id: "fig4",
        table: Table::new("Figure 4 — see heatmap", &[]),
        comparison: c,
        figures: vec![rendered],
    }
}

/// Figures 6a/6b — endpoints contacted by LinkedIn's and Kik's IABs.
pub fn fig6(run: &CrawlRun) -> Experiment {
    let mut figures = Vec::new();
    let mut c = Comparison::new("fig6");
    c.tolerance = 1.0; // the paper states lower bounds, not point values

    for (app, paper_floor, metric_name) in [
        (
            "LinkedIn",
            paper::FIG6A_MIN_TRACKERS_RICH,
            "trackers on News",
        ),
        ("Kik", paper::FIG6B_MIN_ENDPOINTS_RICH, "endpoints on News"),
    ] {
        if let Some(rows) = run.figure_for(app) {
            let mut series = Series::new(format!("{app}: avg IAB-specific endpoints per visit"));
            for row in rows {
                series.point(row.category.label(), row.avg_endpoints);
            }
            figures.push(bar_chart(&series, 40));

            if let Some(news) = rows.iter().find(|r| r.category.label() == "News") {
                let measured = if app == "LinkedIn" {
                    news.by_kind
                        .get(&EndpointKind::Tracker)
                        .copied()
                        .unwrap_or(0.0)
                } else {
                    news.avg_endpoints
                };
                c.add(format!("{app}: {metric_name}"), paper_floor, measured);
            }
            if let (Some(news), Some(search)) = (
                rows.iter().find(|r| r.category.label() == "News"),
                rows.iter().find(|r| r.category.label() == "Search"),
            ) {
                c.add(
                    format!("{app}: News > Search ordering"),
                    1.0,
                    (news.avg_endpoints > search.avg_endpoints) as u8 as f64,
                );
            }
        }
    }
    Experiment {
        id: "fig6",
        table: Table::new("Figures 6a/6b — see bar charts", &[]),
        comparison: c,
        figures,
    }
}

/// Figure 7 — page-load time comparison.
pub fn fig7() -> Experiment {
    let page_kb = 600;
    let series_data = figure7_series(page_kb);
    let mut series = Series::new(format!("Figure 7: load time (ms) for a {page_kb}KB page"));
    let mut t = Table::new(
        "Figure 7: page-load time by mechanism",
        &["Mechanism", "Load time (ms)"],
    );
    for (mode, ms) in &series_data {
        series.point(mode.label(), *ms as f64);
        t.row_owned(vec![mode.label().into(), ms.to_string()]);
    }
    let chart = bar_chart(&series, 40);

    let ct = series_data
        .iter()
        .find(|(m, _)| *m == LoadMode::CustomTab)
        .map(|(_, t)| *t)
        .unwrap_or(1);
    let wv = series_data
        .iter()
        .find(|(m, _)| *m == LoadMode::WebView)
        .map(|(_, t)| *t)
        .unwrap_or(1);
    let mut c = Comparison::new("fig7");
    c.tolerance = 0.25;
    c.add(
        "WebView/CT load-time ratio",
        paper::FIG7_CT_SPEEDUP,
        wv as f64 / ct as f64,
    );
    // Cold (un-warmed) CT is still faster than a WebView.
    let cold_ct = wla_crawler::load_time_ms(
        LoadMode::CustomTab,
        LoadContext {
            page_weight_kb: page_kb,
            ct_prewarmed: false,
        },
    );
    c.add(
        "Cold CT still beats WebView",
        1.0,
        (cold_ct < wv) as u8 as f64,
    );

    Experiment {
        id: "fig7",
        table: t,
        comparison: c,
        figures: vec![chart],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> (Study, StaticRun) {
        let study = Study::new(1_000, 99);
        let run = study.run_static();
        (study, run)
    }

    #[test]
    fn pipeline_stats_report_flattens_the_run() {
        let (_study, run) = small_study();
        let report = pipeline_stats_report(&run);
        assert_eq!(report.total, run.stats.total as u64);
        assert_eq!(report.analyzed + report.broken, report.total);
        assert_eq!(report.stages_ms.len(), 4);
        assert!(report.apps_per_second > 0.0);
        // The serial-tail and interner pre-size observability flows through.
        assert!(report.serial_tail_ms > 0.0);
        assert!(report.presize_hit_rate > 0.0 && report.presize_hit_rate <= 1.0);
        assert!(report.render().contains("serial tail"));
        // Call-graph observability flows through: edges were built, the
        // traversal speed is derived from the callgraph stage timer, and
        // the hit rate is a valid fraction.
        assert_eq!(report.callgraph_edges, run.stats.callgraph.edges);
        assert!(report.callgraph_edges > 0);
        assert!(report.edges_per_second > 0.0);
        assert!((0.0..=1.0).contains(&report.vtable_hit_rate));
        let rendered = report.render();
        assert!(rendered.contains("Pipeline run summary"));
        assert!(rendered.contains("decode"));
        assert!(rendered.contains("Call-graph edges (CSR)"));
        // Dataflow observability flows through: the pass ran over every
        // invoke (generic calls stay unresolved, so the rate is a proper
        // fraction — the URL-only 100% lives in the census), and renders.
        assert!(report.dataflow_methods > 0);
        assert!((0.0..=1.0).contains(&report.dataflow_linear_rate));
        assert!(report.dataflow_sites > 0);
        assert!(report.dataflow_resolved_rate > 0.0 && report.dataflow_resolved_rate < 1.0);
        assert!(rendered.contains("Invokes resolved to consts"));
        // In-memory runs carry an all-zero stream section and render no
        // shard-streaming table.
        assert_eq!(report.shards_read + report.shards_cached, 0);
        assert!(!rendered.contains("Shard streaming"));
    }

    #[test]
    fn crawl_stats_report_flattens_the_run() {
        let study = Study::default_experiment();
        let run = study.run_crawl_parallel(
            Some(&["Kik"]),
            wla_dynamic::CrawlConfig {
                workers: 2,
                batch: 0,
                oversubscribe: true,
            },
        );
        let report = crawl_stats_report(&run);
        assert_eq!(report.visits_total, 200); // (baseline + Kik) x 100 sites
        assert_eq!(report.visits_completed, report.visits_total);
        assert_eq!(report.visits_panicked, 0);
        assert_eq!(report.workers, 2);
        assert!(report.visits_per_second > 0.0);
        assert!(report.intern_hit_rate > 0.0);
        assert!(report.classify_hit_rate > 0.0);
        let rendered = report.render();
        assert!(rendered.contains("Crawl run summary"));
        assert!(rendered.contains("2 rows x 100 sites = 200"));
        assert!(rendered.contains("Crawl phase timing"));
        assert!(!rendered.contains("Crawl failure taxonomy"));
    }

    #[test]
    fn streamed_stats_flow_through_the_report() {
        let study = Study::new(4_000, 11);
        let dir = std::env::temp_dir().join(format!("wla-exp-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run = study
            .run_static_streamed(&dir, wla_static::StreamConfig::default())
            .unwrap();
        let report = pipeline_stats_report(&run);
        assert!(report.shards_read > 0);
        assert_eq!(report.entries_streamed, report.total);
        let rendered = report.render();
        assert!(rendered.contains("Shard streaming"));
        assert!(rendered.contains("Entries streamed"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table3_builds() {
        let (study, run) = small_study();
        let exp = table3(&study, &run);
        assert!(exp.table.rows.len() == 11); // 10 categories + total
    }

    #[test]
    fn table7_builds_with_all_methods() {
        let (study, run) = small_study();
        let exp = table7(&study, &run);
        // header row count: 1 webview + 7 methods + ct + both.
        assert_eq!(exp.table.rows.len(), 10);
        assert!(!exp.comparison.rows.is_empty());
        // The URL-origin census rides along as a figure block, and the
        // generated corpus resolves fully.
        assert_eq!(exp.figures.len(), 1);
        assert!(exp.figures[0].contains("URL-origin census"));
        let census = url_origin_report(&run);
        assert!(census.resolved_sites > 0);
        assert_eq!(census.unknown_sites + census.conflict_sites, 0);
        assert_eq!(census.apps_with_unresolved, 0);
    }

    #[test]
    fn fig7_matches_paper_ratio() {
        let exp = fig7();
        assert!(
            exp.comparison.match_fraction() == 1.0,
            "{:?}",
            exp.comparison
        );
    }

    #[test]
    fn table6_and_8_and_9_from_dynamic_run() {
        let study = Study::new(1_000, 3);
        let dyn_run = study.run_dynamic();
        let t6 = table6(&dyn_run);
        assert_eq!(t6.comparison.match_fraction(), 1.0, "{:?}", t6.comparison);
        let t8 = table8(&dyn_run);
        assert_eq!(t8.comparison.match_fraction(), 1.0, "{:?}", t8.comparison);
        assert_eq!(t8.table.rows.len(), 10);
        let t9 = table9(&dyn_run);
        assert_eq!(t9.comparison.match_fraction(), 1.0, "{:?}", t9.comparison);
    }
}
