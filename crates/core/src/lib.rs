//! # wla-core — public API of the reproduction
//!
//! One façade over the whole system: configure a [`Study`] (scale + seed),
//! run the paper's three measurement campaigns, and materialize every
//! table and figure of the evaluation with paper-vs-measured comparisons.
//!
//! ```
//! use wla_core::Study;
//!
//! // A tiny-scale study (1:2000 ⇒ ~73 apps) for doc-test speed.
//! let study = Study::new(2_000, 42);
//! let static_run = study.run_static();
//! let t7 = wla_core::experiments::table7(&study, &static_run);
//! assert!(t7.comparison.match_fraction() > 0.0);
//! println!("{}", t7.table.render());
//! ```
//!
//! Crate map (bottom-up): [`wla_apk`] (SDEX/SAPK formats) → [`wla_manifest`]
//! → [`wla_sdk_index`] → [`wla_corpus`] (calibrated generator) →
//! [`wla_decompile`] + [`wla_callgraph`] → [`wla_static`] (§3.1 pipeline);
//! [`wla_net`] (loopback HTTP) → [`wla_web`] (DOM + interception) →
//! [`wla_device`] (simulated Android) → [`wla_crawler`] → [`wla_dynamic`]
//! (§3.2 pipeline); [`wla_report`] renders. See DESIGN.md for the full
//! inventory and EXPERIMENTS.md for results.

pub mod experiments;
pub mod paper;
pub mod service;
pub mod study;

pub use service::{analysis_routes, server_stats_report, service_router};
pub use study::{CrawlRun, DynamicRun, FunnelRun, StaticRun, Study};

// Re-export the sub-crates so downstream users need only one dependency.
pub use wla_apk;
pub use wla_callgraph;
pub use wla_corpus;
pub use wla_crawler;
pub use wla_decompile;
pub use wla_device;
pub use wla_dynamic;
pub use wla_intern;
pub use wla_manifest;
pub use wla_net;
pub use wla_report;
pub use wla_sdk_index;
pub use wla_static;
pub use wla_web;
