//! The synthetic top-site list and per-category content models.
//!
//! The paper samples 100 sites from Chrome's CrUX top-1K origins. Here the
//! list is synthesized: ten categories × ten sites, each with a content
//! model whose richness drives (a) how many subresources and third-party
//! calls the *site itself* makes and (b) how much IAB-injected machinery
//! activates (Figure 6's x-axis effect).

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use wla_device::webview::{PageSource, PreparedPage};
use wla_web::Document;

/// Site categories (Sitereview-style; the x-axis of Figures 6a/6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SiteCategory {
    /// News sites — richest pages.
    News,
    /// Streaming/entertainment.
    Entertainment,
    /// E-commerce.
    Shopping,
    /// Social networks.
    Social,
    /// Travel booking.
    Travel,
    /// Banking/finance.
    Finance,
    /// Reference works.
    Reference,
    /// Education.
    Education,
    /// Technology vendors.
    Technology,
    /// Search engines — leanest pages.
    Search,
}

impl SiteCategory {
    /// All categories, richest first.
    pub const ALL: [SiteCategory; 10] = [
        SiteCategory::News,
        SiteCategory::Entertainment,
        SiteCategory::Shopping,
        SiteCategory::Social,
        SiteCategory::Travel,
        SiteCategory::Finance,
        SiteCategory::Reference,
        SiteCategory::Education,
        SiteCategory::Technology,
        SiteCategory::Search,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SiteCategory::News => "News",
            SiteCategory::Entertainment => "Entertainment",
            SiteCategory::Shopping => "Shopping",
            SiteCategory::Social => "Social",
            SiteCategory::Travel => "Travel",
            SiteCategory::Finance => "Finance",
            SiteCategory::Reference => "Reference",
            SiteCategory::Education => "Education",
            SiteCategory::Technology => "Technology",
            SiteCategory::Search => "Search",
        }
    }

    /// Content richness on a 0–10 scale ("for websites with rich content,
    /// such as News, Entertainment, and Shopping, LinkedIn's IAB contacted
    /// more trackers … smaller for Search or Technology websites,
    /// presumably because they contained less content", §4.2.2).
    pub fn richness(self) -> u8 {
        match self {
            SiteCategory::News => 9,
            SiteCategory::Entertainment => 8,
            SiteCategory::Shopping => 8,
            SiteCategory::Social => 7,
            SiteCategory::Travel => 6,
            SiteCategory::Finance => 5,
            SiteCategory::Reference => 4,
            SiteCategory::Education => 4,
            SiteCategory::Technology => 3,
            SiteCategory::Search => 2,
        }
    }

    /// Approximate page weight in KB (drives the Figure 7 load model).
    pub fn page_weight_kb(self) -> u32 {
        60 + self.richness() as u32 * 140
    }
}

/// One crawled site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopSite {
    /// CrUX-style rank (1-based).
    pub rank: u32,
    /// Landing host.
    pub host: String,
    /// Category.
    pub category: SiteCategory,
}

impl TopSite {
    /// Landing-page URL.
    pub fn url(&self) -> String {
        format!("https://{}/", self.host)
    }

    /// Freshly generated synthetic page source for this site — regenerates
    /// the markup and re-parses on load (the seed crawl path).
    pub fn synthetic_source(&self) -> PageSource {
        PageSource::Synthetic {
            url: self.url(),
            html: site_html(self),
            extra_requests: site_extra_requests(self),
        }
    }
}

/// Prepare a site's page once — DOM and resolved subresource URL list —
/// for sharing across every visit to that site. Builds the document and
/// its resolved fetch list directly from the same recipe [`site_html`]
/// renders, skipping the markup/parse/DOM-walk round-trip;
/// `site_page_matches_parsed_markup` pins the two paths node-for-node and
/// URL-for-URL over the whole corpus.
pub fn site_page(site: &TopSite) -> PreparedPage {
    let r = site.category.richness() as usize;
    let mut doc = Document::new();
    let head = doc.head().expect("skeleton");
    let body = doc.body().expect("skeleton");
    // Resolved subresources accumulate in document order — the order
    // `collect_subresource_urls` walks the parsed DOM.
    let mut sub_urls: Vec<Arc<str>> = Vec::with_capacity(10 + r / 2);

    let meta = doc.alloc_element("meta");
    doc.set_attr(meta, "name", "description");
    doc.set_attr(meta, "content", &format!("{} landing", site.host));
    doc.append_child(head, meta);
    let link = doc.alloc_element("link");
    doc.set_attr(link, "href", "/static/site.css");
    doc.append_child(head, link);
    sub_urls.push(format!("https://{}/static/site.css", site.host).into());

    let h1 = doc.alloc_element("h1");
    let title = doc.alloc_text(&site.host);
    doc.append_child(h1, title);
    doc.append_child(body, h1);
    for p in 0..(2 + r) {
        let para = doc.alloc_element("p");
        let text = doc.alloc_text(&format!(
            "Article paragraph {p} with body copy for {}.",
            site.category.label()
        ));
        doc.append_child(para, text);
        doc.append_child(body, para);
    }
    for img in 0..(1 + r / 2) {
        let el = doc.alloc_element("img");
        doc.set_attr(el, "src", &format!("/media/img{img}.jpg"));
        doc.append_child(body, el);
        sub_urls.push(format!("https://{}/media/img{img}.jpg", site.host).into());
    }
    let mut script = |doc: &mut Document, src: &str, resolved: Arc<str>| {
        let el = doc.alloc_element("script");
        doc.set_attr(el, "src", src);
        doc.append_child(body, el);
        sub_urls.push(resolved);
    };
    script(
        &mut doc,
        "/static/bundle.js",
        format!("https://{}/static/bundle.js", site.host).into(),
    );
    script(
        &mut doc,
        "https://analytics.site-metrics.net/ga.js",
        "https://analytics.site-metrics.net/ga.js".into(),
    );
    if r >= 5 {
        script(
            &mut doc,
            "https://static.site-ads.net/slot.js",
            "https://static.site-ads.net/slot.js".into(),
        );
        let ins = doc.alloc_element("ins");
        doc.set_attr(ins, "class", "adsbygoogle");
        doc.append_child(body, ins);
    }
    if r >= 8 {
        script(
            &mut doc,
            "https://cdn.tag-manager.net/tm.js",
            "https://cdn.tag-manager.net/tm.js".into(),
        );
        let frame = doc.alloc_element("iframe");
        doc.set_attr(frame, "src", "https://video.player-cdn.net/embed");
        doc.append_child(body, frame);
        sub_urls.push("https://video.player-cdn.net/embed".into());
    }

    // The site's own non-DOM requests (`site_extra_requests`) close the
    // fetch list, as `PreparedPage::from_document` appends them.
    sub_urls.push(format!("https://{}/api/config", site.host).into());
    if r >= 6 {
        sub_urls.push("https://beacons.site-metrics.net/v1/collect".into());
    }

    PreparedPage {
        url: site.url().into(),
        doc: Arc::new(doc),
        sub_urls,
        readonly: Default::default(),
    }
}

/// The 100-site list: ten per category, deterministic.
pub fn top_100_sites() -> Vec<TopSite> {
    let mut sites = Vec::with_capacity(100);
    let mut rank = 1;
    for cat in SiteCategory::ALL {
        for i in 0..10 {
            sites.push(TopSite {
                rank,
                host: format!("{}{i}.example-{}.com", cat.label().to_lowercase(), rank),
                category: cat,
            });
            rank += 1;
        }
    }
    sites
}

/// Generate the landing-page HTML for a site: headline content plus
/// richness-scaled subresources and the site's *own* third-party calls.
pub fn site_html(site: &TopSite) -> String {
    let r = site.category.richness() as usize;
    let mut html = String::with_capacity(2048);
    html.push_str(&format!(
        "<html><head><meta name=\"description\" content=\"{} landing\">\
         <link href=\"/static/site.css\"></head><body>",
        site.host
    ));
    html.push_str(&format!("<h1>{}</h1>", site.host));
    for p in 0..(2 + r) {
        html.push_str(&format!(
            "<p>Article paragraph {p} with body copy for {}.</p>",
            site.category.label()
        ));
    }
    for img in 0..(1 + r / 2) {
        html.push_str(&format!("<img src=\"/media/img{img}.jpg\">"));
    }
    // First-party app bundle.
    html.push_str("<script src=\"/static/bundle.js\"></script>");
    // The site's own third parties, richness-scaled: analytics always,
    // ad slots on rich pages.
    html.push_str("<script src=\"https://analytics.site-metrics.net/ga.js\"></script>");
    if r >= 5 {
        html.push_str("<script src=\"https://static.site-ads.net/slot.js\"></script>");
        html.push_str("<ins class=\"adsbygoogle\"></ins>");
    }
    if r >= 8 {
        html.push_str("<script src=\"https://cdn.tag-manager.net/tm.js\"></script>");
        html.push_str("<iframe src=\"https://video.player-cdn.net/embed\"></iframe>");
    }
    html.push_str("</body></html>");
    html
}

/// Extra (non-DOM) requests the site itself fires, e.g. XHR beacons.
pub fn site_extra_requests(site: &TopSite) -> Vec<String> {
    let mut extra = vec![format!("https://{}/api/config", site.host)];
    if site.category.richness() >= 6 {
        extra.push("https://beacons.site-metrics.net/v1/collect".to_owned());
    }
    extra
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_page_matches_parsed_markup() {
        // The direct document build must equal the markup round-trip
        // node-for-node (same arena order, attributes, and text), and the
        // resolved fetch list must match URL-for-URL.
        for site in top_100_sites() {
            let direct = site_page(&site);
            let parsed = PreparedPage::from_markup(
                &site.url(),
                &site_html(&site),
                &site_extra_requests(&site),
            );
            assert_eq!(*direct.doc, *parsed.doc, "{}", site.host);
            assert_eq!(direct.sub_urls, parsed.sub_urls, "{}", site.host);
            assert_eq!(direct.url, parsed.url);
        }
    }

    #[test]
    fn exactly_one_hundred_sites_ten_per_category() {
        let sites = top_100_sites();
        assert_eq!(sites.len(), 100);
        for cat in SiteCategory::ALL {
            assert_eq!(sites.iter().filter(|s| s.category == cat).count(), 10);
        }
        // Ranks unique 1..=100.
        let mut ranks: Vec<u32> = sites.iter().map(|s| s.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn richness_ordering_matches_paper_narrative() {
        assert!(SiteCategory::News.richness() > SiteCategory::Search.richness());
        assert!(SiteCategory::Shopping.richness() > SiteCategory::Technology.richness());
    }

    #[test]
    fn rich_sites_have_more_subresources() {
        let sites = top_100_sites();
        let news = sites
            .iter()
            .find(|s| s.category == SiteCategory::News)
            .unwrap();
        let search = sites
            .iter()
            .find(|s| s.category == SiteCategory::Search)
            .unwrap();
        let news_scripts = site_html(news).matches("<script").count();
        let search_scripts = site_html(search).matches("<script").count();
        assert!(news_scripts > search_scripts);
    }

    #[test]
    fn list_is_deterministic() {
        assert_eq!(top_100_sites(), top_100_sites());
    }
}
