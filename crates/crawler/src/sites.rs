//! The synthetic top-site list and per-category content models.
//!
//! The paper samples 100 sites from Chrome's CrUX top-1K origins. Here the
//! list is synthesized: ten categories × ten sites, each with a content
//! model whose richness drives (a) how many subresources and third-party
//! calls the *site itself* makes and (b) how much IAB-injected machinery
//! activates (Figure 6's x-axis effect).

use serde::{Deserialize, Serialize};

/// Site categories (Sitereview-style; the x-axis of Figures 6a/6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SiteCategory {
    /// News sites — richest pages.
    News,
    /// Streaming/entertainment.
    Entertainment,
    /// E-commerce.
    Shopping,
    /// Social networks.
    Social,
    /// Travel booking.
    Travel,
    /// Banking/finance.
    Finance,
    /// Reference works.
    Reference,
    /// Education.
    Education,
    /// Technology vendors.
    Technology,
    /// Search engines — leanest pages.
    Search,
}

impl SiteCategory {
    /// All categories, richest first.
    pub const ALL: [SiteCategory; 10] = [
        SiteCategory::News,
        SiteCategory::Entertainment,
        SiteCategory::Shopping,
        SiteCategory::Social,
        SiteCategory::Travel,
        SiteCategory::Finance,
        SiteCategory::Reference,
        SiteCategory::Education,
        SiteCategory::Technology,
        SiteCategory::Search,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SiteCategory::News => "News",
            SiteCategory::Entertainment => "Entertainment",
            SiteCategory::Shopping => "Shopping",
            SiteCategory::Social => "Social",
            SiteCategory::Travel => "Travel",
            SiteCategory::Finance => "Finance",
            SiteCategory::Reference => "Reference",
            SiteCategory::Education => "Education",
            SiteCategory::Technology => "Technology",
            SiteCategory::Search => "Search",
        }
    }

    /// Content richness on a 0–10 scale ("for websites with rich content,
    /// such as News, Entertainment, and Shopping, LinkedIn's IAB contacted
    /// more trackers … smaller for Search or Technology websites,
    /// presumably because they contained less content", §4.2.2).
    pub fn richness(self) -> u8 {
        match self {
            SiteCategory::News => 9,
            SiteCategory::Entertainment => 8,
            SiteCategory::Shopping => 8,
            SiteCategory::Social => 7,
            SiteCategory::Travel => 6,
            SiteCategory::Finance => 5,
            SiteCategory::Reference => 4,
            SiteCategory::Education => 4,
            SiteCategory::Technology => 3,
            SiteCategory::Search => 2,
        }
    }

    /// Approximate page weight in KB (drives the Figure 7 load model).
    pub fn page_weight_kb(self) -> u32 {
        60 + self.richness() as u32 * 140
    }
}

/// One crawled site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopSite {
    /// CrUX-style rank (1-based).
    pub rank: u32,
    /// Landing host.
    pub host: String,
    /// Category.
    pub category: SiteCategory,
}

impl TopSite {
    /// Landing-page URL.
    pub fn url(&self) -> String {
        format!("https://{}/", self.host)
    }
}

/// The 100-site list: ten per category, deterministic.
pub fn top_100_sites() -> Vec<TopSite> {
    let mut sites = Vec::with_capacity(100);
    let mut rank = 1;
    for cat in SiteCategory::ALL {
        for i in 0..10 {
            sites.push(TopSite {
                rank,
                host: format!("{}{i}.example-{}.com", cat.label().to_lowercase(), rank),
                category: cat,
            });
            rank += 1;
        }
    }
    sites
}

/// Generate the landing-page HTML for a site: headline content plus
/// richness-scaled subresources and the site's *own* third-party calls.
pub fn site_html(site: &TopSite) -> String {
    let r = site.category.richness() as usize;
    let mut html = String::with_capacity(2048);
    html.push_str(&format!(
        "<html><head><meta name=\"description\" content=\"{} landing\">\
         <link href=\"/static/site.css\"></head><body>",
        site.host
    ));
    html.push_str(&format!("<h1>{}</h1>", site.host));
    for p in 0..(2 + r) {
        html.push_str(&format!(
            "<p>Article paragraph {p} with body copy for {}.</p>",
            site.category.label()
        ));
    }
    for img in 0..(1 + r / 2) {
        html.push_str(&format!("<img src=\"/media/img{img}.jpg\">"));
    }
    // First-party app bundle.
    html.push_str("<script src=\"/static/bundle.js\"></script>");
    // The site's own third parties, richness-scaled: analytics always,
    // ad slots on rich pages.
    html.push_str("<script src=\"https://analytics.site-metrics.net/ga.js\"></script>");
    if r >= 5 {
        html.push_str("<script src=\"https://static.site-ads.net/slot.js\"></script>");
        html.push_str("<ins class=\"adsbygoogle\"></ins>");
    }
    if r >= 8 {
        html.push_str("<script src=\"https://cdn.tag-manager.net/tm.js\"></script>");
        html.push_str("<iframe src=\"https://video.player-cdn.net/embed\"></iframe>");
    }
    html.push_str("</body></html>");
    html
}

/// Extra (non-DOM) requests the site itself fires, e.g. XHR beacons.
pub fn site_extra_requests(site: &TopSite) -> Vec<String> {
    let mut extra = vec![format!("https://{}/api/config", site.host)];
    if site.category.richness() >= 6 {
        extra.push("https://beacons.site-metrics.net/v1/collect".to_owned());
    }
    extra
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_hundred_sites_ten_per_category() {
        let sites = top_100_sites();
        assert_eq!(sites.len(), 100);
        for cat in SiteCategory::ALL {
            assert_eq!(sites.iter().filter(|s| s.category == cat).count(), 10);
        }
        // Ranks unique 1..=100.
        let mut ranks: Vec<u32> = sites.iter().map(|s| s.rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn richness_ordering_matches_paper_narrative() {
        assert!(SiteCategory::News.richness() > SiteCategory::Search.richness());
        assert!(SiteCategory::Shopping.richness() > SiteCategory::Technology.richness());
    }

    #[test]
    fn rich_sites_have_more_subresources() {
        let sites = top_100_sites();
        let news = sites
            .iter()
            .find(|s| s.category == SiteCategory::News)
            .unwrap();
        let search = sites
            .iter()
            .find(|s| s.category == SiteCategory::Search)
            .unwrap();
        let news_scripts = site_html(news).matches("<script").count();
        let search_scripts = site_html(search).matches("<script").count();
        assert!(news_scripts > search_scripts);
    }

    #[test]
    fn list_is_deterministic() {
        assert_eq!(top_100_sites(), top_100_sites());
    }
}
