//! Page-load-time model — Figure 7.
//!
//! The paper's appendix reproduces Google's four-way comparison: the same
//! page loaded in a Custom Tab, in Chrome, in an external browser launch,
//! and in a WebView — with the CT "twice as fast as a WebView". The model
//! decomposes load time into the mechanisms that actually differ:
//!
//! * **engine init** — a WebView pays per-instance engine initialization
//!   and "doesn't allow pre-initialization" (Table 1); a warmed-up CT pays
//!   nothing; launching an external browser pays a process start.
//! * **connection setup** — CTs can pre-connect ("may-launch-url"); the
//!   browser shares warm connection pools; a WebView starts cold.
//! * **fetch + render** — proportional to page weight, with a shared-cache
//!   discount for browser-context loads.
//!
//! Absolute numbers are model parameters, not measurements; the *ratios*
//! are what EXPERIMENTS.md compares against the paper.

/// How the page is being loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadMode {
    /// Custom Tab from an app (warm browser engine, pre-connect).
    CustomTab,
    /// A tab in the already-running Chrome.
    Chrome,
    /// Launching the external browser app from a link.
    ExternalBrowser,
    /// An in-app WebView.
    WebView,
}

impl LoadMode {
    /// All modes in Figure 7's left-to-right order.
    pub const ALL: [LoadMode; 4] = [
        LoadMode::CustomTab,
        LoadMode::Chrome,
        LoadMode::ExternalBrowser,
        LoadMode::WebView,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            LoadMode::CustomTab => "Custom Tab",
            LoadMode::Chrome => "Chrome",
            LoadMode::ExternalBrowser => "External Browser",
            LoadMode::WebView => "WebView",
        }
    }
}

/// Context for a load.
#[derive(Debug, Clone, Copy)]
pub struct LoadContext {
    /// Page weight in KB.
    pub page_weight_kb: u32,
    /// Whether the CT client called `warmup()`/`mayLaunchUrl` beforehand.
    pub ct_prewarmed: bool,
}

/// Model parameters (milliseconds).
mod params {
    /// WebView engine init per instance.
    pub const WEBVIEW_INIT: u64 = 90;
    /// Cold CT engine bring-up when not pre-warmed.
    pub const CT_COLD_INIT: u64 = 220;
    /// External browser process launch + UI.
    pub const BROWSER_LAUNCH: u64 = 160;
    /// Cold TCP+TLS connection setup.
    pub const COLD_CONNECT: u64 = 60;
    /// Pre-connected / pooled connection setup.
    pub const WARM_CONNECT: u64 = 50;
    /// Fetch+render cost per KB in an app WebView.
    pub const WEBVIEW_PER_KB: f64 = 0.9;
    /// Fetch+render cost per KB in the browser engine (shared cache,
    /// better scheduler).
    pub const BROWSER_PER_KB: f64 = 0.5;
}

/// Predicted load time for `mode` under `ctx`.
pub fn load_time_ms(mode: LoadMode, ctx: LoadContext) -> u64 {
    use params::*;
    let weight = ctx.page_weight_kb as f64;
    match mode {
        LoadMode::CustomTab => {
            let init = if ctx.ct_prewarmed { 0 } else { CT_COLD_INIT };
            let connect = if ctx.ct_prewarmed {
                WARM_CONNECT
            } else {
                COLD_CONNECT
            };
            init + connect + (weight * BROWSER_PER_KB) as u64
        }
        LoadMode::Chrome => WARM_CONNECT + 50 + (weight * BROWSER_PER_KB) as u64,
        LoadMode::ExternalBrowser => {
            BROWSER_LAUNCH + WARM_CONNECT + (weight * BROWSER_PER_KB) as u64
        }
        LoadMode::WebView => WEBVIEW_INIT + COLD_CONNECT + (weight * WEBVIEW_PER_KB) as u64,
    }
}

/// The Figure 7 series: load time per mode for one page.
pub fn figure7_series(page_weight_kb: u32) -> Vec<(LoadMode, u64)> {
    let ctx = LoadContext {
        page_weight_kb,
        ct_prewarmed: true,
    };
    LoadMode::ALL
        .iter()
        .map(|&m| (m, load_time_ms(m, ctx)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(kb: u32) -> LoadContext {
        LoadContext {
            page_weight_kb: kb,
            ct_prewarmed: true,
        }
    }

    #[test]
    fn ct_is_roughly_twice_as_fast_as_webview() {
        // Figure 7's headline: "CT was fastest … twice as fast as a WebView".
        for kb in [200, 600, 1_200] {
            let ct = load_time_ms(LoadMode::CustomTab, ctx(kb)) as f64;
            let wv = load_time_ms(LoadMode::WebView, ctx(kb)) as f64;
            let ratio = wv / ct;
            assert!(
                (1.6..=2.8).contains(&ratio),
                "ratio {ratio} at {kb}KB (ct={ct}, wv={wv})"
            );
        }
    }

    #[test]
    fn ordering_matches_figure7() {
        let series = figure7_series(600);
        let times: Vec<u64> = series.iter().map(|(_, t)| *t).collect();
        // CT fastest, WebView slowest.
        assert!(times[0] <= times[1]);
        assert!(times[1] <= times[2]);
        assert!(times[2] < times[3]);
    }

    #[test]
    fn prewarming_matters() {
        let warm = load_time_ms(LoadMode::CustomTab, ctx(600));
        let cold = load_time_ms(
            LoadMode::CustomTab,
            LoadContext {
                page_weight_kb: 600,
                ct_prewarmed: false,
            },
        );
        assert!(cold > warm + 200);
    }

    #[test]
    fn heavier_pages_take_longer_everywhere() {
        for mode in LoadMode::ALL {
            assert!(load_time_ms(mode, ctx(1_000)) > load_time_ms(mode, ctx(100)));
        }
    }
}
