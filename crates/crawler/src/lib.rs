//! # wla-crawler — top-site crawling harness
//!
//! §3.2.2's crawl: "systematically crawl the landing pages of 100 randomly
//! selected top sites … using the ten different WebViews previously
//! identified", plus the System WebView Shell as the no-injection
//! baseline, with an ADB-scripted loop per visit (launch → navigate →
//! insert URL → tap → scroll → wait 20 s → collect netlog → purge → kill →
//! wait 1 min).
//!
//! * [`sites`] — the synthetic top-100 site list (CrUX analog) with
//!   per-category content models: page weight, subresources, and the
//!   site's *own* third-party calls, so IAB-specific endpoints must be
//!   isolated by baseline subtraction rather than assumed;
//! * [`classify`] — the endpoint classifier (Symantec Sitereview analog);
//! * [`driver`] — the ADB-analog crawl loop and the Figure 6 aggregation
//!   (average distinct IAB-specific endpoints per site category);
//! * [`loadtime`] — the Figure 7 page-load-time model (CT vs Chrome vs
//!   external browser vs WebView).

pub mod classify;
pub mod driver;
pub mod loadtime;
pub mod sites;

pub use classify::{classify_endpoint, classify_third_party, is_first_party, EndpointKind};
pub use driver::{
    crawl_app, crawl_baseline, figure6, figure6_row, run_visit, run_visit_prepared, CrawlRecord,
    CrawlStep, Figure6Row, VisitObservation, BASELINE_APP, VISIT_SCRIPT,
};
pub use loadtime::{load_time_ms, LoadContext, LoadMode};
pub use sites::{site_page, top_100_sites, SiteCategory, TopSite};
