//! The ADB-analog crawl driver and Figure 6 aggregation.
//!
//! Per visit the paper's script "(i) launch\[es\] the app, (ii) navigate\[s\]
//! to the intended activity …, (iii) insert\[s\] the desired crawl URL,
//! (iv) tap\[s\] on the URL …, (v) swipe\[s\] upwards … Following a 20-second
//! wait …, we gather the device's network log. To ready the system for the
//! next crawl, we also purge the logs on the device, terminate the app,
//! and wait for 1 minute." [`crawl_app`] executes exactly that loop on the
//! simulated device; [`crawl_baseline`] is the System WebView Shell run.
//!
//! Every visit runs on its own [`VisitSession`] — fresh netlog, fresh
//! logcat, visit-scoped source ids — so [`run_visit`] is a pure function
//! of `(site, profile)` and the paper's "purge the logs" step is the
//! session drop itself. The string-keyed [`CrawlRecord`]/[`figure6`] path
//! here is the serial oracle the interned parallel pipeline in
//! `wla-dynamic` is equivalence-pinned against.

use crate::classify::{classify_endpoint, EndpointKind};
use crate::sites::{SiteCategory, TopSite};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use wla_device::iab::{open_in_iab, IabProfile};
use wla_device::session::VisitSession;
use wla_device::webview::{PageSource, PreparedPage, WebViewInstance};

/// One step of the scripted UI traversal (kept explicit so logcat shows
/// the same sequence a real ADB transcript would).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrawlStep {
    /// `adb shell monkey -p <pkg> 1` — launch.
    LaunchApp,
    /// Simulated screen taps to the target activity.
    NavigateToActivity,
    /// `adb shell input text <url>` — the crawl URL comes from the visit's
    /// page source.
    InsertUrl,
    /// Tap the URL to open the IAB.
    TapUrl,
    /// Swipe to the end of the page.
    ScrollToEnd,
    /// Fixed wait for resources to load (ms).
    Wait(u64),
    /// Pull the netlog.
    CollectLog,
    /// Purge device logs.
    PurgeLogs,
    /// Force-stop the app.
    KillApp,
}

/// The canonical per-visit script.
pub const VISIT_SCRIPT: [CrawlStep; 10] = [
    CrawlStep::LaunchApp,
    CrawlStep::NavigateToActivity,
    CrawlStep::InsertUrl,
    CrawlStep::TapUrl,
    CrawlStep::ScrollToEnd,
    CrawlStep::Wait(20_000),
    CrawlStep::CollectLog,
    CrawlStep::PurgeLogs,
    CrawlStep::KillApp,
    CrawlStep::Wait(60_000),
];

/// What a single visit left behind in its session: which source id the
/// page loaded under, and how much work the script did. The caller pulls
/// hosts out of the session in whatever representation it wants (owned
/// strings for the oracle path, interned symbols for the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisitObservation {
    /// Netlog source id of the visit's WebView instance.
    pub source_id: u32,
    /// Script steps executed.
    pub steps: u32,
}

/// Result of one (app, site) visit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlRecord {
    /// App package (or `"system-webview-shell"` for the baseline).
    pub app: String,
    /// Site visited.
    pub site_host: String,
    /// Site category.
    pub category: SiteCategory,
    /// Distinct hosts contacted during the visit.
    pub hosts: BTreeSet<String>,
    /// Endpoint kind per host, parallel to `hosts` iteration order —
    /// classified exactly once, at record construction.
    pub kinds: Vec<EndpointKind>,
}

impl CrawlRecord {
    /// Build a record, classifying every host once.
    pub fn new(
        app: String,
        site_host: String,
        category: SiteCategory,
        hosts: BTreeSet<String>,
    ) -> CrawlRecord {
        let kinds = hosts
            .iter()
            .map(|h| classify_endpoint(h, &site_host))
            .collect();
        CrawlRecord {
            app,
            site_host,
            category,
            hosts,
            kinds,
        }
    }

    /// Hosts by kind (relative to the visited site), counted from the
    /// kinds stored at construction.
    pub fn classified(&self) -> BTreeMap<EndpointKind, usize> {
        let mut out = BTreeMap::new();
        for k in &self.kinds {
            *out.entry(*k).or_insert(0) += 1;
        }
        out
    }
}

/// Display app id for the baseline run.
pub const BASELINE_APP: &str = "system-webview-shell";

/// Execute the visit script for `site` through `profile`'s IAB (or the
/// System WebView Shell when `None`) on the visit's own session, loading
/// the page from `source`. Pure in `(site, profile, source)`: all state
/// lives in `session`.
pub fn run_visit_with_source(
    site: &TopSite,
    source: PageSource,
    profile: Option<&IabProfile>,
    session: &mut VisitSession,
) -> VisitObservation {
    let url = site.url();
    let source_id = session.allocate_source_id();
    let logcat = session.logcat();
    let netlog = session.netlog();

    let steps = VISIT_SCRIPT.len() as u32;
    let mut source = Some(source);
    for step in VISIT_SCRIPT {
        match step {
            CrawlStep::LaunchApp => match profile {
                Some(p) => logcat.info("adb", &format!("monkey -p {} 1", p.package)),
                None => logcat.info("adb", &format!("monkey -p {BASELINE_APP} 1")),
            },
            CrawlStep::NavigateToActivity => logcat.info("adb", "input tap 540 1200"),
            CrawlStep::InsertUrl => logcat.info("adb", &format!("input text {url}")),
            CrawlStep::TapUrl => {
                let source = source.take().expect("TapUrl appears once per script");
                match profile {
                    Some(profile) => {
                        let _ = open_in_iab(
                            profile,
                            source_id,
                            source,
                            site.category.richness(),
                            session.recorder().clone(),
                            netlog.clone(),
                            logcat.clone(),
                            None,
                        );
                    }
                    None => {
                        // System WebView Shell: a bare WebView, no app logic.
                        let mut wv = WebViewInstance::new(
                            source_id,
                            "org.chromium.webview_shell",
                            session.recorder().clone(),
                            netlog.clone(),
                            logcat.clone(),
                        );
                        wv.load(source);
                    }
                }
            }
            CrawlStep::ScrollToEnd => logcat.info("adb", "input swipe 540 1600 540 400"),
            CrawlStep::Wait(ms) => netlog.advance_clock(ms),
            CrawlStep::CollectLog => {}
            // Nothing to purge: the session dies with the visit.
            CrawlStep::PurgeLogs | CrawlStep::KillApp => {}
        }
    }

    VisitObservation { source_id, steps }
}

/// [`run_visit_with_source`] over freshly generated synthetic site
/// content — the seed path, regenerating and re-parsing the page markup
/// on every visit. Kept as the oracle and the bench ablation baseline.
pub fn run_visit(
    site: &TopSite,
    profile: Option<&IabProfile>,
    session: &mut VisitSession,
) -> VisitObservation {
    run_visit_with_source(site, site.synthetic_source(), profile, session)
}

/// [`run_visit_with_source`] over a page prepared once per site — the
/// pipeline's fast path (no re-parse, shared URL strings).
pub fn run_visit_prepared(
    site: &TopSite,
    page: &Arc<PreparedPage>,
    profile: Option<&IabProfile>,
    session: &mut VisitSession,
) -> VisitObservation {
    run_visit_with_source(site, PageSource::Prepared(page.clone()), profile, session)
}

fn record_for(site: &TopSite, profile: Option<&IabProfile>) -> CrawlRecord {
    let mut session = VisitSession::new();
    let obs = run_visit(site, profile, &mut session);
    let app = profile
        .map(|p| p.package.to_owned())
        .unwrap_or_else(|| BASELINE_APP.to_owned());
    CrawlRecord::new(
        app,
        site.host.clone(),
        site.category,
        session.netlog().distinct_hosts_for(obs.source_id),
    )
}

/// Crawl every site through one app's IAB.
pub fn crawl_app(profile: &IabProfile, sites: &[TopSite]) -> Vec<CrawlRecord> {
    sites
        .iter()
        .map(|site| record_for(site, Some(profile)))
        .collect()
}

/// Crawl every site through the System WebView Shell (baseline: "the
/// network requests expected to be made from a WebView without any
/// injections").
pub fn crawl_baseline(sites: &[TopSite]) -> Vec<CrawlRecord> {
    sites.iter().map(|site| record_for(site, None)).collect()
}

/// One Figure 6 bar: per site category, the average number of distinct
/// endpoints contacted *specifically by the app's IAB* (baseline hosts
/// subtracted), broken down by endpoint kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure6Row {
    /// Site category.
    pub category: SiteCategory,
    /// Average IAB-specific distinct endpoints per visit.
    pub avg_endpoints: f64,
    /// Average per endpoint kind.
    pub by_kind: BTreeMap<EndpointKind, f64>,
}

/// Average per-visit kind counts into one row. `visits` is the per-visit
/// specific-endpoint tally for one category; an empty slice yields the
/// explicit all-zero row (a category crawled zero times, or one whose
/// IAB added nothing, must still appear in the figure). Public because the
/// interned pipeline in `wla-dynamic` folds its symbol-keyed tallies
/// through this exact function — sharing the accumulation order is what
/// makes its figures bit-identical to this string-path oracle.
pub fn figure6_row(category: SiteCategory, visits: &[BTreeMap<EndpointKind, usize>]) -> Figure6Row {
    if visits.is_empty() {
        return Figure6Row {
            category,
            avg_endpoints: 0.0,
            by_kind: BTreeMap::new(),
        };
    }
    let n = visits.len() as f64;
    let mut by_kind: BTreeMap<EndpointKind, f64> = BTreeMap::new();
    let mut total = 0usize;
    for v in visits {
        for (&k, &c) in v {
            *by_kind.entry(k).or_insert(0.0) += c as f64;
            total += c;
        }
    }
    for v in by_kind.values_mut() {
        *v /= n;
    }
    Figure6Row {
        category,
        avg_endpoints: total as f64 / n,
        by_kind,
    }
}

/// Aggregate app-vs-baseline crawls into Figure 6 rows — one row per
/// [`SiteCategory`], in category order, zero rows included. Endpoint
/// kinds come from the records (classified once at construction), not
/// from re-running the classifier here.
pub fn figure6(app_records: &[CrawlRecord], baseline: &[CrawlRecord]) -> Vec<Figure6Row> {
    let baseline_by_site: BTreeMap<&str, &CrawlRecord> =
        baseline.iter().map(|r| (r.site_host.as_str(), r)).collect();
    let mut per_cat: BTreeMap<SiteCategory, Vec<BTreeMap<EndpointKind, usize>>> =
        SiteCategory::ALL.iter().map(|&c| (c, Vec::new())).collect();
    for rec in app_records {
        let base_hosts: &BTreeSet<String> = match baseline_by_site.get(rec.site_host.as_str()) {
            Some(b) => &b.hosts,
            None => continue,
        };
        let mut kinds: BTreeMap<EndpointKind, usize> = BTreeMap::new();
        for (h, k) in rec.hosts.iter().zip(&rec.kinds) {
            if !base_hosts.contains(h) {
                *kinds.entry(*k).or_insert(0) += 1;
            }
        }
        per_cat
            .get_mut(&rec.category)
            .expect("ALL covers every category")
            .push(kinds);
    }
    per_cat
        .into_iter()
        .map(|(category, visits)| figure6_row(category, &visits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::{site_page, top_100_sites};
    use wla_device::iab::profile_for;

    #[test]
    fn baseline_contacts_only_site_resources() {
        let sites: Vec<TopSite> = top_100_sites().into_iter().take(10).collect();
        let records = crawl_baseline(&sites);
        assert_eq!(records.len(), 10);
        for rec in &records {
            // No IAB-specific hosts in the baseline.
            assert!(!rec.hosts.contains("radar.cedexis.com"), "{rec:?}");
            assert!(!rec.hosts.contains("ads.mopub.com"), "{rec:?}");
            assert!(rec.hosts.contains(&rec.site_host));
        }
    }

    #[test]
    fn prepared_visit_matches_synthetic_visit() {
        let sites = top_100_sites();
        let profile = profile_for("kik.android").unwrap();
        for site in sites.iter().step_by(17) {
            let page = Arc::new(site_page(site));
            for profile in [None, Some(&profile)] {
                let mut fresh = VisitSession::new();
                let a = run_visit(site, profile, &mut fresh);
                let mut prepared = VisitSession::new();
                let b = run_visit_prepared(site, &page, profile, &mut prepared);
                assert_eq!(a, b);
                // Same events in the same order — not just the same hosts.
                assert_eq!(fresh.netlog().events(), prepared.netlog().events());
                assert_eq!(fresh.logcat().lines(), prepared.logcat().lines());
            }
        }
    }

    #[test]
    fn record_kinds_parallel_hosts_and_classified_agrees() {
        let sites = top_100_sites();
        let profile = profile_for("kik.android").unwrap();
        let rec = &crawl_app(&profile, &sites[..3])[0];
        assert_eq!(rec.hosts.len(), rec.kinds.len());
        for ((h, k), via_classify) in rec
            .hosts
            .iter()
            .zip(&rec.kinds)
            .map(|(h, k)| ((h, *k), classify_endpoint(h, &rec.site_host)))
        {
            assert_eq!(k, via_classify, "{h}");
        }
        let counted: usize = rec.classified().values().sum();
        assert_eq!(counted, rec.hosts.len());
    }

    #[test]
    fn linkedin_figure6_shape() {
        let sites = top_100_sites();
        let profile = profile_for("com.linkedin.android").unwrap();
        let rows = figure6(&crawl_app(&profile, &sites), &crawl_baseline(&sites));
        let get = |cat: SiteCategory| {
            rows.iter()
                .find(|r| r.category == cat)
                .expect("every category has a row")
                .avg_endpoints
        };
        // News-rich pages trigger more IAB endpoints than Search.
        assert!(get(SiteCategory::News) > get(SiteCategory::Search));
        // At least 2 trackers on rich content (§4.2.2).
        let news = rows
            .iter()
            .find(|r| r.category == SiteCategory::News)
            .unwrap();
        assert!(
            news.by_kind
                .get(&EndpointKind::Tracker)
                .copied()
                .unwrap_or(0.0)
                >= 2.0,
            "{news:?}"
        );
    }

    #[test]
    fn kik_contacts_many_ad_networks_on_rich_sites() {
        let sites = top_100_sites();
        let profile = profile_for("kik.android").unwrap();
        let rows = figure6(&crawl_app(&profile, &sites), &crawl_baseline(&sites));
        let news = rows
            .iter()
            .find(|r| r.category == SiteCategory::News)
            .unwrap();
        // "over 15 ad network endpoints" on content-rich sites.
        assert!(news.avg_endpoints >= 15.0, "{news:?}");
        assert!(
            news.by_kind
                .get(&EndpointKind::AdNetwork)
                .copied()
                .unwrap_or(0.0)
                >= 10.0,
            "{news:?}"
        );
        let search = rows
            .iter()
            .find(|r| r.category == SiteCategory::Search)
            .unwrap();
        assert!(search.avg_endpoints < news.avg_endpoints);
    }

    #[test]
    fn snapchat_is_indistinguishable_from_baseline() {
        let sites: Vec<TopSite> = top_100_sites().into_iter().take(20).collect();
        let profile = profile_for("com.snapchat.android").unwrap();
        let rows = figure6(&crawl_app(&profile, &sites), &crawl_baseline(&sites));
        assert_eq!(rows.len(), SiteCategory::ALL.len());
        for row in rows {
            assert_eq!(row.avg_endpoints, 0.0, "{row:?}");
        }
    }

    #[test]
    fn every_category_gets_a_row_even_on_subsets() {
        // The first ten sites are all News — the other nine categories
        // must still be present, as explicit zero rows.
        let sites: Vec<TopSite> = top_100_sites().into_iter().take(10).collect();
        assert!(sites.iter().all(|s| s.category == SiteCategory::News));
        let profile = profile_for("kik.android").unwrap();
        let rows = figure6(&crawl_app(&profile, &sites), &crawl_baseline(&sites));
        assert_eq!(rows.len(), SiteCategory::ALL.len());
        let news = rows
            .iter()
            .find(|r| r.category == SiteCategory::News)
            .unwrap();
        assert!(news.avg_endpoints > 0.0);
        for row in rows.iter().filter(|r| r.category != SiteCategory::News) {
            assert_eq!(row.avg_endpoints, 0.0, "{row:?}");
            assert!(row.by_kind.is_empty(), "{row:?}");
        }
    }

    #[test]
    fn visit_script_matches_paper_sequence() {
        assert_eq!(VISIT_SCRIPT.len(), 10);
        assert!(matches!(VISIT_SCRIPT[0], CrawlStep::LaunchApp));
        assert!(matches!(VISIT_SCRIPT[2], CrawlStep::InsertUrl));
        assert!(matches!(VISIT_SCRIPT[5], CrawlStep::Wait(20_000)));
        assert!(matches!(VISIT_SCRIPT.last(), Some(CrawlStep::Wait(60_000))));
    }
}
