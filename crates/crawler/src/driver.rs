//! The ADB-analog crawl driver and Figure 6 aggregation.
//!
//! Per visit the paper's script "(i) launch\[es\] the app, (ii) navigate\[s\]
//! to the intended activity …, (iii) insert\[s\] the desired crawl URL,
//! (iv) tap\[s\] on the URL …, (v) swipe\[s\] upwards … Following a 20-second
//! wait …, we gather the device's network log. To ready the system for the
//! next crawl, we also purge the logs on the device, terminate the app,
//! and wait for 1 minute." [`crawl_app`] executes exactly that loop on the
//! simulated device; [`crawl_baseline`] is the System WebView Shell run.

use crate::classify::{classify_endpoint, EndpointKind};
use crate::sites::{site_extra_requests, site_html, SiteCategory, TopSite};
use std::collections::{BTreeMap, BTreeSet};
use wla_device::iab::{open_in_iab, IabProfile};
use wla_device::webview::{PageSource, WebViewInstance};
use wla_device::{FridaRecorder, Logcat};
use wla_net::NetLog;

/// One step of the scripted UI traversal (kept explicit so logcat shows
/// the same sequence a real ADB transcript would).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlStep {
    /// `adb shell monkey -p <pkg> 1` — launch.
    LaunchApp,
    /// Simulated screen taps to the target activity.
    NavigateToActivity,
    /// `adb shell input text <url>`.
    InsertUrl(String),
    /// Tap the URL to open the IAB.
    TapUrl,
    /// Swipe to the end of the page.
    ScrollToEnd,
    /// Fixed wait for resources to load (ms).
    Wait(u64),
    /// Pull the netlog.
    CollectLog,
    /// Purge device logs.
    PurgeLogs,
    /// Force-stop the app.
    KillApp,
}

/// The canonical per-visit script.
pub fn visit_script(url: &str) -> Vec<CrawlStep> {
    vec![
        CrawlStep::LaunchApp,
        CrawlStep::NavigateToActivity,
        CrawlStep::InsertUrl(url.to_owned()),
        CrawlStep::TapUrl,
        CrawlStep::ScrollToEnd,
        CrawlStep::Wait(20_000),
        CrawlStep::CollectLog,
        CrawlStep::PurgeLogs,
        CrawlStep::KillApp,
        CrawlStep::Wait(60_000),
    ]
}

/// Result of one (app, site) visit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlRecord {
    /// App package (or `"system-webview-shell"` for the baseline).
    pub app: String,
    /// Site visited.
    pub site_host: String,
    /// Site category.
    pub category: SiteCategory,
    /// Distinct hosts contacted during the visit.
    pub hosts: BTreeSet<String>,
}

impl CrawlRecord {
    /// Hosts classified by kind (relative to the visited site).
    pub fn classified(&self) -> BTreeMap<EndpointKind, usize> {
        let mut out = BTreeMap::new();
        for h in &self.hosts {
            *out.entry(classify_endpoint(h, &self.site_host))
                .or_insert(0) += 1;
        }
        out
    }
}

fn run_visit(
    site: &TopSite,
    profile: Option<&IabProfile>,
    source_id: u32,
    netlog: &NetLog,
    logcat: &Logcat,
) -> CrawlRecord {
    let app = profile
        .map(|p| p.package.to_owned())
        .unwrap_or_else(|| "system-webview-shell".to_owned());
    let url = site.url();

    for step in visit_script(&url) {
        match step {
            CrawlStep::LaunchApp => logcat.info("adb", &format!("monkey -p {app} 1")),
            CrawlStep::NavigateToActivity => logcat.info("adb", "input tap 540 1200"),
            CrawlStep::InsertUrl(u) => logcat.info("adb", &format!("input text {u}")),
            CrawlStep::TapUrl => {
                let source = PageSource::Synthetic {
                    url: url.clone(),
                    html: site_html(site),
                    extra_requests: site_extra_requests(site),
                };
                match profile {
                    Some(profile) => {
                        let _ = open_in_iab(
                            profile,
                            source_id,
                            source,
                            site.category.richness(),
                            FridaRecorder::new(),
                            netlog.clone(),
                            logcat.clone(),
                            None,
                        );
                    }
                    None => {
                        // System WebView Shell: a bare WebView, no app logic.
                        let mut wv = WebViewInstance::new(
                            source_id,
                            "org.chromium.webview_shell",
                            FridaRecorder::new(),
                            netlog.clone(),
                            logcat.clone(),
                        );
                        wv.load(source);
                    }
                }
            }
            CrawlStep::ScrollToEnd => logcat.info("adb", "input swipe 540 1600 540 400"),
            CrawlStep::Wait(ms) => netlog.advance_clock(ms),
            CrawlStep::CollectLog => {}
            CrawlStep::PurgeLogs | CrawlStep::KillApp => {}
        }
    }

    let hosts = netlog.distinct_hosts_for(source_id);
    // Purge for the next visit, as the script does.
    netlog.clear();
    logcat.clear();

    CrawlRecord {
        app,
        site_host: site.host.clone(),
        category: site.category,
        hosts,
    }
}

/// Crawl every site through one app's IAB.
pub fn crawl_app(profile: &IabProfile, sites: &[TopSite]) -> Vec<CrawlRecord> {
    let netlog = NetLog::new();
    let logcat = Logcat::new();
    sites
        .iter()
        .enumerate()
        .map(|(i, site)| run_visit(site, Some(profile), i as u32 + 1, &netlog, &logcat))
        .collect()
}

/// Crawl every site through the System WebView Shell (baseline: "the
/// network requests expected to be made from a WebView without any
/// injections").
pub fn crawl_baseline(sites: &[TopSite]) -> Vec<CrawlRecord> {
    let netlog = NetLog::new();
    let logcat = Logcat::new();
    sites
        .iter()
        .enumerate()
        .map(|(i, site)| run_visit(site, None, i as u32 + 1, &netlog, &logcat))
        .collect()
}

/// One Figure 6 bar: per site category, the average number of distinct
/// endpoints contacted *specifically by the app's IAB* (baseline hosts
/// subtracted), broken down by endpoint kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure6Row {
    /// Site category.
    pub category: SiteCategory,
    /// Average IAB-specific distinct endpoints per visit.
    pub avg_endpoints: f64,
    /// Average per endpoint kind.
    pub by_kind: BTreeMap<EndpointKind, f64>,
}

/// Aggregate app-vs-baseline crawls into Figure 6 rows.
pub fn figure6(app_records: &[CrawlRecord], baseline: &[CrawlRecord]) -> Vec<Figure6Row> {
    let baseline_by_site: BTreeMap<&str, &CrawlRecord> =
        baseline.iter().map(|r| (r.site_host.as_str(), r)).collect();
    let mut per_cat: BTreeMap<SiteCategory, Vec<BTreeMap<EndpointKind, usize>>> = BTreeMap::new();
    for rec in app_records {
        let base_hosts: &BTreeSet<String> = match baseline_by_site.get(rec.site_host.as_str()) {
            Some(b) => &b.hosts,
            None => continue,
        };
        let specific: BTreeSet<&String> = rec.hosts.difference(base_hosts).collect();
        let mut kinds: BTreeMap<EndpointKind, usize> = BTreeMap::new();
        for h in specific {
            *kinds
                .entry(classify_endpoint(h, &rec.site_host))
                .or_insert(0) += 1;
        }
        per_cat.entry(rec.category).or_default().push(kinds);
    }
    per_cat
        .into_iter()
        .map(|(category, visits)| {
            let n = visits.len() as f64;
            let mut by_kind: BTreeMap<EndpointKind, f64> = BTreeMap::new();
            let mut total = 0usize;
            for v in &visits {
                for (&k, &c) in v {
                    *by_kind.entry(k).or_insert(0.0) += c as f64;
                    total += c;
                }
            }
            for v in by_kind.values_mut() {
                *v /= n;
            }
            Figure6Row {
                category,
                avg_endpoints: total as f64 / n,
                by_kind,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::top_100_sites;
    use wla_device::iab::profile_for;

    #[test]
    fn baseline_contacts_only_site_resources() {
        let sites: Vec<TopSite> = top_100_sites().into_iter().take(10).collect();
        let records = crawl_baseline(&sites);
        assert_eq!(records.len(), 10);
        for rec in &records {
            // No IAB-specific hosts in the baseline.
            assert!(!rec.hosts.contains("radar.cedexis.com"), "{rec:?}");
            assert!(!rec.hosts.contains("ads.mopub.com"), "{rec:?}");
            assert!(rec.hosts.contains(&rec.site_host));
        }
    }

    #[test]
    fn linkedin_figure6_shape() {
        let sites = top_100_sites();
        let profile = profile_for("com.linkedin.android").unwrap();
        let rows = figure6(&crawl_app(&profile, &sites), &crawl_baseline(&sites));
        let get = |cat: SiteCategory| {
            rows.iter()
                .find(|r| r.category == cat)
                .map(|r| r.avg_endpoints)
                .unwrap_or(0.0)
        };
        // News-rich pages trigger more IAB endpoints than Search.
        assert!(get(SiteCategory::News) > get(SiteCategory::Search));
        // At least 2 trackers on rich content (§4.2.2).
        let news = rows
            .iter()
            .find(|r| r.category == SiteCategory::News)
            .unwrap();
        assert!(
            news.by_kind
                .get(&EndpointKind::Tracker)
                .copied()
                .unwrap_or(0.0)
                >= 2.0,
            "{news:?}"
        );
    }

    #[test]
    fn kik_contacts_many_ad_networks_on_rich_sites() {
        let sites = top_100_sites();
        let profile = profile_for("kik.android").unwrap();
        let rows = figure6(&crawl_app(&profile, &sites), &crawl_baseline(&sites));
        let news = rows
            .iter()
            .find(|r| r.category == SiteCategory::News)
            .unwrap();
        // "over 15 ad network endpoints" on content-rich sites.
        assert!(news.avg_endpoints >= 15.0, "{news:?}");
        assert!(
            news.by_kind
                .get(&EndpointKind::AdNetwork)
                .copied()
                .unwrap_or(0.0)
                >= 10.0,
            "{news:?}"
        );
        let search = rows
            .iter()
            .find(|r| r.category == SiteCategory::Search)
            .unwrap();
        assert!(search.avg_endpoints < news.avg_endpoints);
    }

    #[test]
    fn snapchat_is_indistinguishable_from_baseline() {
        let sites: Vec<TopSite> = top_100_sites().into_iter().take(20).collect();
        let profile = profile_for("com.snapchat.android").unwrap();
        let rows = figure6(&crawl_app(&profile, &sites), &crawl_baseline(&sites));
        for row in rows {
            assert_eq!(row.avg_endpoints, 0.0, "{row:?}");
        }
    }

    #[test]
    fn visit_script_matches_paper_sequence() {
        let script = visit_script("https://x.example/");
        assert!(matches!(script[0], CrawlStep::LaunchApp));
        assert!(matches!(script[5], CrawlStep::Wait(20_000)));
        assert!(matches!(script.last(), Some(CrawlStep::Wait(60_000))));
    }
}
