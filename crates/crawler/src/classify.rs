//! Endpoint classification (Symantec Sitereview analog).
//!
//! Figure 6 groups the endpoints an IAB contacts into kinds — external
//! trackers (Cedexis), ad networks (MoPub, InMobi), CDNs (CloudFront), and
//! the app's own services. The classifier is a suffix-rule table over
//! hostnames.

/// Endpoint kinds reported in §4.2's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EndpointKind {
    /// Ad network / exchange.
    AdNetwork,
    /// Measurement / tracking service.
    Tracker,
    /// Content delivery network.
    Cdn,
    /// The visited site itself (or its subdomains).
    FirstParty,
    /// The app vendor's own services (e.g. `licdn.com`,
    /// `perf.linkedin.com`).
    AppService,
    /// Anything else.
    Other,
}

impl EndpointKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EndpointKind::AdNetwork => "Ad Network",
            EndpointKind::Tracker => "Tracker",
            EndpointKind::Cdn => "CDN",
            EndpointKind::FirstParty => "First Party",
            EndpointKind::AppService => "App Service",
            EndpointKind::Other => "Other",
        }
    }
}

/// Suffix rules for known third parties. Order matters: first match wins.
const RULES: &[(&str, EndpointKind)] = &[
    // Ad networks and exchanges.
    ("ads.mopub.com", EndpointKind::AdNetwork),
    ("mopub.com", EndpointKind::AdNetwork),
    ("inmobicdn.net", EndpointKind::AdNetwork),
    ("inmobi.com", EndpointKind::AdNetwork),
    ("doubleclick.net", EndpointKind::AdNetwork),
    ("googlesyndication.com", EndpointKind::AdNetwork),
    ("adnxs.com", EndpointKind::AdNetwork),
    ("criteo.com", EndpointKind::AdNetwork),
    ("rubiconproject.com", EndpointKind::AdNetwork),
    ("openx.net", EndpointKind::AdNetwork),
    ("pubmatic.com", EndpointKind::AdNetwork),
    ("adsrvr.org", EndpointKind::AdNetwork),
    ("casalemedia.com", EndpointKind::AdNetwork),
    ("smartadserver.com", EndpointKind::AdNetwork),
    ("taboola.com", EndpointKind::AdNetwork),
    ("outbrain.com", EndpointKind::AdNetwork),
    ("amazon-adsystem.com", EndpointKind::AdNetwork),
    ("yieldmo.com", EndpointKind::AdNetwork),
    ("sharethrough.com", EndpointKind::AdNetwork),
    ("triplelift.com", EndpointKind::AdNetwork),
    ("site-ads.net", EndpointKind::AdNetwork),
    ("px.ads.linkedin.com", EndpointKind::AdNetwork),
    // Trackers / measurement.
    ("cedexis.com", EndpointKind::Tracker),
    ("cedexis-radar.net", EndpointKind::Tracker),
    ("cedexis.io", EndpointKind::Tracker),
    ("site-metrics.net", EndpointKind::Tracker),
    ("tag-manager.net", EndpointKind::Tracker),
    ("perf.linkedin.com", EndpointKind::Tracker),
    // CDNs.
    ("cloudfront.net", EndpointKind::Cdn),
    ("licdn.com", EndpointKind::Cdn),
    ("player-cdn.net", EndpointKind::Cdn),
    ("connect.facebook.net", EndpointKind::Cdn),
    ("akamaihd.net", EndpointKind::Cdn),
    ("fastly.net", EndpointKind::Cdn),
];

/// Hosts that belong to the measured apps' own backends.
const APP_SERVICE_SUFFIXES: &[&str] = &[
    "linkedin.com",
    "facebook.com",
    "instagram.com",
    "t.co",
    "kik.com",
];

/// Label-aligned suffix match: `host` is `suffix` itself or a subdomain
/// of it. No allocation — the dot alignment is checked positionally.
fn suffix_matches(host: &str, suffix: &str) -> bool {
    if host.len() == suffix.len() {
        return host == suffix;
    }
    host.len() > suffix.len()
        && host.ends_with(suffix)
        && host.as_bytes()[host.len() - suffix.len() - 1] == b'.'
}

/// Is `host` the visited site itself or one of its subdomains?
pub fn is_first_party(host: &str, site_host: &str) -> bool {
    suffix_matches(host, site_host)
}

/// Classify `host` by the suffix-rule tables alone, ignoring which site
/// was visited. This is the site-independent part of
/// [`classify_endpoint`] — a pure function of the host, which is what
/// makes the crawl pipeline's per-symbol classification memo sound.
pub fn classify_third_party(host: &str) -> EndpointKind {
    for (suffix, kind) in RULES {
        if suffix_matches(host, suffix) {
            return *kind;
        }
    }
    for suffix in APP_SERVICE_SUFFIXES {
        if suffix_matches(host, suffix) {
            return EndpointKind::AppService;
        }
    }
    EndpointKind::Other
}

/// Classify `host` relative to the visited `site_host`.
pub fn classify_endpoint(host: &str, site_host: &str) -> EndpointKind {
    if is_first_party(host, site_host) {
        return EndpointKind::FirstParty;
    }
    classify_third_party(host)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_third_parties() {
        assert_eq!(
            classify_endpoint("ads.mopub.com", "news.example.com"),
            EndpointKind::AdNetwork
        );
        assert_eq!(
            classify_endpoint("supply.inmobicdn.net", "x.com"),
            EndpointKind::AdNetwork
        );
        assert_eq!(
            classify_endpoint("radar.cedexis.com", "x.com"),
            EndpointKind::Tracker
        );
        assert_eq!(
            classify_endpoint("d123.cloudfront.net", "x.com"),
            EndpointKind::Cdn
        );
        assert_eq!(
            classify_endpoint("perf.linkedin.com", "x.com"),
            EndpointKind::Tracker
        );
        assert_eq!(
            classify_endpoint("www.linkedin.com", "x.com"),
            EndpointKind::AppService
        );
    }

    #[test]
    fn first_party_detection() {
        assert_eq!(
            classify_endpoint("news0.example-1.com", "news0.example-1.com"),
            EndpointKind::FirstParty
        );
        assert_eq!(
            classify_endpoint("cdn.news0.example-1.com", "news0.example-1.com"),
            EndpointKind::FirstParty
        );
        // Suffix must be label-aligned.
        assert_eq!(
            classify_endpoint(
                "evilnews0.example-1.com.attacker.net",
                "news0.example-1.com"
            ),
            EndpointKind::Other
        );
    }

    #[test]
    fn ad_specific_rule_beats_app_service() {
        // px.ads.linkedin.com is an ad endpoint even though linkedin.com is
        // an app service.
        assert_eq!(
            classify_endpoint("px.ads.linkedin.com", "x.com"),
            EndpointKind::AdNetwork
        );
    }

    #[test]
    fn split_classifier_matches_composed_one() {
        for (host, site) in [
            ("ads.mopub.com", "news0.example-1.com"),
            ("cdn.news0.example-1.com", "news0.example-1.com"),
            ("px.ads.linkedin.com", "x.com"),
            ("mopub.com.evil.net", "x.com"),
            ("om", "t.co"), // shorter than every suffix
            ("co", "t.co"),
        ] {
            let composed = classify_endpoint(host, site);
            let split = if is_first_party(host, site) {
                EndpointKind::FirstParty
            } else {
                classify_third_party(host)
            };
            assert_eq!(composed, split, "{host} vs {site}");
        }
    }

    #[test]
    fn unknown_is_other() {
        assert_eq!(
            classify_endpoint("totally-unknown.example", "x.com"),
            EndpointKind::Other
        );
    }
}
