//! In-memory manifest model and the deep-link / intent-resolution queries
//! the pipeline performs on it.

use crate::{ACTION_VIEW, CATEGORY_BROWSABLE};
use serde::{Deserialize, Serialize};

/// The four Android component kinds — any of them "can serve as the initial
/// point of interaction or entry point" (§3.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// UI screen with lifecycle callbacks (`onCreate` …).
    Activity,
    /// Background worker.
    Service,
    /// Broadcast receiver.
    Receiver,
    /// Content provider.
    Provider,
}

impl ComponentKind {
    /// Lifecycle/entry methods Android invokes on this component kind.
    /// These are the traversal roots the call-graph engine uses.
    pub fn lifecycle_methods(self) -> &'static [&'static str] {
        match self {
            ComponentKind::Activity => &[
                "onCreate",
                "onStart",
                "onResume",
                "onPause",
                "onStop",
                "onDestroy",
                "onNewIntent",
                "onActivityResult",
            ],
            ComponentKind::Service => &["onCreate", "onStartCommand", "onBind", "onDestroy"],
            ComponentKind::Receiver => &["onReceive"],
            ComponentKind::Provider => &["onCreate", "query", "insert", "update", "delete"],
        }
    }
}

/// An `<intent-filter>`: the actions, categories, and data specs a component
/// declares it can handle.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntentFilter {
    /// `<action android:name=…>` values.
    pub actions: Vec<String>,
    /// `<category android:name=…>` values.
    pub categories: Vec<String>,
    /// `<data android:scheme=…>` values (e.g. `http`, `https`, `myapp`).
    pub data_schemes: Vec<String>,
    /// `<data android:host=…>` values (e.g. `maps.google.com`).
    pub data_hosts: Vec<String>,
}

impl IntentFilter {
    /// Does this filter make the component a web deep link: VIEW action,
    /// BROWSABLE category, and an `http`/`https` scheme? This is the exact
    /// predicate of §3.1.3.
    pub fn is_web_deep_link(&self) -> bool {
        self.actions.iter().any(|a| a == ACTION_VIEW)
            && self.categories.iter().any(|c| c == CATEGORY_BROWSABLE)
            && self
                .data_schemes
                .iter()
                .any(|s| s == "http" || s == "https")
    }

    /// Whether this filter claims the given host for web links
    /// (Android-12-style verified app link behaviour, simplified).
    pub fn handles_host(&self, host: &str) -> bool {
        self.is_web_deep_link() && self.data_hosts.iter().any(|h| h == host)
    }
}

/// One declared component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Component kind.
    pub kind: ComponentKind,
    /// Fully-qualified class binary name (`com/example/app/MainActivity`).
    pub class_name: String,
    /// The `android:exported` flag.
    pub exported: bool,
    /// Declared intent filters.
    pub intent_filters: Vec<IntentFilter>,
}

impl Component {
    /// A non-filtered, non-exported component (the common case).
    pub fn simple(kind: ComponentKind, class_name: impl Into<String>) -> Self {
        Component {
            kind,
            class_name: class_name.into(),
            exported: false,
            intent_filters: Vec::new(),
        }
    }

    /// §3.1.3's deep-link predicate: exported *and* has a BROWSABLE
    /// http(s) filter.
    pub fn is_deep_link_activity(&self) -> bool {
        self.kind == ComponentKind::Activity
            && self.exported
            && self
                .intent_filters
                .iter()
                .any(IntentFilter::is_web_deep_link)
    }
}

/// A parsed application manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Manifest {
    /// Application package (`com.example.app`).
    pub package: String,
    /// Version code.
    pub version_code: u32,
    /// Minimum SDK level.
    pub min_sdk: u16,
    /// Target SDK level.
    pub target_sdk: u16,
    /// Declared components.
    pub components: Vec<Component>,
}

impl Manifest {
    /// New manifest for `package`.
    pub fn new(package: impl Into<String>) -> Self {
        Manifest {
            package: package.into(),
            version_code: 1,
            min_sdk: 21,
            target_sdk: 33,
            components: Vec::new(),
        }
    }

    /// All activities.
    pub fn activities(&self) -> impl Iterator<Item = &Component> {
        self.components
            .iter()
            .filter(|c| c.kind == ComponentKind::Activity)
    }

    /// Deep-link activities to exclude from third-party WebView accounting.
    pub fn deep_link_activities(&self) -> Vec<&Component> {
        self.components
            .iter()
            .filter(|c| c.is_deep_link_activity())
            .collect()
    }

    /// Does any component claim `host` as a verified web link target?
    pub fn handles_web_host(&self, host: &str) -> bool {
        self.components
            .iter()
            .any(|c| c.exported && c.intent_filters.iter().any(|f| f.handles_host(host)))
    }

    /// Component whose class name matches, if any.
    pub fn component_by_class(&self, class_name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.class_name == class_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CATEGORY_DEFAULT, CATEGORY_LAUNCHER};

    pub(crate) fn sample_manifest() -> Manifest {
        let mut m = Manifest::new("com.example.app");
        m.components.push(Component {
            kind: ComponentKind::Activity,
            class_name: "com/example/app/MainActivity".into(),
            exported: true,
            intent_filters: vec![IntentFilter {
                actions: vec!["android.intent.action.MAIN".into()],
                categories: vec![CATEGORY_LAUNCHER.into()],
                data_schemes: vec![],
                data_hosts: vec![],
            }],
        });
        m.components.push(Component {
            kind: ComponentKind::Activity,
            class_name: "com/example/app/LinkActivity".into(),
            exported: true,
            intent_filters: vec![IntentFilter {
                actions: vec![ACTION_VIEW.into()],
                categories: vec![CATEGORY_BROWSABLE.into(), CATEGORY_DEFAULT.into()],
                data_schemes: vec!["https".into()],
                data_hosts: vec!["example.com".into()],
            }],
        });
        m.components.push(Component::simple(
            ComponentKind::Service,
            "com/example/app/SyncService",
        ));
        m
    }

    #[test]
    fn deep_link_detection() {
        let m = sample_manifest();
        let dl = m.deep_link_activities();
        assert_eq!(dl.len(), 1);
        assert_eq!(dl[0].class_name, "com/example/app/LinkActivity");
    }

    #[test]
    fn launcher_activity_is_not_deep_link() {
        let m = sample_manifest();
        let main = m
            .component_by_class("com/example/app/MainActivity")
            .unwrap();
        assert!(!main.is_deep_link_activity());
    }

    #[test]
    fn unexported_browsable_is_not_deep_link() {
        let mut m = sample_manifest();
        m.components[1].exported = false;
        assert!(m.deep_link_activities().is_empty());
    }

    #[test]
    fn custom_scheme_is_not_web_deep_link() {
        let f = IntentFilter {
            actions: vec![ACTION_VIEW.into()],
            categories: vec![CATEGORY_BROWSABLE.into()],
            data_schemes: vec!["myapp".into()],
            data_hosts: vec![],
        };
        assert!(!f.is_web_deep_link());
    }

    #[test]
    fn host_handling() {
        let m = sample_manifest();
        assert!(m.handles_web_host("example.com"));
        assert!(!m.handles_web_host("other.com"));
    }

    #[test]
    fn lifecycle_methods_nonempty() {
        for kind in [
            ComponentKind::Activity,
            ComponentKind::Service,
            ComponentKind::Receiver,
            ComponentKind::Provider,
        ] {
            assert!(!kind.lifecycle_methods().is_empty());
        }
        assert!(ComponentKind::Activity
            .lifecycle_methods()
            .contains(&"onCreate"));
    }
}
