//! Binary (de)serialization of [`Manifest`] for the SAPK manifest section.
//!
//! Layout: magic `"MFST"`, format version, then length-prefixed fields using
//! the shared `wla-apk` wire primitives. Validated on decode: unknown kinds,
//! truncation, and trailing bytes are all rejected.

use crate::model::{Component, ComponentKind, IntentFilter, Manifest};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use wla_apk::wire::{get_string, get_uvarint, put_string, put_uvarint};
use wla_apk::ApkError;

/// Magic bytes of a serialized manifest blob.
pub const MANIFEST_MAGIC: [u8; 4] = *b"MFST";
/// Current manifest wire version.
pub const MANIFEST_VERSION: u16 = 1;

fn kind_to_byte(kind: ComponentKind) -> u8 {
    match kind {
        ComponentKind::Activity => 0,
        ComponentKind::Service => 1,
        ComponentKind::Receiver => 2,
        ComponentKind::Provider => 3,
    }
}

fn kind_from_byte(b: u8) -> Result<ComponentKind, ApkError> {
    Ok(match b {
        0 => ComponentKind::Activity,
        1 => ComponentKind::Service,
        2 => ComponentKind::Receiver,
        3 => ComponentKind::Provider,
        _ => return Err(ApkError::Invalid("unknown component kind")),
    })
}

fn put_string_list<B: BufMut>(buf: &mut B, items: &[String]) {
    put_uvarint(buf, items.len() as u64);
    for s in items {
        put_string(buf, s);
    }
}

fn get_string_list<B: Buf>(buf: &mut B) -> Result<Vec<String>, ApkError> {
    let n = get_uvarint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        out.push(get_string(buf)?);
    }
    Ok(out)
}

/// Serialize a manifest to its SAPK-section byte form.
pub fn encode(m: &Manifest) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(&MANIFEST_MAGIC);
    buf.put_u16_le(MANIFEST_VERSION);
    put_string(&mut buf, &m.package);
    put_uvarint(&mut buf, m.version_code as u64);
    put_uvarint(&mut buf, m.min_sdk as u64);
    put_uvarint(&mut buf, m.target_sdk as u64);
    put_uvarint(&mut buf, m.components.len() as u64);
    for c in &m.components {
        buf.put_u8(kind_to_byte(c.kind));
        put_string(&mut buf, &c.class_name);
        buf.put_u8(c.exported as u8);
        put_uvarint(&mut buf, c.intent_filters.len() as u64);
        for f in &c.intent_filters {
            put_string_list(&mut buf, &f.actions);
            put_string_list(&mut buf, &f.categories);
            put_string_list(&mut buf, &f.data_schemes);
            put_string_list(&mut buf, &f.data_hosts);
        }
    }
    buf.freeze()
}

/// Parse a manifest blob, validating structure end-to-end.
pub fn decode(raw: &[u8]) -> Result<Manifest, ApkError> {
    let mut buf = raw;
    if buf.remaining() < 4 {
        return Err(ApkError::Truncated { context: "magic" });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MANIFEST_MAGIC {
        return Err(ApkError::BadMagic {
            expected: "MFST",
            found: magic,
        });
    }
    if buf.remaining() < 2 {
        return Err(ApkError::Truncated { context: "version" });
    }
    let version = buf.get_u16_le();
    if version != MANIFEST_VERSION {
        return Err(ApkError::UnsupportedVersion(version));
    }
    let package = get_string(&mut buf)?;
    let version_code = get_uvarint(&mut buf)? as u32;
    let min_sdk = get_uvarint(&mut buf)? as u16;
    let target_sdk = get_uvarint(&mut buf)? as u16;
    let n_components = get_uvarint(&mut buf)? as usize;
    let mut components = Vec::with_capacity(n_components.min(1 << 12));
    for _ in 0..n_components {
        if !buf.has_remaining() {
            return Err(ApkError::Truncated {
                context: "component kind",
            });
        }
        let kind = kind_from_byte(buf.get_u8())?;
        let class_name = get_string(&mut buf)?;
        if !buf.has_remaining() {
            return Err(ApkError::Truncated {
                context: "exported flag",
            });
        }
        let exported = buf.get_u8() != 0;
        let n_filters = get_uvarint(&mut buf)? as usize;
        let mut intent_filters = Vec::with_capacity(n_filters.min(1 << 8));
        for _ in 0..n_filters {
            intent_filters.push(IntentFilter {
                actions: get_string_list(&mut buf)?,
                categories: get_string_list(&mut buf)?,
                data_schemes: get_string_list(&mut buf)?,
                data_hosts: get_string_list(&mut buf)?,
            });
        }
        components.push(Component {
            kind,
            class_name,
            exported,
            intent_filters,
        });
    }
    if buf.has_remaining() {
        return Err(ApkError::Invalid("trailing bytes after manifest"));
    }
    Ok(Manifest {
        package,
        version_code,
        min_sdk,
        target_sdk,
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new("com.example.app");
        m.version_code = 42;
        m.components.push(Component {
            kind: ComponentKind::Activity,
            class_name: "com/example/app/MainActivity".into(),
            exported: true,
            intent_filters: vec![IntentFilter {
                actions: vec![crate::ACTION_VIEW.into()],
                categories: vec![crate::CATEGORY_BROWSABLE.into()],
                data_schemes: vec!["https".into()],
                data_hosts: vec!["example.com".into()],
            }],
        });
        m
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = encode(&m);
        assert_eq!(decode(&bytes).unwrap(), m);
    }

    #[test]
    fn empty_manifest_roundtrips() {
        let m = Manifest::new("");
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "accepted {cut}-byte prefix");
        }
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        // The component kind byte follows the fixed header + package string
        // + 3 varints + component count varint. Locate it by scanning for
        // the known class name and stepping back.
        let needle = b"com/example/app/MainActivity";
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        // kind byte sits before the class-name length varint (1 byte here).
        bytes[pos - 2] = 9;
        assert!(matches!(decode(&bytes), Err(ApkError::Invalid(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(ApkError::Invalid(_))));
    }

    fn arb_filter() -> impl Strategy<Value = IntentFilter> {
        (
            proptest::collection::vec("[a-z.]{1,20}", 0..3),
            proptest::collection::vec("[a-z.]{1,20}", 0..3),
            proptest::collection::vec("[a-z]{1,6}", 0..3),
            proptest::collection::vec("[a-z.]{1,20}", 0..3),
        )
            .prop_map(
                |(actions, categories, data_schemes, data_hosts)| IntentFilter {
                    actions,
                    categories,
                    data_schemes,
                    data_hosts,
                },
            )
    }

    fn arb_component() -> impl Strategy<Value = Component> {
        (
            prop_oneof![
                Just(ComponentKind::Activity),
                Just(ComponentKind::Service),
                Just(ComponentKind::Receiver),
                Just(ComponentKind::Provider)
            ],
            "[a-z/A-Z$0-9]{1,40}",
            any::<bool>(),
            proptest::collection::vec(arb_filter(), 0..3),
        )
            .prop_map(|(kind, class_name, exported, intent_filters)| Component {
                kind,
                class_name,
                exported,
                intent_filters,
            })
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            package in "[a-z.]{0,30}",
            version_code in any::<u32>(),
            min_sdk in any::<u16>(),
            target_sdk in any::<u16>(),
            components in proptest::collection::vec(arb_component(), 0..5),
        ) {
            let m = Manifest { package, version_code, min_sdk, target_sdk, components };
            let bytes = encode(&m);
            prop_assert_eq!(decode(&bytes).unwrap(), m);
        }

        #[test]
        fn prop_decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode(&raw);
        }
    }
}
