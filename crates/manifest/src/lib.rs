//! # wla-manifest — AndroidManifest model
//!
//! The paper's pipeline reads three things from each app's manifest:
//!
//! 1. the **component list** (activities, services, receivers, providers),
//!    which seeds entry-point discovery for the call-graph traversal;
//! 2. **deep-link activities** — `exported="true"` activities carrying an
//!    intent filter with category `android.intent.category.BROWSABLE` and an
//!    `http`/`https` data scheme. These "are likely to host first-party web
//!    content" and are *excluded* from the third-party measurements (§3.1.3);
//! 3. the **package name**.
//!
//! This crate models exactly that surface and (de)serializes it into the
//! SAPK manifest section. Serialization reuses the SDEX wire primitives so
//! the parsers share a hardened foundation.

pub mod model;
pub mod wireformat;

pub use model::{Component, ComponentKind, IntentFilter, Manifest};

/// Intent action for viewing a URI.
pub const ACTION_VIEW: &str = "android.intent.action.VIEW";
/// Intent category required for deep links clickable from the web.
pub const CATEGORY_BROWSABLE: &str = "android.intent.category.BROWSABLE";
/// Intent category for the default handler.
pub const CATEGORY_DEFAULT: &str = "android.intent.category.DEFAULT";
/// Intent category marking a launcher entry.
pub const CATEGORY_LAUNCHER: &str = "android.intent.category.LAUNCHER";
