//! # wla-report — tables, figures, and paper-vs-measured comparisons
//!
//! Rendering layer shared by the experiment binaries: ASCII/markdown
//! tables shaped like the paper's, CSV series for figures, text heatmaps
//! (Figure 4), horizontal bar charts (Figures 6/7), and comparison tables
//! recording paper value vs measured value with relative error.

pub mod compare;
pub mod figure;
pub mod json;
pub mod provenance;
pub mod stats;
pub mod table;

pub use compare::{Comparison, ComparisonRow, Verdict};
pub use figure::{bar_chart, heatmap, Series};
pub use provenance::UrlOriginReport;
pub use stats::{CrawlStatsReport, PipelineStatsReport, ServerStatsReport};
pub use table::Table;

/// Format an integer with thousands separators, as the paper prints them.
pub fn thousands(n: u64) -> String {
    let raw = n.to_string();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(146_558), "146,558");
        assert_eq!(thousands(6_507_222), "6,507,222");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.557), "55.7%");
        assert_eq!(percent(1.0), "100.0%");
    }
}
