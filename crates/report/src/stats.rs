//! Pipeline observability rendering.
//!
//! `wla-report` stays dependency-free, so the static pipeline's stats
//! arrive here as a plain-data [`PipelineStatsReport`] (filled in by
//! `wla-core::experiments::pipeline_stats_report`) rather than as the
//! `wla-static` struct itself.

use crate::table::Table;
use crate::{percent, thousands};

/// Flattened pipeline run statistics, ready to render.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineStatsReport {
    /// Corpus size.
    pub total: u64,
    /// Successfully analyzed apps.
    pub analyzed: u64,
    /// Broken containers (decode/analysis failures, incl. panics).
    pub broken: u64,
    /// Analyses recovered from a panic by the fault isolation.
    pub panicked: u64,
    /// End-to-end wall-clock milliseconds.
    pub wall_ms: f64,
    /// Milliseconds spent in the serial join tail (stats fold, input-order
    /// merge, local→global symbol remap) after the worker pool finished.
    pub serial_tail_ms: f64,
    /// Corpus throughput.
    pub apps_per_second: f64,
    /// Worker-pool utilization in `0.0..=1.0`.
    pub utilization: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Indices claimed per atomic increment.
    pub batch: usize,
    /// `(stage name, cumulative milliseconds)` in pipeline order; empty
    /// when stage timing was disabled.
    pub stages_ms: Vec<(String, f64)>,
    /// `(failure kind, count)` taxonomy, sorted by kind.
    pub failure_kinds: Vec<(String, u64)>,
    /// Distinct strings in the merged global symbol table.
    pub interned_symbols: u64,
    /// Bytes held by the global symbol table.
    pub interned_bytes: u64,
    /// Worker-local interner hit rate in `0.0..=1.0` (repeat lookups that
    /// avoided allocating a new symbol).
    pub intern_hit_rate: f64,
    /// Worker-local package-label cache hit rate in `0.0..=1.0`.
    pub label_hit_rate: f64,
    /// Fraction of the pre-sized global-table capacity actually used at
    /// join time in `0.0..=1.0` (0 when the join did not pre-size).
    pub presize_hit_rate: f64,
    /// CSR call-graph edges built across the run (after dedup).
    pub callgraph_edges: u64,
    /// Vtable-cache hit rate for virtual resolution in `0.0..=1.0`.
    pub vtable_hit_rate: f64,
    /// Reachability traversals that reused a worker's bitset scratch
    /// without growing it.
    pub bitset_reuses: u64,
    /// Traversal speed: CSR edges scanned per second of callgraph-stage
    /// time (0 when stage timing was disabled).
    pub edges_per_second: f64,
    /// Dex decodes that ran full structural verification
    /// (`VerifyPreset::All`).
    pub decode_full: u64,
    /// Dex decodes that verified only the checksum
    /// (`VerifyPreset::ChecksumOnly`).
    pub decode_checksum_only: u64,
    /// Fully trusted dex decodes (`VerifyPreset::None`).
    pub decode_trusted: u64,
    /// Decoded dexes carrying a stored type lookup table.
    pub lut_present: u64,
    /// Dexes whose probe table had to be built lazily (no usable stored
    /// table).
    pub lut_rebuilds: u64,
    /// Methods run through the constant-propagation pass (0 when the
    /// pass was ablated).
    pub dataflow_methods: u64,
    /// Fraction of those methods that took the branch-free linear fast
    /// path in `0.0..=1.0`.
    pub dataflow_linear_rate: f64,
    /// Invoke sites the pass classified (every invoke, not only the
    /// URL-bearing ones the census filters to).
    pub dataflow_sites: u64,
    /// Fraction of classified sites resolved to a single constant in
    /// `0.0..=1.0`.
    pub dataflow_resolved_rate: f64,
    /// Shards opened, validated, and analyzed (shard-streaming runs only;
    /// all stream fields stay zero for in-memory runs).
    pub shards_read: u64,
    /// Shards served entirely from the resume manifest.
    pub shards_cached: u64,
    /// Shard files that failed to open or validate.
    pub shard_failures: u64,
    /// `(failure kind, count)` shard-level taxonomy, sorted by kind.
    pub shard_failure_kinds: Vec<(String, u64)>,
    /// Entries analyzed from shard bytes.
    pub entries_streamed: u64,
    /// Entries whose results were loaded from the resume manifest.
    pub entries_cached: u64,
    /// Total shard bytes opened through `mmap`.
    pub bytes_mapped: u64,
    /// High-water mark of concurrently mapped shard bytes — the streaming
    /// run's address-space footprint.
    pub peak_mapped_bytes: u64,
}

/// Render a byte count as a human MiB figure.
fn mebibytes(bytes: u64) -> String {
    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
}

impl PipelineStatsReport {
    /// The run-summary table (counts, throughput, scheduling).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new("Pipeline run summary", &["Metric", "Value"]);
        t.row_owned(vec!["Apps total".into(), thousands(self.total)]);
        t.row_owned(vec!["Apps analyzed".into(), thousands(self.analyzed)]);
        t.row_owned(vec!["Apps broken".into(), thousands(self.broken)]);
        t.row_owned(vec!["  of which panicked".into(), thousands(self.panicked)]);
        t.row_owned(vec!["Wall time".into(), format!("{:.1} ms", self.wall_ms)]);
        if self.serial_tail_ms > 0.0 {
            t.row_owned(vec![
                "  of which serial tail".into(),
                format!("{:.1} ms", self.serial_tail_ms),
            ]);
        }
        t.row_owned(vec![
            "Throughput".into(),
            format!("{:.0} apps/s", self.apps_per_second),
        ]);
        t.row_owned(vec![
            "Worker threads".into(),
            format!("{} (batch {})", self.workers, self.batch),
        ]);
        t.row_owned(vec!["Pool utilization".into(), percent(self.utilization)]);
        if self.interned_symbols > 0 {
            t.row_owned(vec![
                "Interned symbols".into(),
                format!(
                    "{} ({} KiB)",
                    thousands(self.interned_symbols),
                    self.interned_bytes / 1024
                ),
            ]);
            t.row_owned(vec![
                "Intern cache hit rate".into(),
                percent(self.intern_hit_rate),
            ]);
            t.row_owned(vec![
                "Label cache hit rate".into(),
                percent(self.label_hit_rate),
            ]);
            if self.presize_hit_rate > 0.0 {
                t.row_owned(vec![
                    "Interner pre-size hit rate".into(),
                    percent(self.presize_hit_rate),
                ]);
            }
        }
        if self.callgraph_edges > 0 {
            t.row_owned(vec![
                "Call-graph edges (CSR)".into(),
                thousands(self.callgraph_edges),
            ]);
            t.row_owned(vec![
                "Vtable cache hit rate".into(),
                percent(self.vtable_hit_rate),
            ]);
            t.row_owned(vec![
                "Bitset scratch reuses".into(),
                thousands(self.bitset_reuses),
            ]);
            if self.edges_per_second > 0.0 {
                t.row_owned(vec![
                    "Traversal speed".into(),
                    format!("{:.1} Medges/s", self.edges_per_second / 1e6),
                ]);
            }
        }
        let decodes = self.decode_full + self.decode_checksum_only + self.decode_trusted;
        if decodes > 0 {
            t.row_owned(vec![
                "Dex decodes (full verify)".into(),
                format!("{} of {}", thousands(self.decode_full), thousands(decodes)),
            ]);
            if self.decode_checksum_only + self.decode_trusted > 0 {
                t.row_owned(vec![
                    "  checksum-only / trusted".into(),
                    format!(
                        "{} / {}",
                        thousands(self.decode_checksum_only),
                        thousands(self.decode_trusted)
                    ),
                ]);
            }
            t.row_owned(vec![
                "Stored lookup tables".into(),
                format!(
                    "{} ({} rebuilt lazily)",
                    thousands(self.lut_present),
                    thousands(self.lut_rebuilds)
                ),
            ]);
        }
        if self.dataflow_methods > 0 {
            t.row_owned(vec![
                "Dataflow methods (linear)".into(),
                format!(
                    "{} ({})",
                    thousands(self.dataflow_methods),
                    percent(self.dataflow_linear_rate)
                ),
            ]);
            t.row_owned(vec![
                "Invokes resolved to consts".into(),
                format!(
                    "{} of {}",
                    percent(self.dataflow_resolved_rate),
                    thousands(self.dataflow_sites)
                ),
            ]);
        }
        t
    }

    /// Per-stage timing table; `None` when stage timing was disabled.
    pub fn stage_table(&self) -> Option<Table> {
        if self.stages_ms.is_empty() {
            return None;
        }
        let stage_total: f64 = self.stages_ms.iter().map(|(_, ms)| ms).sum();
        let mut t = Table::new(
            "Per-stage analysis time (summed over apps)",
            &["Stage", "Time (ms)", "Share"],
        );
        for (stage, ms) in &self.stages_ms {
            let share = if stage_total > 0.0 {
                ms / stage_total
            } else {
                0.0
            };
            t.row_owned(vec![stage.clone(), format!("{ms:.1}"), percent(share)]);
        }
        t.row_owned(vec![
            "total".into(),
            format!("{stage_total:.1}"),
            percent(1.0),
        ]);
        Some(t)
    }

    /// Shard-streaming table; `None` when the run was in-memory (no
    /// shards touched).
    pub fn streaming_table(&self) -> Option<Table> {
        if self.shards_read + self.shards_cached + self.shard_failures == 0 {
            return None;
        }
        let mut t = Table::new("Shard streaming", &["Metric", "Value"]);
        t.row_owned(vec!["Shards read".into(), thousands(self.shards_read)]);
        t.row_owned(vec![
            "Shards from resume cache".into(),
            thousands(self.shards_cached),
        ]);
        if self.shard_failures > 0 {
            t.row_owned(vec!["Shards failed".into(), thousands(self.shard_failures)]);
            for (kind, count) in &self.shard_failure_kinds {
                t.row_owned(vec![format!("  {kind}"), thousands(*count)]);
            }
        }
        t.row_owned(vec![
            "Entries streamed".into(),
            thousands(self.entries_streamed),
        ]);
        t.row_owned(vec![
            "Entries from resume cache".into(),
            thousands(self.entries_cached),
        ]);
        if self.bytes_mapped > 0 {
            t.row_owned(vec!["Bytes mapped".into(), mebibytes(self.bytes_mapped)]);
            t.row_owned(vec![
                "Peak concurrently mapped".into(),
                mebibytes(self.peak_mapped_bytes),
            ]);
        }
        Some(t)
    }

    /// Failure taxonomy table; `None` when nothing broke.
    pub fn failure_table(&self) -> Option<Table> {
        if self.failure_kinds.is_empty() {
            return None;
        }
        let mut t = Table::new("Failure taxonomy", &["Kind", "Apps"]);
        for (kind, count) in &self.failure_kinds {
            t.row_owned(vec![kind.clone(), thousands(*count)]);
        }
        Some(t)
    }

    /// Render every section as one text block.
    pub fn render(&self) -> String {
        let mut out = self.summary_table().render();
        if let Some(stages) = self.stage_table() {
            out.push('\n');
            out.push_str(&stages.render());
        }
        if let Some(failures) = self.failure_table() {
            out.push('\n');
            out.push_str(&failures.render());
        }
        if let Some(streaming) = self.streaming_table() {
            out.push('\n');
            out.push_str(&streaming.render());
        }
        out
    }
}

/// Flattened crawl-pipeline statistics, ready to render (filled in by
/// `wla-core::experiments::crawl_stats_report`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrawlStatsReport {
    /// Visits in the crawl matrix (`rows × sites`).
    pub visits_total: u64,
    /// Visits that produced a record.
    pub visits_completed: u64,
    /// Visits isolated by the per-visit fault boundary.
    pub visits_panicked: u64,
    /// Matrix rows (baseline + apps).
    pub rows: u64,
    /// Sites crawled per row.
    pub sites: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Visit indices claimed per atomic increment.
    pub batch: usize,
    /// Script steps executed across completed visits.
    pub steps_executed: u64,
    /// Netlog events captured across completed visits.
    pub requests_logged: u64,
    /// End-to-end wall-clock milliseconds.
    pub wall_ms: f64,
    /// Milliseconds preparing per-site pages before the pool started.
    pub prepare_ms: f64,
    /// Summed worker busy milliseconds.
    pub visit_ms: f64,
    /// Milliseconds in the serial join tail (merge, symbol remap, figure
    /// fold).
    pub merge_ms: f64,
    /// Visit throughput.
    pub visits_per_second: f64,
    /// Worker-pool utilization in `0.0..=1.0`.
    pub utilization: f64,
    /// Distinct strings in the merged global symbol table.
    pub interned_symbols: u64,
    /// Bytes held by the global symbol table.
    pub interned_bytes: u64,
    /// Worker-local interner hit rate in `0.0..=1.0`.
    pub intern_hit_rate: f64,
    /// Per-host classification memo hit rate in `0.0..=1.0`.
    pub classify_hit_rate: f64,
    /// `(failure kind, count)` taxonomy, sorted by kind.
    pub failure_kinds: Vec<(String, u64)>,
}

impl CrawlStatsReport {
    /// The run-summary table (matrix shape, counts, throughput, caches).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new("Crawl run summary", &["Metric", "Value"]);
        t.row_owned(vec![
            "Visit matrix".into(),
            format!(
                "{} rows x {} sites = {}",
                self.rows,
                self.sites,
                thousands(self.visits_total)
            ),
        ]);
        t.row_owned(vec![
            "Visits completed".into(),
            thousands(self.visits_completed),
        ]);
        if self.visits_panicked > 0 {
            t.row_owned(vec![
                "  of which panicked".into(),
                thousands(self.visits_panicked),
            ]);
        }
        t.row_owned(vec![
            "Script steps executed".into(),
            thousands(self.steps_executed),
        ]);
        t.row_owned(vec![
            "Netlog events captured".into(),
            thousands(self.requests_logged),
        ]);
        t.row_owned(vec!["Wall time".into(), format!("{:.1} ms", self.wall_ms)]);
        t.row_owned(vec![
            "Throughput".into(),
            format!("{:.0} visits/s", self.visits_per_second),
        ]);
        t.row_owned(vec![
            "Worker threads".into(),
            format!("{} (batch {})", self.workers, self.batch),
        ]);
        t.row_owned(vec!["Pool utilization".into(), percent(self.utilization)]);
        if self.interned_symbols > 0 {
            t.row_owned(vec![
                "Interned symbols".into(),
                format!(
                    "{} ({} KiB)",
                    thousands(self.interned_symbols),
                    self.interned_bytes / 1024
                ),
            ]);
            t.row_owned(vec![
                "Intern cache hit rate".into(),
                percent(self.intern_hit_rate),
            ]);
            t.row_owned(vec![
                "Classify memo hit rate".into(),
                percent(self.classify_hit_rate),
            ]);
        }
        t
    }

    /// Where the wall clock went: page prep, the pool, the serial tail.
    pub fn timing_table(&self) -> Table {
        let mut t = Table::new("Crawl phase timing", &["Phase", "Time (ms)"]);
        t.row_owned(vec![
            "prepare pages".into(),
            format!("{:.1}", self.prepare_ms),
        ]);
        t.row_owned(vec![
            "visits (summed busy)".into(),
            format!("{:.1}", self.visit_ms),
        ]);
        t.row_owned(vec!["merge tail".into(), format!("{:.1}", self.merge_ms)]);
        t.row_owned(vec!["wall".into(), format!("{:.1}", self.wall_ms)]);
        t
    }

    /// Failure taxonomy table; `None` when every visit completed.
    pub fn failure_table(&self) -> Option<Table> {
        if self.failure_kinds.is_empty() {
            return None;
        }
        let mut t = Table::new("Crawl failure taxonomy", &["Kind", "Visits"]);
        for (kind, count) in &self.failure_kinds {
            t.row_owned(vec![kind.clone(), thousands(*count)]);
        }
        Some(t)
    }

    /// Render every section as one text block.
    pub fn render(&self) -> String {
        let mut out = self.summary_table().render();
        out.push('\n');
        out.push_str(&self.timing_table().render());
        if let Some(failures) = self.failure_table() {
            out.push('\n');
            out.push_str(&failures.render());
        }
        out
    }
}

/// Flattened HTTP-server statistics, ready to render (filled in from
/// `wla-net`'s `ServerStatsSnapshot` by `wla-core::service::server_stats_report`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStatsReport {
    /// Connections accepted and served (excludes shed ones).
    pub accepted: u64,
    /// Connections answered with an immediate 503 past the high-water mark.
    pub shed: u64,
    /// Connections open at snapshot time.
    pub active: u64,
    /// Connections closed by the idle-timeout sweep.
    pub idle_closed: u64,
    /// Requests parsed and dispatched.
    pub requests: u64,
    /// Requests served on an already-warm connection (keep-alive payoff).
    pub keepalive_requests: u64,
    /// Malformed/oversized requests answered with a 4xx.
    pub parse_failures: u64,
    /// Mean requests per accepted connection.
    pub requests_per_connection: f64,
    /// Median service time, microseconds.
    pub p50_us: f64,
    /// 99th-percentile service time, microseconds.
    pub p99_us: f64,
}

impl ServerStatsReport {
    /// The server summary table (connections, requests, latency).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new("HTTP server summary", &["Metric", "Value"]);
        t.row_owned(vec![
            "Connections accepted".into(),
            thousands(self.accepted),
        ]);
        if self.shed > 0 {
            t.row_owned(vec!["Connections shed (503)".into(), thousands(self.shed)]);
        }
        t.row_owned(vec!["Connections active".into(), thousands(self.active)]);
        if self.idle_closed > 0 {
            t.row_owned(vec![
                "Idle connections swept".into(),
                thousands(self.idle_closed),
            ]);
        }
        t.row_owned(vec!["Requests served".into(), thousands(self.requests)]);
        t.row_owned(vec![
            "  of which keep-alive".into(),
            thousands(self.keepalive_requests),
        ]);
        if self.parse_failures > 0 {
            t.row_owned(vec![
                "Parse failures (4xx)".into(),
                thousands(self.parse_failures),
            ]);
        }
        t.row_owned(vec![
            "Requests / connection".into(),
            format!("{:.2}", self.requests_per_connection),
        ]);
        t.row_owned(vec![
            "Service time p50".into(),
            format!("{:.1} us", self.p50_us),
        ]);
        t.row_owned(vec![
            "Service time p99".into(),
            format!("{:.1} us", self.p99_us),
        ]);
        t
    }

    /// Render the report as one text block.
    pub fn render(&self) -> String {
        self.summary_table().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineStatsReport {
        PipelineStatsReport {
            total: 1468,
            analyzed: 1466,
            broken: 2,
            panicked: 1,
            wall_ms: 321.5,
            serial_tail_ms: 4.2,
            apps_per_second: 4566.0,
            utilization: 0.93,
            workers: 8,
            batch: 22,
            stages_ms: vec![
                ("decode".into(), 100.0),
                ("decompile".into(), 50.0),
                ("callgraph".into(), 30.0),
                ("label".into(), 20.0),
            ],
            failure_kinds: vec![("analysis-panic".into(), 1), ("bad-magic".into(), 1)],
            interned_symbols: 20_480,
            interned_bytes: 524_288,
            intern_hit_rate: 0.42,
            label_hit_rate: 0.87,
            presize_hit_rate: 0.61,
            callgraph_edges: 123_456,
            vtable_hit_rate: 0.75,
            bitset_reuses: 1_460,
            edges_per_second: 2_500_000.0,
            decode_full: 1_500,
            decode_checksum_only: 12,
            decode_trusted: 3,
            lut_present: 1_515,
            lut_rebuilds: 0,
            dataflow_methods: 9_876,
            dataflow_linear_rate: 0.94,
            dataflow_sites: 3_210,
            dataflow_resolved_rate: 1.0,
            shards_read: 144,
            shards_cached: 1_324,
            shard_failures: 1,
            shard_failure_kinds: vec![("checksum-mismatch".into(), 1)],
            entries_streamed: 1_440,
            entries_cached: 13_240,
            bytes_mapped: 75_497_472,
            peak_mapped_bytes: 8_388_608,
        }
    }

    #[test]
    fn render_includes_all_sections() {
        let r = sample().render();
        assert!(r.contains("Pipeline run summary"));
        assert!(r.contains("1,468"));
        assert!(r.contains("4566 apps/s"));
        assert!(r.contains("8 (batch 22)"));
        assert!(r.contains("Per-stage analysis time"));
        assert!(r.contains("decode"));
        assert!(r.contains("50.0%")); // decode share of the 200ms stage total
        assert!(r.contains("Failure taxonomy"));
        assert!(r.contains("analysis-panic"));
        assert!(r.contains("20,480 (512 KiB)"));
        assert!(r.contains("87.0%")); // label cache hit rate
        assert!(r.contains("serial tail"));
        assert!(r.contains("4.2 ms"));
        assert!(r.contains("61.0%")); // interner pre-size hit rate
        assert!(r.contains("123,456")); // CSR edges
        assert!(r.contains("75.0%")); // vtable hit rate
        assert!(r.contains("1,460")); // bitset reuses
        assert!(r.contains("2.5 Medges/s"));
        assert!(r.contains("1,500 of 1,515")); // full-verify decodes
        assert!(r.contains("12 / 3")); // checksum-only / trusted decodes
        assert!(r.contains("1,515 (0 rebuilt lazily)")); // stored lookup tables
        assert!(r.contains("9,876 (94.0%)")); // dataflow methods, linear share
        assert!(r.contains("100.0% of 3,210")); // URL-site resolution
        assert!(r.contains("Shard streaming"));
        assert!(r.contains("1,324")); // shards served from resume cache
        assert!(r.contains("checksum-mismatch"));
        assert!(r.contains("72.0 MiB")); // bytes mapped
        assert!(r.contains("8.0 MiB")); // peak concurrently mapped
    }

    #[test]
    fn interner_rows_are_optional() {
        let r = PipelineStatsReport::default().render();
        assert!(!r.contains("Interned symbols"));
        assert!(!r.contains("Call-graph edges"));
        assert!(!r.contains("serial tail"));
        assert!(!r.contains("pre-size"));
        assert!(!r.contains("Dataflow methods"));
        assert!(!r.contains("Dex decodes"));
        assert!(!r.contains("Shard streaming"));
    }

    fn crawl_sample() -> CrawlStatsReport {
        CrawlStatsReport {
            visits_total: 1100,
            visits_completed: 1099,
            visits_panicked: 1,
            rows: 11,
            sites: 100,
            workers: 8,
            batch: 18,
            steps_executed: 10_990,
            requests_logged: 54_321,
            wall_ms: 12.5,
            prepare_ms: 0.8,
            visit_ms: 11.0,
            merge_ms: 0.6,
            visits_per_second: 87_920.0,
            utilization: 0.88,
            interned_symbols: 160,
            interned_bytes: 4_096,
            intern_hit_rate: 0.97,
            classify_hit_rate: 0.93,
            failure_kinds: vec![("visit-panic".into(), 1)],
        }
    }

    #[test]
    fn crawl_render_includes_all_sections() {
        let r = crawl_sample().render();
        assert!(r.contains("Crawl run summary"));
        assert!(r.contains("11 rows x 100 sites = 1,100"));
        assert!(r.contains("1,099"));
        assert!(r.contains("10,990")); // script steps
        assert!(r.contains("54,321")); // netlog events
        assert!(r.contains("87920 visits/s"));
        assert!(r.contains("8 (batch 18)"));
        assert!(r.contains("97.0%")); // intern hit rate
        assert!(r.contains("93.0%")); // classify memo hit rate
        assert!(r.contains("Crawl phase timing"));
        assert!(r.contains("prepare pages"));
        assert!(r.contains("merge tail"));
        assert!(r.contains("Crawl failure taxonomy"));
        assert!(r.contains("visit-panic"));
    }

    #[test]
    fn crawl_failure_table_is_optional() {
        let r = CrawlStatsReport::default().render();
        assert!(r.contains("Crawl run summary"));
        assert!(!r.contains("Crawl failure taxonomy"));
        assert!(!r.contains("Interned symbols"));
        assert!(!r.contains("panicked"));
    }

    fn server_sample() -> ServerStatsReport {
        ServerStatsReport {
            accepted: 64,
            shed: 3,
            active: 2,
            idle_closed: 5,
            requests: 6_400,
            keepalive_requests: 6_336,
            parse_failures: 1,
            requests_per_connection: 100.0,
            p50_us: 42.5,
            p99_us: 812.0,
        }
    }

    #[test]
    fn server_render_includes_all_rows() {
        let r = server_sample().render();
        assert!(r.contains("HTTP server summary"));
        assert!(r.contains("6,400"));
        assert!(r.contains("6,336")); // keep-alive requests
        assert!(r.contains("Connections shed (503)"));
        assert!(r.contains("Idle connections swept"));
        assert!(r.contains("Parse failures (4xx)"));
        assert!(r.contains("100.00")); // requests per connection
        assert!(r.contains("42.5 us"));
        assert!(r.contains("812.0 us"));
    }

    #[test]
    fn server_zero_rows_are_optional() {
        let r = ServerStatsReport::default().render();
        assert!(r.contains("HTTP server summary"));
        assert!(!r.contains("shed"));
        assert!(!r.contains("swept"));
        assert!(!r.contains("Parse failures"));
    }

    #[test]
    fn stage_and_failure_tables_are_optional() {
        let empty = PipelineStatsReport::default();
        assert!(empty.stage_table().is_none());
        assert!(empty.failure_table().is_none());
        let r = empty.render();
        assert!(r.contains("Pipeline run summary"));
        assert!(!r.contains("Failure taxonomy"));
    }
}
