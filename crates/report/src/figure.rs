//! Figure rendering: series → CSV, ASCII bar charts, and text heatmaps.

/// A named series of (label, value) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name.
    pub name: String,
    /// Data points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// New series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn point(&mut self, label: impl Into<String>, value: f64) -> &mut Series {
        self.points.push((label.into(), value));
        self
    }

    /// Maximum value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }
}

/// Render several series (sharing labels) as CSV: `label,series1,series2…`.
pub fn series_csv(series: &[Series]) -> String {
    let mut out = String::from("label");
    for s in series {
        out.push(',');
        out.push_str(&s.name);
    }
    out.push('\n');
    let labels: Vec<&String> = series
        .first()
        .map(|s| s.points.iter().map(|(l, _)| l).collect())
        .unwrap_or_default();
    for (i, label) in labels.iter().enumerate() {
        out.push_str(label);
        for s in series {
            out.push(',');
            let v = s.points.get(i).map(|(_, v)| *v).unwrap_or(f64::NAN);
            out.push_str(&format!("{v:.3}"));
        }
        out.push('\n');
    }
    out
}

/// Horizontal ASCII bar chart for one series.
pub fn bar_chart(series: &Series, width: usize) -> String {
    let max = series.max().max(f64::EPSILON);
    let label_w = series
        .points
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("{}\n", series.name);
    for (label, value) in &series.points {
        let bars = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_w$} | {} {value:.2}\n",
            "#".repeat(bars)
        ));
    }
    out
}

/// Text heatmap: rows × columns of fractions rendered as percentages with
/// shade glyphs.
pub fn heatmap(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    let shade = |v: f64| -> char {
        match v {
            v if v >= 0.8 => '█',
            v if v >= 0.6 => '▓',
            v if v >= 0.4 => '▒',
            v if v >= 0.2 => '░',
            v if v > 0.0 => '·',
            _ => ' ',
        }
    };
    let row_w = row_labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("{title}\n");
    out.push_str(&format!("{:row_w$}  ", ""));
    for c in col_labels {
        out.push_str(&format!("{:>24}", c));
    }
    out.push('\n');
    for (i, row_label) in row_labels.iter().enumerate() {
        out.push_str(&format!("{row_label:<row_w$}  "));
        for j in 0..col_labels.len() {
            let v = values.get(i).and_then(|r| r.get(j)).copied().unwrap_or(0.0);
            out.push_str(&format!("{:>18}{:>5.1}%", shade(v), v * 100.0));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        let mut s = Series::new("endpoints");
        s.point("News", 7.0).point("Search", 2.0);
        s
    }

    #[test]
    fn csv_output() {
        let csv = series_csv(&[series()]);
        assert!(csv.starts_with("label,endpoints\n"));
        assert!(csv.contains("News,7.000"));
        assert!(csv.contains("Search,2.000"));
    }

    #[test]
    fn csv_multi_series() {
        let mut s2 = Series::new("trackers");
        s2.point("News", 2.5).point("Search", 0.5);
        let csv = series_csv(&[series(), s2]);
        assert!(csv.contains("label,endpoints,trackers"));
        assert!(csv.contains("News,7.000,2.500"));
    }

    #[test]
    fn bar_chart_scales() {
        let chart = bar_chart(&series(), 20);
        let news_line = chart.lines().find(|l| l.contains("News")).unwrap();
        let search_line = chart.lines().find(|l| l.contains("Search")).unwrap();
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(news_line), 20);
        assert!(count(search_line) < count(news_line));
    }

    #[test]
    fn heatmap_renders_all_cells() {
        let hm = heatmap(
            "Figure 4",
            &["Advertising".into(), "Payments".into()],
            &["loadUrl".into(), "postUrl".into()],
            &[vec![0.95, 0.05], vec![0.9, 0.3]],
        );
        assert!(hm.contains("Advertising"));
        assert!(hm.contains("95.0%"));
        assert!(hm.contains("30.0%"));
    }

    #[test]
    fn empty_series_is_safe() {
        let s = Series::new("empty");
        assert_eq!(s.max(), 0.0);
        let _ = bar_chart(&s, 10);
        let _ = series_csv(&[s]);
    }
}
