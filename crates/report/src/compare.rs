//! Paper-vs-measured comparison tables — the backbone of EXPERIMENTS.md.

use crate::table::Table;
use crate::thousands;

/// Shape verdict for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the tolerance band.
    Match,
    /// Outside tolerance but same ordering/shape.
    Close,
    /// Wrong shape.
    Mismatch,
}

impl Verdict {
    /// Display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Verdict::Match => "OK",
            Verdict::Close => "~",
            Verdict::Mismatch => "X",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Metric name.
    pub metric: String,
    /// Paper-reported value.
    pub paper: f64,
    /// Our measured value (rescaled to paper scale where applicable).
    pub measured: f64,
}

impl ComparisonRow {
    /// Relative error of measured vs paper (0 when both are 0).
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }

    /// Verdict at the given tolerance (e.g. 0.15 ⇒ within 15% is a match,
    /// within 3× tolerance is close).
    pub fn verdict(&self, tolerance: f64) -> Verdict {
        let err = self.relative_error();
        if err <= tolerance {
            Verdict::Match
        } else if err <= tolerance * 3.0 {
            Verdict::Close
        } else {
            Verdict::Mismatch
        }
    }
}

/// A comparison set for one experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Comparison {
    /// Experiment id (e.g. `table7`).
    pub experiment: String,
    /// Compared metrics.
    pub rows: Vec<ComparisonRow>,
    /// Tolerance used for verdicts.
    pub tolerance: f64,
}

impl Comparison {
    /// New comparison with the default 15% tolerance.
    pub fn new(experiment: impl Into<String>) -> Comparison {
        Comparison {
            experiment: experiment.into(),
            rows: Vec::new(),
            tolerance: 0.15,
        }
    }

    /// Add one metric.
    pub fn add(&mut self, metric: impl Into<String>, paper: f64, measured: f64) -> &mut Comparison {
        self.rows.push(ComparisonRow {
            metric: metric.into(),
            paper,
            measured,
        });
        self
    }

    /// Fraction of rows that match.
    pub fn match_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.rows
            .iter()
            .filter(|r| r.verdict(self.tolerance) == Verdict::Match)
            .count() as f64
            / self.rows.len() as f64
    }

    /// Render as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!("{} — paper vs measured", self.experiment),
            &["Metric", "Paper", "Measured", "Rel. err", "Verdict"],
        );
        for r in &self.rows {
            let fmt = |v: f64| {
                if v.fract() == 0.0 && v.abs() < 1e15 && v.abs() >= 1000.0 {
                    thousands(v.abs() as u64)
                } else if v.fract() == 0.0 {
                    format!("{v:.0}")
                } else {
                    format!("{v:.2}")
                }
            };
            t.row_owned(vec![
                r.metric.clone(),
                fmt(r.paper),
                fmt(r.measured),
                if r.relative_error().is_finite() {
                    format!("{:.1}%", r.relative_error() * 100.0)
                } else {
                    "inf".to_owned()
                },
                r.verdict(self.tolerance).symbol().to_owned(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_and_verdicts() {
        let row = ComparisonRow {
            metric: "webview apps".into(),
            paper: 100.0,
            measured: 110.0,
        };
        assert!((row.relative_error() - 0.1).abs() < 1e-9);
        assert_eq!(row.verdict(0.15), Verdict::Match);
        assert_eq!(row.verdict(0.05), Verdict::Close);
        assert_eq!(row.verdict(0.01), Verdict::Mismatch);
    }

    #[test]
    fn zero_paper_value() {
        let exact = ComparisonRow {
            metric: "x".into(),
            paper: 0.0,
            measured: 0.0,
        };
        assert_eq!(exact.relative_error(), 0.0);
        let off = ComparisonRow {
            metric: "x".into(),
            paper: 0.0,
            measured: 1.0,
        };
        assert!(off.relative_error().is_infinite());
        assert_eq!(off.verdict(0.15), Verdict::Mismatch);
    }

    #[test]
    fn comparison_table_renders() {
        let mut c = Comparison::new("table7");
        c.add("Apps using WebViews", 81_720.0, 80_100.0);
        c.add("Apps using CTs", 29_130.0, 29_900.0);
        assert_eq!(c.match_fraction(), 1.0);
        let rendered = c.to_table().render();
        assert!(rendered.contains("81,720"));
        assert!(rendered.contains("OK"));
    }
}
