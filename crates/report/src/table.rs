//! ASCII / markdown table rendering.

/// A rectangular table with a title.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; ragged rows are padded with empty cells on render.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[&str]) -> &mut Table {
        self.rows
            .push(cells.iter().map(|c| (*c).to_owned()).collect());
        self
    }

    /// Append a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0)
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self.column_count();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        widths
    }

    /// Render as a boxed ASCII table.
    pub fn render(&self) -> String {
        let widths = self.widths();
        if widths.is_empty() {
            return format!("{}\n(empty)\n", self.title);
        }
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let render_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                // Right-align numeric-looking cells.
                let numeric = !cell.is_empty()
                    && cell
                        .chars()
                        .all(|c| c.is_ascii_digit() || ",.%-+".contains(c));
                if numeric {
                    line.push_str(&format!(" {cell:>w$} |", w = w));
                } else {
                    line.push_str(&format!(" {cell:<w$} |", w = w));
                }
            }
            line
        };

        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        if !self.headers.is_empty() {
            out.push_str(&render_row(&self.headers));
            out.push('\n');
            out.push_str(&sep);
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    /// Render as GitHub-flavored markdown.
    pub fn render_markdown(&self) -> String {
        let cols = self.column_count();
        let mut out = format!("**{}**\n\n", self.title);
        let headers: Vec<&str> = (0..cols)
            .map(|i| self.headers.get(i).map(String::as_str).unwrap_or(""))
            .collect();
        out.push_str(&format!("| {} |\n", headers.join(" | ")));
        out.push_str(&format!("|{}\n", " --- |".repeat(cols)));
        for row in &self.rows {
            let cells: Vec<&str> = (0..cols)
                .map(|i| row.get(i).map(String::as_str).unwrap_or(""))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }

    /// Render as CSV.
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Table 2: Dataset", &["Dataset", "No. of apps"]);
        t.row(&["Play Store apps in Androzoo", "6,507,222"]);
        t.row(&["Apps successfully analyzed", "146,558"]);
        t
    }

    #[test]
    fn ascii_render_alignment() {
        let r = sample().render();
        assert!(r.contains("Table 2"));
        assert!(r.contains("| Play Store apps in Androzoo |"));
        // Numeric right-aligned: ends just before the closing pipe.
        assert!(r.contains("6,507,222 |"));
        // Separators present.
        assert!(r.matches('+').count() >= 9);
    }

    #[test]
    fn markdown_render() {
        let md = sample().render_markdown();
        assert!(md.starts_with("**Table 2: Dataset**"));
        assert!(md.contains("| Dataset | No. of apps |"));
        assert!(md.contains("| --- | --- |"));
    }

    #[test]
    fn csv_render_escapes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["has,comma", "has \"quote\""]);
        let csv = t.render_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.row(&["only-one"]);
        let r = t.render();
        assert!(r.contains("only-one"));
        let md = t.render_markdown();
        assert!(md.contains("| only-one |  |  |"));
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new("empty", &[]);
        assert!(t.render().contains("empty"));
    }
}
