//! Minimal JSON emission for downstream plotting.
//!
//! The approved crate set has `serde` but not `serde_json`, and the only
//! need is *writing* result snapshots, so this is a small hand-rolled
//! emitter: correct string escaping, stable field order, no parsing.

use crate::compare::Comparison;
use crate::figure::Series;
use crate::table::Table;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Emit a JSON number (finite floats only; NaN/inf become `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Integers print without a fraction for stable diffs.
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{v:.0}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_owned()
    }
}

/// A [`Series`] list as `[{name, points: [{label, value}]}]`.
pub fn series_json(series: &[Series]) -> String {
    let mut out = String::from("[");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",\"points\":[", escape(&s.name));
        for (j, (label, value)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"value\":{}}}",
                escape(label),
                number(*value)
            );
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// A [`Comparison`] as `{experiment, tolerance, rows: [...]}`.
pub fn comparison_json(c: &Comparison) -> String {
    let mut out = format!(
        "{{\"experiment\":\"{}\",\"tolerance\":{},\"rows\":[",
        escape(&c.experiment),
        number(c.tolerance)
    );
    for (i, r) in c.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"metric\":\"{}\",\"paper\":{},\"measured\":{},\"relative_error\":{},\"verdict\":\"{}\"}}",
            escape(&r.metric),
            number(r.paper),
            number(r.measured),
            number(r.relative_error()),
            r.verdict(c.tolerance).symbol()
        );
    }
    out.push_str("]}");
    out
}

/// A [`Table`] as `{title, headers, rows}`.
pub fn table_json(t: &Table) -> String {
    let string_array = |items: &[String]| {
        let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", escape(c))).collect();
        format!("[{}]", cells.join(","))
    };
    let rows: Vec<String> = t.rows.iter().map(|r| string_array(r)).collect();
    format!(
        "{{\"title\":\"{}\",\"headers\":{},\"rows\":[{}]}}",
        escape(&t.title),
        string_array(&t.headers),
        rows.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced(s: &str) -> bool {
        // Brace/bracket balance outside string literals.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(5.0), "5");
        assert_eq!(number(0.125), "0.125");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn series_emission() {
        let mut s = Series::new("endpoints \"rich\"");
        s.point("News", 7.0).point("Search", 2.5);
        let json = series_json(&[s]);
        assert!(balanced(&json), "{json}");
        assert!(json.contains("\"name\":\"endpoints \\\"rich\\\"\""));
        assert!(json.contains("{\"label\":\"News\",\"value\":7}"));
        assert!(json.contains("{\"label\":\"Search\",\"value\":2.5}"));
    }

    #[test]
    fn comparison_emission() {
        let mut c = Comparison::new("table7");
        c.add("Apps using WebViews", 81_720.0, 81_950.0);
        let json = comparison_json(&c);
        assert!(balanced(&json), "{json}");
        assert!(json.contains("\"experiment\":\"table7\""));
        assert!(json.contains("\"paper\":81720"));
        assert!(json.contains("\"verdict\":\"OK\""));
    }

    #[test]
    fn table_emission() {
        let mut t = Table::new("T, with comma", &["a", "b"]);
        t.row(&["x", "line\nbreak"]);
        let json = table_json(&t);
        assert!(balanced(&json), "{json}");
        assert!(json.contains("line\\nbreak"));
    }

    #[test]
    fn empty_structures() {
        assert_eq!(series_json(&[]), "[]");
        let t = Table::new("t", &[]);
        assert!(balanced(&table_json(&t)));
        let c = Comparison::new("e");
        assert!(balanced(&comparison_json(&c)));
    }
}
