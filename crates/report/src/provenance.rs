//! URL-origin census rendering (§3.1.4 provenance).
//!
//! Like [`PipelineStatsReport`](crate::stats::PipelineStatsReport), the
//! census arrives as plain data so this crate stays dependency-free; the
//! `wla-core` experiment builders flatten `wla-static`'s
//! `UrlOriginCensus` into it.

use crate::table::Table;
use crate::{percent, thousands};

/// Flattened resolved-vs-unknown URL-origin census, ready to render.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UrlOriginReport {
    /// URL-bearing sites whose argument resolved to one constant.
    pub resolved_sites: u64,
    /// Sites whose argument never resolved.
    pub unknown_sites: u64,
    /// Sites where distinct constants merge at a join.
    pub conflict_sites: u64,
    /// Apps whose URL-bearing sites all resolved.
    pub apps_fully_resolved: u64,
    /// Apps with at least one unresolved site.
    pub apps_with_unresolved: u64,
}

impl UrlOriginReport {
    /// Total URL-bearing sites classified.
    pub fn total_sites(&self) -> u64 {
        self.resolved_sites + self.unknown_sites + self.conflict_sites
    }

    /// Render the census table.
    pub fn table(&self) -> Table {
        let total = self.total_sites();
        let share = |n: u64| {
            if total == 0 {
                percent(0.0)
            } else {
                percent(n as f64 / total as f64)
            }
        };
        let mut t = Table::new(
            "URL-origin census (constant propagation at URL-bearing sites)",
            &["Origin", "Sites", "Share"],
        );
        t.row_owned(vec![
            "Resolved constant".into(),
            thousands(self.resolved_sites),
            share(self.resolved_sites),
        ]);
        t.row_owned(vec![
            "Unknown".into(),
            thousands(self.unknown_sites),
            share(self.unknown_sites),
        ]);
        t.row_owned(vec![
            "Conflicting paths".into(),
            thousands(self.conflict_sites),
            share(self.conflict_sites),
        ]);
        t.row_owned(vec![
            "Apps fully resolved".into(),
            thousands(self.apps_fully_resolved),
            String::new(),
        ]);
        t.row_owned(vec![
            "Apps with unresolved sites".into(),
            thousands(self.apps_with_unresolved),
            String::new(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_table_renders_counts_and_shares() {
        let r = UrlOriginReport {
            resolved_sites: 1_900,
            unknown_sites: 80,
            conflict_sites: 20,
            apps_fully_resolved: 1_200,
            apps_with_unresolved: 68,
        };
        assert_eq!(r.total_sites(), 2_000);
        let out = r.table().render();
        assert!(out.contains("URL-origin census"));
        assert!(out.contains("1,900"));
        assert!(out.contains("95.0%"));
        assert!(out.contains("4.0%")); // unknown share
        assert!(out.contains("1.0%")); // conflict share
        assert!(out.contains("1,200"));
        assert!(out.contains("68"));
    }

    #[test]
    fn empty_census_renders_zero_shares() {
        let out = UrlOriginReport::default().table().render();
        assert!(out.contains("0.0%"));
        assert!(!out.contains("NaN"));
    }
}
