//! `dexdump`-style textual disassembly of SDEX files.
//!
//! A debugging surface the real toolchain has (`dexdump`, `baksmali`) and
//! analysts lean on constantly. The output is stable, greppable text:
//!
//! ```text
//! .class public com/example/app/MainActivity
//!   .super android/app/Activity
//!   .method public onCreate()V
//!     const-string v0, "https://ads.example.net/creative"
//!     invoke-virtual {v0} android/webkit/WebView->loadUrl(Ljava/lang/String;)V
//!     return-void
//!   .end method
//! .end class
//! ```

use crate::sdex::{ClassDef, Dex, Instruction, InvokeKind, MethodDef};
use std::fmt::Write as _;

/// Disassemble a whole dex.
pub fn disassemble(dex: &Dex) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# sdex: {} classes, {} method refs, {} strings",
        dex.classes().len(),
        dex.method_count(),
        dex.string_count()
    );
    for class in dex.classes() {
        out.push_str(&disassemble_class(dex, class));
    }
    out
}

/// Disassemble one class.
pub fn disassemble_class(dex: &Dex, class: &ClassDef) -> String {
    let mut out = String::new();
    let vis = if class.flags.public { "public " } else { "" };
    let kind = if class.flags.interface {
        "interface"
    } else {
        "class"
    };
    let _ = writeln!(out, ".{kind} {vis}{}", dex.type_name(class.ty));
    if let Some(sup) = class.superclass {
        let _ = writeln!(out, "  .super {}", dex.type_name(sup));
    }
    for method in &class.methods {
        out.push_str(&disassemble_method(dex, method));
    }
    let _ = writeln!(out, ".end class");
    out
}

fn disassemble_method(dex: &Dex, method: &MethodDef) -> String {
    let mut out = String::new();
    let r = dex.method_ref(method.method);
    let vis = if method.public { "public " } else { "private " };
    let stat = if method.static_ { "static " } else { "" };
    let _ = writeln!(
        out,
        "  .method {vis}{stat}{}{}",
        dex.string(r.name),
        dex.string(r.descriptor)
    );
    for ins in &method.code {
        let _ = writeln!(out, "    {}", render_instruction(dex, ins));
    }
    let _ = writeln!(out, "  .end method");
    out
}

/// Render one instruction.
pub fn render_instruction(dex: &Dex, ins: &Instruction) -> String {
    match ins {
        Instruction::Invoke { kind, method, args } => {
            let r = dex.method_ref(*method);
            let mnemonic = match kind {
                InvokeKind::Virtual => "invoke-virtual",
                InvokeKind::Static => "invoke-static",
                InvokeKind::Direct => "invoke-direct",
                InvokeKind::Interface => "invoke-interface",
                InvokeKind::Super => "invoke-super",
            };
            let regs = args
                .iter()
                .map(|a| format!("v{}", a.0))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{mnemonic} {{{regs}}} {}->{}{}",
                dex.type_name(r.class),
                dex.string(r.name),
                dex.string(r.descriptor)
            )
        }
        Instruction::ConstString { dst, string } => {
            format!("const-string v{}, {:?}", dst.0, dex.string(*string))
        }
        Instruction::Move { dst, src } => format!("move v{}, v{}", dst.0, src.0),
        Instruction::NewInstance { ty } => format!("new-instance {}", dex.type_name(*ty)),
        Instruction::IfTest { offset } => format!("if-test {offset:+}"),
        Instruction::Goto { offset } => format!("goto {offset:+}"),
        Instruction::ReturnVoid => "return-void".to_owned(),
        Instruction::Nop => "nop".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdex::{ClassFlags, DexBuilder, Reg};

    fn sample() -> Dex {
        let mut b = DexBuilder::new();
        let load = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let url = b.intern_string("https://x.example/\"page\"");
        let m = b.intern_method("com/x/Main", "onCreate", "()V");
        b.define_class(
            "com/x/Main",
            Some("android/app/Activity"),
            ClassFlags {
                public: true,
                ..Default::default()
            },
            vec![MethodDef::new(
                m,
                true,
                false,
                vec![
                    Instruction::ConstString {
                        dst: Reg(0),
                        string: url,
                    },
                    Instruction::Move {
                        dst: Reg(1),
                        src: Reg(0),
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load,
                        args: vec![Reg(1)],
                    },
                    Instruction::IfTest { offset: 2 },
                    Instruction::Goto { offset: -3 },
                    Instruction::Nop,
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn full_listing_structure() {
        let text = disassemble(&sample());
        assert!(text.contains(".class public com/x/Main"));
        assert!(text.contains(".super android/app/Activity"));
        assert!(text.contains(".method public onCreate()V"));
        assert!(text
            .contains("invoke-virtual {v1} android/webkit/WebView->loadUrl(Ljava/lang/String;)V"));
        assert!(text.contains("const-string v0, \"https://x.example/\\\"page\\\"\""));
        assert!(text.contains("move v1, v0"));
        assert!(text.contains("if-test +2"));
        assert!(text.contains("goto -3"));
        assert!(text.contains("return-void"));
        assert!(text.contains(".end method"));
        assert!(text.contains(".end class"));
    }

    #[test]
    fn header_counts() {
        let dex = sample();
        let text = disassemble(&dex);
        let header = text.lines().next().unwrap();
        assert!(header.contains("1 classes"), "{header}");
    }

    #[test]
    fn every_generated_app_disassembles() {
        // Smoke over structural variety: the sample dex from the sdex
        // module tests plus an empty dex.
        let empty = DexBuilder::new().build();
        let text = disassemble(&empty);
        assert!(text.contains("0 classes"));
    }
}
