//! Controlled damage for SAPK containers.
//!
//! Of the 146.8K APKs the paper downloaded, 242 were "discovered to be
//! broken" and could not be analyzed (Table 2). The corpus generator uses
//! this module to break the same fraction of containers *at the byte
//! level*, so the pipeline's error handling — not a boolean flag — produces
//! that row of the table.

/// The ways a container can be damaged in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Cut the file off after `keep_fraction` of its bytes (interrupted
    /// download / bad repackaging).
    Truncate {
        /// Numerator of the kept fraction, out of 256.
        keep_num: u8,
    },
    /// Flip one bit somewhere in the body (bit rot / bad transfer).
    BitFlip {
        /// Byte position as a fraction of the file, out of 256.
        pos_num: u8,
    },
    /// Overwrite the magic (file is not an APK at all).
    ClobberMagic,
    /// Overwrite one body byte with `0xF5` *and re-stamp the checksum*, so
    /// the damage slips past the adler gate and reaches the validators
    /// behind it (`0xF5` can never appear in UTF-8, so a hit inside a
    /// string pool becomes `BadUtf8`; elsewhere it lands on varint or
    /// index checks). Works on any SAPK/SDEX-framed blob — both share the
    /// 10-byte `magic + version + adler32` header. Unlike the other kinds
    /// this does not always break *container* decoding: SAPK treats
    /// section payloads as opaque bytes, so the error may only surface
    /// when the inner SDEX blob is decoded.
    ClobberRechecksum {
        /// Body byte position as a fraction of the body, out of 256.
        pos_num: u8,
    },
}

/// Byte length of the shared `magic + version + adler32` header.
const HEADER_LEN: usize = 10;

/// Apply `kind` to `bytes`, returning the damaged container.
///
/// The damage is deterministic given `kind`, so corpora are reproducible.
pub fn corrupt(bytes: &[u8], kind: CorruptionKind) -> Vec<u8> {
    match kind {
        CorruptionKind::Truncate { keep_num } => {
            // Keep at least the magic so the failure is a truncation error,
            // not a magic error — mirrors real half-downloaded files.
            let keep = ((bytes.len() as u64 * keep_num as u64) / 256) as usize;
            let keep = keep.clamp(4.min(bytes.len()), bytes.len().saturating_sub(1));
            bytes[..keep].to_vec()
        }
        CorruptionKind::BitFlip { pos_num } => {
            let mut out = bytes.to_vec();
            if !out.is_empty() {
                // Flip within the checksummed region (skip the 10-byte header
                // when possible) so the checksum is what catches it.
                let lo = 10.min(out.len() - 1);
                let span = out.len() - lo;
                let pos = lo + ((span as u64 * pos_num as u64) / 256) as usize;
                let pos = pos.min(out.len() - 1);
                out[pos] ^= 0x10;
            }
            out
        }
        CorruptionKind::ClobberMagic => {
            let mut out = bytes.to_vec();
            for (i, b) in out.iter_mut().take(4).enumerate() {
                *b = b"GARB"[i];
            }
            out
        }
        CorruptionKind::ClobberRechecksum { pos_num } => {
            let mut out = bytes.to_vec();
            if out.len() > HEADER_LEN {
                let body = out.len() - HEADER_LEN;
                let pos = HEADER_LEN + ((body as u64 * pos_num as u64) / 256) as usize;
                let pos = pos.min(out.len() - 1);
                out[pos] = 0xF5;
                let sum = crate::wire::adler32(&out[HEADER_LEN..]);
                out[6..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Sapk, SectionTag};

    fn sample_bytes() -> Vec<u8> {
        let mut apk = Sapk::new();
        apk.push(SectionTag::Manifest, vec![7u8; 100]);
        apk.push(SectionTag::Dex, vec![9u8; 400]);
        apk.encode().to_vec()
    }

    #[test]
    fn every_kind_breaks_decoding() {
        let good = sample_bytes();
        assert!(Sapk::decode(&good).is_ok());
        let kinds = [
            CorruptionKind::Truncate { keep_num: 128 },
            CorruptionKind::Truncate { keep_num: 10 },
            CorruptionKind::BitFlip { pos_num: 0 },
            CorruptionKind::BitFlip { pos_num: 200 },
            CorruptionKind::ClobberMagic,
        ];
        for kind in kinds {
            let bad = corrupt(&good, kind);
            assert!(
                Sapk::decode(&bad).is_err(),
                "corruption {kind:?} still decoded"
            );
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let good = sample_bytes();
        let kind = CorruptionKind::BitFlip { pos_num: 77 };
        assert_eq!(corrupt(&good, kind), corrupt(&good, kind));
    }

    #[test]
    fn rechecksum_reaches_past_the_checksum_gate() {
        // The rewritten checksum must be accepted; whatever fails after
        // that is one of the inner validators, never the adler gate.
        let mut b = crate::DexBuilder::new();
        b.define_class(
            "com/example/Main",
            Some("android/app/Activity"),
            crate::ClassFlags::default(),
            vec![],
        )
        .unwrap();
        let blob = b.build().encode().to_vec();
        for pos_num in [0u8, 64, 128, 200, 255] {
            let bad = corrupt(&blob, CorruptionKind::ClobberRechecksum { pos_num });
            if let Err(e) = crate::Dex::decode(&bad) {
                assert_ne!(e.kind(), "checksum-mismatch", "pos_num={pos_num}");
                assert_ne!(e.kind(), "bad-magic", "pos_num={pos_num}");
            }
        }
        // At least one position lands inside string bytes, where 0xF5 is
        // invalid UTF-8.
        let hits_pool = (0..=255u8).any(|pos_num| {
            matches!(
                crate::Dex::decode(&corrupt(&blob, CorruptionKind::ClobberRechecksum { pos_num })),
                Err(e) if e.kind() == "bad-utf8"
            )
        });
        assert!(hits_pool);
    }

    #[test]
    fn truncate_keeps_magic() {
        let good = sample_bytes();
        let bad = corrupt(&good, CorruptionKind::Truncate { keep_num: 2 });
        assert!(bad.len() >= 4);
        assert_eq!(&bad[..4], b"SAPK");
        assert!(bad.len() < good.len());
    }
}
