//! Controlled damage for SAPK containers.
//!
//! Of the 146.8K APKs the paper downloaded, 242 were "discovered to be
//! broken" and could not be analyzed (Table 2). The corpus generator uses
//! this module to break the same fraction of containers *at the byte
//! level*, so the pipeline's error handling — not a boolean flag — produces
//! that row of the table.

/// The ways a container can be damaged in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Cut the file off after `keep_fraction` of its bytes (interrupted
    /// download / bad repackaging).
    Truncate {
        /// Numerator of the kept fraction, out of 256.
        keep_num: u8,
    },
    /// Flip one bit somewhere in the body (bit rot / bad transfer).
    BitFlip {
        /// Byte position as a fraction of the file, out of 256.
        pos_num: u8,
    },
    /// Overwrite the magic (file is not an APK at all).
    ClobberMagic,
}

/// Apply `kind` to `bytes`, returning the damaged container.
///
/// The damage is deterministic given `kind`, so corpora are reproducible.
pub fn corrupt(bytes: &[u8], kind: CorruptionKind) -> Vec<u8> {
    match kind {
        CorruptionKind::Truncate { keep_num } => {
            // Keep at least the magic so the failure is a truncation error,
            // not a magic error — mirrors real half-downloaded files.
            let keep = ((bytes.len() as u64 * keep_num as u64) / 256) as usize;
            let keep = keep.clamp(4.min(bytes.len()), bytes.len().saturating_sub(1));
            bytes[..keep].to_vec()
        }
        CorruptionKind::BitFlip { pos_num } => {
            let mut out = bytes.to_vec();
            if !out.is_empty() {
                // Flip within the checksummed region (skip the 10-byte header
                // when possible) so the checksum is what catches it.
                let lo = 10.min(out.len() - 1);
                let span = out.len() - lo;
                let pos = lo + ((span as u64 * pos_num as u64) / 256) as usize;
                let pos = pos.min(out.len() - 1);
                out[pos] ^= 0x10;
            }
            out
        }
        CorruptionKind::ClobberMagic => {
            let mut out = bytes.to_vec();
            for (i, b) in out.iter_mut().take(4).enumerate() {
                *b = b"GARB"[i];
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Sapk, SectionTag};

    fn sample_bytes() -> Vec<u8> {
        let mut apk = Sapk::new();
        apk.push(SectionTag::Manifest, vec![7u8; 100]);
        apk.push(SectionTag::Dex, vec![9u8; 400]);
        apk.encode().to_vec()
    }

    #[test]
    fn every_kind_breaks_decoding() {
        let good = sample_bytes();
        assert!(Sapk::decode(&good).is_ok());
        let kinds = [
            CorruptionKind::Truncate { keep_num: 128 },
            CorruptionKind::Truncate { keep_num: 10 },
            CorruptionKind::BitFlip { pos_num: 0 },
            CorruptionKind::BitFlip { pos_num: 200 },
            CorruptionKind::ClobberMagic,
        ];
        for kind in kinds {
            let bad = corrupt(&good, kind);
            assert!(
                Sapk::decode(&bad).is_err(),
                "corruption {kind:?} still decoded"
            );
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let good = sample_bytes();
        let kind = CorruptionKind::BitFlip { pos_num: 77 };
        assert_eq!(corrupt(&good, kind), corrupt(&good, kind));
    }

    #[test]
    fn truncate_keeps_magic() {
        let good = sample_bytes();
        let bad = corrupt(&good, CorruptionKind::Truncate { keep_num: 2 });
        assert!(bad.len() >= 4);
        assert_eq!(&bad[..4], b"SAPK");
        assert!(bad.len() < good.len());
    }
}
