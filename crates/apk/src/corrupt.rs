//! Controlled damage for SAPK containers.
//!
//! Of the 146.8K APKs the paper downloaded, 242 were "discovered to be
//! broken" and could not be analyzed (Table 2). The corpus generator uses
//! this module to break the same fraction of containers *at the byte
//! level*, so the pipeline's error handling — not a boolean flag — produces
//! that row of the table.

use crate::container::{Sapk, SectionTag};
use crate::sdex::{self, Dex, Instruction, Reg};

/// The ways a container can be damaged in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Cut the file off after `keep_fraction` of its bytes (interrupted
    /// download / bad repackaging).
    Truncate {
        /// Numerator of the kept fraction, out of 256.
        keep_num: u8,
    },
    /// Flip one bit somewhere in the body (bit rot / bad transfer).
    BitFlip {
        /// Byte position as a fraction of the file, out of 256.
        pos_num: u8,
    },
    /// Overwrite the magic (file is not an APK at all).
    ClobberMagic,
    /// Overwrite one body byte with `0xF5` *and re-stamp the checksum*, so
    /// the damage slips past the adler gate and reaches the validators
    /// behind it (`0xF5` can never appear in UTF-8, so a hit inside a
    /// string pool becomes `BadUtf8`; elsewhere it lands on varint or
    /// index checks). Works on any SAPK/SDEX-framed blob — both share the
    /// 10-byte `magic + version + adler32` header. Unlike the other kinds
    /// this does not always break *container* decoding: SAPK treats
    /// section payloads as opaque bytes, so the error may only surface
    /// when the inner SDEX blob is decoded — or not at all, if the stamp
    /// lands in an opaque resource blob.
    ClobberRechecksum {
        /// Body byte position as a fraction of the body, out of 256.
        pos_num: u8,
    },
    /// Re-encode the container with one instruction's register operand
    /// pushed past its method's declared register count (checksums restamped
    /// by re-encoding), so the damage sails through the adler gate, the
    /// string/type/method index checks, and lands exactly on the register
    /// bounds validator. Like [`ClobberRechecksum`](Self::ClobberRechecksum)
    /// this leaves *container* decoding intact on SAPK input — the error
    /// surfaces when the inner SDEX blob is decoded. Falls back to
    /// [`BitFlip`](Self::BitFlip) (which the checksum gate always catches)
    /// when the input has no decodable register operand to damage, so the
    /// kind is guaranteed to break *some* layer.
    ClobberRegister {
        /// Which register slot to hit, modulo the number of slots.
        site_num: u8,
    },
    /// Overwrite one non-empty slot of the SDEX **type lookup table** (the
    /// v3 section) with an out-of-range type index and re-encode (checksum
    /// restamped), so the damage sails through the adler gate and lands on
    /// the table validators that only `VerifyPreset::All` runs — pinning
    /// that full verification rejects a damaged table while trusted
    /// presets, which are never handed corrupted bytes by contract, would
    /// carry it silently. Like
    /// [`ClobberRegister`](Self::ClobberRegister) this leaves *container*
    /// decoding intact on SAPK input, and falls back to
    /// [`BitFlip`](Self::BitFlip) when the input has no non-empty lookup
    /// table to damage.
    ClobberLookupTable {
        /// Which non-empty slot to hit, modulo the non-empty count.
        slot_num: u8,
    },
}

/// Byte length of the shared `magic + version + adler32` header.
const HEADER_LEN: usize = 10;

/// Apply `kind` to `bytes`, returning the damaged container.
///
/// The damage is deterministic given `kind`, so corpora are reproducible.
pub fn corrupt(bytes: &[u8], kind: CorruptionKind) -> Vec<u8> {
    match kind {
        CorruptionKind::Truncate { keep_num } => {
            // Keep at least the magic so the failure is a truncation error,
            // not a magic error — mirrors real half-downloaded files.
            let keep = ((bytes.len() as u64 * keep_num as u64) / 256) as usize;
            let keep = keep.clamp(4.min(bytes.len()), bytes.len().saturating_sub(1));
            bytes[..keep].to_vec()
        }
        CorruptionKind::BitFlip { pos_num } => {
            let mut out = bytes.to_vec();
            if !out.is_empty() {
                // Flip within the checksummed region (skip the 10-byte header
                // when possible) so the checksum is what catches it.
                let lo = 10.min(out.len() - 1);
                let span = out.len() - lo;
                let pos = lo + ((span as u64 * pos_num as u64) / 256) as usize;
                let pos = pos.min(out.len() - 1);
                out[pos] ^= 0x10;
            }
            out
        }
        CorruptionKind::ClobberMagic => {
            let mut out = bytes.to_vec();
            for (i, b) in out.iter_mut().take(4).enumerate() {
                *b = b"GARB"[i];
            }
            out
        }
        CorruptionKind::ClobberRechecksum { pos_num } => {
            let mut out = bytes.to_vec();
            if out.len() > HEADER_LEN {
                let body = out.len() - HEADER_LEN;
                let pos = HEADER_LEN + ((body as u64 * pos_num as u64) / 256) as usize;
                let pos = pos.min(out.len() - 1);
                out[pos] = 0xF5;
                let sum = crate::wire::adler32(&out[HEADER_LEN..]);
                out[6..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
            }
            out
        }
        CorruptionKind::ClobberRegister { site_num } => match clobber_register(bytes, site_num) {
            Some(out) => out,
            // No decodable register operand anywhere (corrupt input, empty
            // code, …): degrade to a bit flip, which the checksum gate is
            // guaranteed to catch.
            None => corrupt(bytes, CorruptionKind::BitFlip { pos_num: site_num }),
        },
        CorruptionKind::ClobberLookupTable { slot_num } => match clobber_lut(bytes, slot_num) {
            Some(out) => out,
            // No non-empty lookup table anywhere (pre-v3 blob, typeless
            // dex, corrupt input): degrade to a checksum-caught bit flip.
            None => corrupt(bytes, CorruptionKind::BitFlip { pos_num: slot_num }),
        },
    }
}

/// Decode `bytes` (bare SDEX, or SAPK with dex sections), overwrite the
/// `site_num`-th register operand (mod the slot count) with an out-of-range
/// register, and re-encode. Returns `None` when there is nothing to damage.
fn clobber_register(bytes: &[u8], site_num: u8) -> Option<Vec<u8>> {
    if bytes.get(..4) == Some(&sdex::SDEX_MAGIC[..]) {
        let mut dex = Dex::decode(bytes).ok()?;
        clobber_register_in_dex(&mut dex, site_num)?;
        return Some(dex.encode().to_vec());
    }
    let apk = Sapk::decode(bytes).ok()?;
    let mut rebuilt = Sapk::new();
    let mut done = false;
    for s in apk.sections() {
        if !done && s.tag == SectionTag::Dex {
            if let Ok(mut dex) = Dex::decode_bytes(s.data.clone()) {
                if clobber_register_in_dex(&mut dex, site_num).is_some() {
                    rebuilt.push(SectionTag::Dex, dex.encode());
                    done = true;
                    continue;
                }
            }
        }
        rebuilt.push(s.tag, s.data.clone());
    }
    done.then(|| rebuilt.encode().to_vec())
}

/// Decode `bytes` (bare SDEX, or SAPK with dex sections), overwrite one
/// non-empty lookup-table slot with an out-of-range type index, and
/// re-encode. Returns `None` when there is no table to damage.
fn clobber_lut(bytes: &[u8], slot_num: u8) -> Option<Vec<u8>> {
    if bytes.get(..4) == Some(&sdex::SDEX_MAGIC[..]) {
        let mut dex = Dex::decode(bytes).ok()?;
        clobber_lut_in_dex(&mut dex, slot_num)?;
        return Some(dex.encode().to_vec());
    }
    let apk = Sapk::decode(bytes).ok()?;
    let mut rebuilt = Sapk::new();
    let mut done = false;
    for s in apk.sections() {
        if !done && s.tag == SectionTag::Dex {
            if let Ok(mut dex) = Dex::decode_bytes(s.data.clone()) {
                if clobber_lut_in_dex(&mut dex, slot_num).is_some() {
                    rebuilt.push(SectionTag::Dex, dex.encode());
                    done = true;
                    continue;
                }
            }
        }
        rebuilt.push(s.tag, s.data.clone());
    }
    done.then(|| rebuilt.encode().to_vec())
}

fn clobber_lut_in_dex(dex: &mut Dex, slot_num: u8) -> Option<()> {
    let type_count = dex.type_count() as u32;
    let slots = dex.lut_slots_mut()?;
    let occupied: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0)
        .map(|(i, _)| i)
        .collect();
    if occupied.is_empty() {
        return None;
    }
    let i = occupied[slot_num as usize % occupied.len()];
    // Strictly past the type table, so full verification flags the slot as
    // index-out-of-range before even comparing the canonical rebuild.
    slots[i] = type_count + 1 + slot_num as u32;
    Some(())
}

/// Number of register operands an instruction carries.
fn register_slot_count(ins: &Instruction) -> usize {
    match ins {
        Instruction::Invoke { args, .. } => args.len(),
        Instruction::ConstString { .. } => 1,
        Instruction::Move { .. } => 2,
        _ => 0,
    }
}

/// Mutable views of an instruction's register operands, in a fixed order.
fn register_slots(ins: &mut Instruction) -> Vec<&mut Reg> {
    match ins {
        Instruction::Invoke { args, .. } => args.iter_mut().collect(),
        Instruction::ConstString { dst, .. } => vec![dst],
        Instruction::Move { dst, src } => vec![dst, src],
        _ => vec![],
    }
}

fn clobber_register_in_dex(dex: &mut Dex, site_num: u8) -> Option<()> {
    let total: usize = dex
        .classes()
        .iter()
        .flat_map(|c| &c.methods)
        .flat_map(|m| &m.code)
        .map(register_slot_count)
        .sum();
    if total == 0 {
        return None;
    }
    let target = site_num as usize % total;
    let mut i = 0usize;
    for c in dex.classes_mut() {
        for m in &mut c.methods {
            // Strictly past the declared count, clamped into `Reg`'s width.
            let bad = (m.registers as u64 + 1 + site_num as u64).min(u16::MAX as u64) as u16;
            for ins in &mut m.code {
                for r in register_slots(ins) {
                    if i == target {
                        *r = Reg(bad);
                        return Some(());
                    }
                    i += 1;
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Sapk, SectionTag};

    fn sample_bytes() -> Vec<u8> {
        let mut apk = Sapk::new();
        apk.push(SectionTag::Manifest, vec![7u8; 100]);
        apk.push(SectionTag::Dex, vec![9u8; 400]);
        apk.encode().to_vec()
    }

    #[test]
    fn every_kind_breaks_decoding() {
        let good = sample_bytes();
        assert!(Sapk::decode(&good).is_ok());
        let kinds = [
            CorruptionKind::Truncate { keep_num: 128 },
            CorruptionKind::Truncate { keep_num: 10 },
            CorruptionKind::BitFlip { pos_num: 0 },
            CorruptionKind::BitFlip { pos_num: 200 },
            CorruptionKind::ClobberMagic,
        ];
        for kind in kinds {
            let bad = corrupt(&good, kind);
            assert!(
                Sapk::decode(&bad).is_err(),
                "corruption {kind:?} still decoded"
            );
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let good = sample_bytes();
        let kind = CorruptionKind::BitFlip { pos_num: 77 };
        assert_eq!(corrupt(&good, kind), corrupt(&good, kind));
    }

    #[test]
    fn rechecksum_reaches_past_the_checksum_gate() {
        // The rewritten checksum must be accepted; whatever fails after
        // that is one of the inner validators, never the adler gate.
        let mut b = crate::DexBuilder::new();
        b.define_class(
            "com/example/Main",
            Some("android/app/Activity"),
            crate::ClassFlags::default(),
            vec![],
        )
        .unwrap();
        let blob = b.build().encode().to_vec();
        for pos_num in [0u8, 64, 128, 200, 255] {
            let bad = corrupt(&blob, CorruptionKind::ClobberRechecksum { pos_num });
            if let Err(e) = crate::Dex::decode(&bad) {
                assert_ne!(e.kind(), "checksum-mismatch", "pos_num={pos_num}");
                assert_ne!(e.kind(), "bad-magic", "pos_num={pos_num}");
            }
        }
        // At least one position lands inside string bytes, where 0xF5 is
        // invalid UTF-8.
        let hits_pool = (0..=255u8).any(|pos_num| {
            matches!(
                crate::Dex::decode(&corrupt(&blob, CorruptionKind::ClobberRechecksum { pos_num })),
                Err(e) if e.kind() == "bad-utf8"
            )
        });
        assert!(hits_pool);
    }

    fn dex_with_registers() -> crate::Dex {
        let mut b = crate::DexBuilder::new();
        let load = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let url = b.intern_string("https://cdn.example/x");
        let m = b.intern_method("com/example/Main", "go", "()V");
        b.define_class(
            "com/example/Main",
            Some("android/app/Activity"),
            crate::ClassFlags::default(),
            vec![crate::MethodDef::new(
                m,
                true,
                false,
                vec![
                    Instruction::ConstString {
                        dst: Reg(0),
                        string: url,
                    },
                    Instruction::Move {
                        dst: Reg(1),
                        src: Reg(0),
                    },
                    Instruction::Invoke {
                        kind: crate::InvokeKind::Virtual,
                        method: load,
                        args: vec![Reg(1)],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn clobber_register_reaches_the_register_validator() {
        let blob = dex_with_registers().encode().to_vec();
        // Every slot choice produces a blob the adler gate accepts and the
        // register bounds check rejects.
        for site_num in [0u8, 1, 2, 3, 4, 77, 255] {
            let bad = corrupt(&blob, CorruptionKind::ClobberRegister { site_num });
            let err = crate::Dex::decode(&bad).expect_err("clobbered register decoded");
            assert_eq!(err.kind(), "index-out-of-range", "site_num={site_num}");
            assert!(
                format!("{err:?}").contains("register"),
                "site_num={site_num}"
            );
        }
    }

    #[test]
    fn clobber_register_is_transparent_to_the_container() {
        // On SAPK input the outer container stays valid; the damage only
        // surfaces when the inner SDEX section is decoded.
        let mut apk = Sapk::new();
        apk.push(SectionTag::Manifest, vec![7u8; 32]);
        apk.push(SectionTag::Dex, dex_with_registers().encode());
        let bad = corrupt(
            &apk.encode(),
            CorruptionKind::ClobberRegister { site_num: 3 },
        );
        let back = Sapk::decode(&bad).expect("container decode must survive");
        let err = crate::Dex::decode(back.dex_bytes().unwrap()).unwrap_err();
        assert_eq!(err.kind(), "index-out-of-range");
    }

    #[test]
    fn clobber_register_deterministic_and_falls_back() {
        let blob = dex_with_registers().encode().to_vec();
        let kind = CorruptionKind::ClobberRegister { site_num: 9 };
        assert_eq!(corrupt(&blob, kind), corrupt(&blob, kind));
        // No register slots anywhere: degrade to a checksum-caught bit flip.
        let mut b = crate::DexBuilder::new();
        b.define_class("com/x/Empty", None, crate::ClassFlags::default(), vec![])
            .unwrap();
        let empty = b.build().encode().to_vec();
        let fallback = corrupt(&empty, kind);
        assert_eq!(
            fallback,
            corrupt(&empty, CorruptionKind::BitFlip { pos_num: 9 })
        );
        assert!(crate::Dex::decode(&fallback).is_err());
    }

    #[test]
    fn clobber_lookup_table_reaches_the_lut_validator() {
        let blob = dex_with_registers().encode().to_vec();
        // Every slot choice produces a blob the adler gate accepts and the
        // lookup-table validation (only run at `VerifyPreset::All`) rejects.
        for slot_num in [0u8, 1, 2, 3, 4, 77, 255] {
            let bad = corrupt(&blob, CorruptionKind::ClobberLookupTable { slot_num });
            let err = crate::Dex::decode(&bad).expect_err("clobbered lookup table decoded");
            assert_eq!(err.kind(), "index-out-of-range", "slot_num={slot_num}");
            assert!(format!("{err:?}").contains("type"), "slot_num={slot_num}");
        }
    }

    #[test]
    fn clobber_lookup_table_transparent_to_container() {
        let mut apk = Sapk::new();
        apk.push(SectionTag::Manifest, vec![7u8; 32]);
        apk.push(SectionTag::Dex, dex_with_registers().encode());
        let bad = corrupt(
            &apk.encode(),
            CorruptionKind::ClobberLookupTable { slot_num: 2 },
        );
        let back = Sapk::decode(&bad).expect("container decode must survive");
        let err = crate::Dex::decode(back.dex_bytes().unwrap()).unwrap_err();
        assert_eq!(err.kind(), "index-out-of-range");
    }

    #[test]
    fn clobber_lookup_table_deterministic_and_falls_back() {
        let blob = dex_with_registers().encode().to_vec();
        let kind = CorruptionKind::ClobberLookupTable { slot_num: 5 };
        assert_eq!(corrupt(&blob, kind), corrupt(&blob, kind));
        // Nothing decodable: degrade to a checksum-caught bit flip.
        let garbage = vec![0x42u8; 64];
        assert_eq!(
            corrupt(&garbage, kind),
            corrupt(&garbage, CorruptionKind::BitFlip { pos_num: 5 })
        );
    }

    #[test]
    fn damaged_lut_under_trusted_preset_never_panics() {
        use crate::sdex::VerifyPreset;
        // Trusted presets are never *supposed* to see a damaged table, but
        // if one slips through, probing must degrade to a miss — not panic
        // or spin.
        let bad = corrupt(
            &dex_with_registers().encode(),
            CorruptionKind::ClobberLookupTable { slot_num: 1 },
        );
        let dex = crate::Dex::decode_bytes_with(bytes::Bytes::from(bad), VerifyPreset::None)
            .expect("trusted decode skips lut verification");
        let _ = dex.type_by_name("com/example/Main");
        let _ = dex.type_by_name("definitely/not/There");
    }

    #[test]
    fn truncate_keeps_magic() {
        let good = sample_bytes();
        let bad = corrupt(&good, CorruptionKind::Truncate { keep_num: 2 });
        assert!(bad.len() >= 4);
        assert_eq!(&bad[..4], b"SAPK");
        assert!(bad.len() < good.len());
    }
}
