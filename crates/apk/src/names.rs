//! Java binary-name helpers.
//!
//! The pipeline extracts the *package* of the class that invokes a
//! content-loading method (§3.1.4 of the paper), "assuming that package
//! names adhere to the proper Java conventions". These helpers centralize
//! that logic so the corpus generator and the analyzer agree on naming.

/// Well-known framework class names the study keys on.
pub mod framework {
    /// The WebView class every measurement centers on.
    pub const WEBVIEW: &str = "android/webkit/WebView";
    /// The Custom Tabs intent class (`androidx.browser.customtabs`).
    pub const CUSTOM_TABS_INTENT: &str = "androidx/browser/customtabs/CustomTabsIntent";
    /// The Custom Tabs intent builder.
    pub const CUSTOM_TABS_BUILDER: &str = "androidx/browser/customtabs/CustomTabsIntent$Builder";
    /// Base activity class.
    pub const ACTIVITY: &str = "android/app/Activity";
    /// Base service class.
    pub const SERVICE: &str = "android/app/Service";
    /// Base broadcast receiver class.
    pub const RECEIVER: &str = "android/content/BroadcastReceiver";
    /// Base content provider class.
    pub const PROVIDER: &str = "android/content/ContentProvider";
    /// Root of the class hierarchy.
    pub const OBJECT: &str = "java/lang/Object";
}

/// WebView methods that load or modify web content — the exact set the
/// paper records in Table 7.
pub const WEBVIEW_CONTENT_METHODS: [&str; 7] = [
    "loadUrl",
    "addJavascriptInterface",
    "loadDataWithBaseURL",
    "evaluateJavascript",
    "removeJavascriptInterface",
    "loadData",
    "postUrl",
];

/// The subset of WebView methods that *populate* content; package names are
/// extracted at call sites of these (plus `launchUrl` for CTs) in §3.1.4.
pub const WEBVIEW_LOAD_METHODS: [&str; 3] = ["loadUrl", "loadData", "loadDataWithBaseURL"];

/// The CT method that populates content.
pub const CT_LAUNCH_METHOD: &str = "launchUrl";

/// The package of a binary class name: `com/foo/bar/Baz` → `com.foo.bar`.
/// Returns `None` for classes in the default package.
pub fn package_of(binary_name: &str) -> Option<String> {
    let idx = binary_name.rfind('/')?;
    Some(binary_name[..idx].replace('/', "."))
}

/// Allocation-free variant of [`package_of`] for interning hot paths:
/// writes the dotted package into `out` (cleared first) and returns `true`,
/// or returns `false` for classes in the default package. The caller keeps
/// one scratch `String` alive across call sites instead of allocating per
/// class.
pub fn package_of_into(binary_name: &str, out: &mut String) -> bool {
    out.clear();
    let Some(idx) = binary_name.rfind('/') else {
        return false;
    };
    out.reserve(idx);
    for c in binary_name[..idx].chars() {
        out.push(if c == '/' { '.' } else { c });
    }
    true
}

/// The simple (unqualified) name: `com/foo/Baz$Inner` → `Baz$Inner`.
pub fn simple_name(binary_name: &str) -> &str {
    match binary_name.rfind('/') {
        Some(idx) => &binary_name[idx + 1..],
        None => binary_name,
    }
}

/// Convert a binary name to a Java source name: `com/foo/Baz` → `com.foo.Baz`.
pub fn to_source_name(binary_name: &str) -> String {
    binary_name.replace(['/', '$'], ".")
}

/// Whether a dotted package name follows Java naming conventions well enough
/// to attribute to an SDK: at least two segments, each starting with a
/// lowercase letter and containing only `[a-z0-9_]`. Obfuscated packages
/// (`a.b.c`, single letters) pass this check too — the paper handles them as
/// a separate "obfuscated" label, which [`looks_obfuscated`] detects.
pub fn is_conventional_package(pkg: &str) -> bool {
    let segments: Vec<&str> = pkg.split('.').collect();
    if segments.len() < 2 {
        return false;
    }
    segments.iter().all(|s| {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Heuristic for ProGuard/R8-style obfuscated packages: every segment is at
/// most two characters (`a.b`, `com.a.b` is *not* obfuscated because `com`
/// is 3 chars — matching how analysts eyeball these).
pub fn looks_obfuscated(pkg: &str) -> bool {
    let segments: Vec<&str> = pkg.split('.').collect();
    !segments.is_empty() && segments.iter().all(|s| !s.is_empty() && s.len() <= 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_extraction() {
        assert_eq!(
            package_of("com/applovin/adview/AdRenderer").as_deref(),
            Some("com.applovin.adview")
        );
        assert_eq!(package_of("TopLevel"), None);
        assert_eq!(package_of("a/b").as_deref(), Some("a"));
    }

    #[test]
    fn package_extraction_into_scratch() {
        let mut scratch = String::from("stale");
        assert!(package_of_into(
            "com/applovin/adview/AdRenderer",
            &mut scratch
        ));
        assert_eq!(scratch, "com.applovin.adview");
        assert!(!package_of_into("TopLevel", &mut scratch));
        assert!(scratch.is_empty());
        assert!(package_of_into("a/b", &mut scratch));
        assert_eq!(scratch, "a");
    }

    #[test]
    fn simple_names() {
        assert_eq!(simple_name("com/foo/Baz$Inner"), "Baz$Inner");
        assert_eq!(simple_name("TopLevel"), "TopLevel");
    }

    #[test]
    fn source_names() {
        assert_eq!(to_source_name("com/foo/Baz$Inner"), "com.foo.Baz.Inner");
    }

    #[test]
    fn conventional_packages() {
        assert!(is_conventional_package("com.applovin.adview"));
        assert!(is_conventional_package("a.b.c"));
        assert!(!is_conventional_package("single"));
        assert!(!is_conventional_package("Com.Upper"));
        assert!(!is_conventional_package("com..empty"));
        assert!(!is_conventional_package("com.1digitfirst"));
    }

    #[test]
    fn obfuscation_heuristic() {
        assert!(looks_obfuscated("a.b.c"));
        assert!(looks_obfuscated("ab.c"));
        assert!(!looks_obfuscated("com.a.b"));
        assert!(!looks_obfuscated("com.applovin"));
    }

    #[test]
    fn method_sets_match_paper() {
        assert_eq!(WEBVIEW_CONTENT_METHODS.len(), 7);
        for m in WEBVIEW_LOAD_METHODS {
            assert!(WEBVIEW_CONTENT_METHODS.contains(&m));
        }
    }
}
