//! Low-level wire primitives shared by the SAPK and SDEX codecs.
//!
//! Everything here operates on [`bytes::Buf`]/[`bytes::BufMut`] so the same
//! helpers serve both the in-memory writers and the parsers. Integers use
//! LEB128 unsigned varints (as DEX itself does for most counts); strings are
//! varint-length-prefixed UTF-8; integrity uses Adler-32 (the checksum real
//! DEX headers carry).

use crate::error::ApkError;
use bytes::{Buf, BufMut};

/// Maximum number of bytes a canonical u64 LEB128 varint may occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Append `value` to `buf` as an unsigned LEB128 varint.
pub fn put_uvarint<B: BufMut>(buf: &mut B, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint from `buf`.
///
/// Rejects varints longer than [`MAX_VARINT_LEN`] bytes and truncated input.
/// The single-byte case — nearly every count, index, and register in an
/// SDEX blob — is split out ahead of the loop so decode-side callers pay
/// one branch for it.
#[inline]
pub fn get_uvarint<B: Buf>(buf: &mut B) -> Result<u64, ApkError> {
    if !buf.has_remaining() {
        return Err(ApkError::Truncated { context: "varint" });
    }
    let byte = buf.get_u8();
    if byte & 0x80 == 0 {
        return Ok(byte as u64);
    }
    let mut value = (byte & 0x7f) as u64;
    let mut shift = 7u32;
    for i in 1..MAX_VARINT_LEN {
        if !buf.has_remaining() {
            return Err(ApkError::Truncated { context: "varint" });
        }
        let byte = buf.get_u8();
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute one bit.
        if i == MAX_VARINT_LEN - 1 && payload > 1 {
            return Err(ApkError::BadVarint);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(ApkError::BadVarint)
}

/// Append a varint-length-prefixed UTF-8 string.
pub fn put_string<B: BufMut>(buf: &mut B, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Read a varint-length-prefixed UTF-8 string.
pub fn get_string<B: Buf>(buf: &mut B) -> Result<String, ApkError> {
    let len = get_uvarint(buf)? as usize;
    if buf.remaining() < len {
        return Err(ApkError::Truncated { context: "string" });
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| ApkError::BadUtf8)
}

/// Validate a varint-length-prefixed UTF-8 string *in place* and return its
/// `(offset, len)` location within `full`, advancing `buf` past it.
///
/// Zero-copy analog of [`get_string`]: the caller keeps the backing buffer
/// alive and slices the string back out on demand, so decoding a pool of N
/// strings performs zero per-entry allocations. `buf` must be a suffix of
/// `full` (the decoder's cursor into the same blob); offsets are relative to
/// the start of `full`. Error behaviour is identical to [`get_string`].
#[inline]
pub fn get_string_span(full: &[u8], buf: &mut &[u8]) -> Result<(u32, u32), ApkError> {
    let len = get_uvarint(buf)? as usize;
    if buf.len() < len {
        return Err(ApkError::Truncated { context: "string" });
    }
    std::str::from_utf8(&buf[..len]).map_err(|_| ApkError::BadUtf8)?;
    let off = full.len() - buf.len();
    let span = span_u32(off, len)?;
    *buf = &buf[len..];
    Ok(span)
}

/// [`get_string_span`] minus the UTF-8 scan: record the span of a
/// varint-length-prefixed string without validating its bytes.
///
/// Length and bounds checks are identical to [`get_string_span`] — the span
/// always lies inside `full` — so slicing through it can never read out of
/// bounds. What the caller loses is the UTF-8 guarantee: a [`crate::Dex`]
/// built from unchecked spans may only hand out `&str` views for input that
/// was validated earlier (the trusted-preset contract in
/// [`crate::VerifyPreset`]).
#[inline]
pub fn get_string_span_unchecked(full: &[u8], buf: &mut &[u8]) -> Result<(u32, u32), ApkError> {
    let len = get_uvarint(buf)? as usize;
    if buf.len() < len {
        return Err(ApkError::Truncated { context: "string" });
    }
    let off = full.len() - buf.len();
    let span = span_u32(off, len)?;
    *buf = &buf[len..];
    Ok(span)
}

/// Narrow a `(offset, len)` span to the u32 wire representation, refusing
/// values that would silently wrap.
///
/// `get_string_span` offsets are relative to the backing buffer; once that
/// buffer is an mmap-backed multi-gigabyte shard instead of a standalone
/// blob, `off as u32` would truncate and alias an unrelated string. The
/// guard turns that corruption into [`ApkError::SpanOverflow`].
pub fn span_u32(off: usize, len: usize) -> Result<(u32, u32), ApkError> {
    match (u32::try_from(off), u32::try_from(len)) {
        (Ok(o), Ok(l)) => Ok((o, l)),
        _ => Err(ApkError::SpanOverflow {
            offset: off as u64,
            len: len as u64,
        }),
    }
}

/// Read exactly `n` bytes into a fresh vector.
pub fn get_bytes<B: Buf>(
    buf: &mut B,
    n: usize,
    context: &'static str,
) -> Result<Vec<u8>, ApkError> {
    if buf.remaining() < n {
        return Err(ApkError::Truncated { context });
    }
    let mut raw = vec![0u8; n];
    buf.copy_to_slice(&mut raw);
    Ok(raw)
}

/// Compute the Adler-32 checksum of `data` (RFC 1950), the same checksum
/// carried by real DEX file headers.
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    // Largest n such that 255*n*(n+1)/2 + (n+1)*(MOD-1) < 2^32, per zlib.
    const NMAX: usize = 5552;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(NMAX) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(get_uvarint(&mut slice).unwrap(), v);
            assert!(slice.is_empty(), "varint for {v} left trailing bytes");
        }
    }

    #[test]
    fn varint_truncated_is_error() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(get_uvarint(&mut slice).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn varint_overlong_rejected() {
        // Eleven continuation bytes can never be canonical.
        let raw = [0xff; 11];
        let mut slice = &raw[..];
        assert_eq!(get_uvarint(&mut slice), Err(ApkError::BadVarint));
    }

    #[test]
    fn varint_tenth_byte_overflow_rejected() {
        // 9 continuation bytes then a final byte with more than 1 bit set
        // would overflow u64.
        let mut raw = vec![0x80u8; 9];
        raw.push(0x02);
        let mut slice = &raw[..];
        assert_eq!(get_uvarint(&mut slice), Err(ApkError::BadVarint));
    }

    #[test]
    fn string_roundtrip() {
        for s in ["", "a", "android/webkit/WebView", "日本語テキスト"] {
            let mut buf = Vec::new();
            put_string(&mut buf, s);
            let mut slice = &buf[..];
            assert_eq!(get_string(&mut slice).unwrap(), s);
        }
    }

    #[test]
    fn string_invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut slice = &buf[..];
        assert_eq!(get_string(&mut slice), Err(ApkError::BadUtf8));
    }

    #[test]
    fn string_span_matches_get_string() {
        let samples = ["", "a", "android/webkit/WebView", "日本語テキスト"];
        let mut full = Vec::new();
        put_uvarint(&mut full, 99); // junk the cursor has already consumed
        let mark = full.len();
        for s in samples {
            put_string(&mut full, s);
        }
        let mut buf = &full[mark..];
        for s in samples {
            let (off, len) = get_string_span(&full, &mut buf).unwrap();
            assert_eq!(&full[off as usize..(off + len) as usize], s.as_bytes());
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn string_span_invalid_utf8_rejected_without_advancing_past_it() {
        let mut full = Vec::new();
        put_uvarint(&mut full, 2);
        full.extend_from_slice(&[0xff, 0xfe]);
        let mut buf = &full[..];
        assert_eq!(get_string_span(&full, &mut buf), Err(ApkError::BadUtf8));
    }

    #[test]
    fn span_u32_boundary() {
        let max = u32::MAX as usize;
        // Exactly representable: the u32::MAX corner itself.
        assert_eq!(span_u32(max, max).unwrap(), (u32::MAX, u32::MAX));
        assert_eq!(span_u32(0, 0).unwrap(), (0, 0));
        // One past the boundary on either field must refuse, not wrap.
        assert_eq!(
            span_u32(max + 1, 7),
            Err(ApkError::SpanOverflow {
                offset: max as u64 + 1,
                len: 7
            })
        );
        assert_eq!(
            span_u32(7, max + 1),
            Err(ApkError::SpanOverflow {
                offset: 7,
                len: max as u64 + 1
            })
        );
        // The old `as u32` behavior would have produced offset 0 here —
        // aliasing the start of the pool. Make sure the kind is distinct
        // and stable for the failure taxonomy.
        assert_eq!(span_u32(max + 1, 0).unwrap_err().kind(), "span-overflow");
    }

    #[test]
    fn adler32_known_vectors() {
        // Reference values from zlib.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_large_input_no_overflow() {
        let data = vec![0xffu8; 1 << 20];
        // Must not panic; spot-check stability.
        let c1 = adler32(&data);
        let c2 = adler32(&data);
        assert_eq!(c1, c2);
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            prop_assert!(buf.len() <= MAX_VARINT_LEN);
            let mut slice = &buf[..];
            prop_assert_eq!(get_uvarint(&mut slice).unwrap(), v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".*") {
            let mut buf = Vec::new();
            put_string(&mut buf, &s);
            let mut slice = &buf[..];
            prop_assert_eq!(get_string(&mut slice).unwrap(), s);
        }

        #[test]
        fn prop_string_span_equivalent_to_owned(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut owned_cur = &raw[..];
            let mut span_cur = &raw[..];
            match (get_string(&mut owned_cur), get_string_span(&raw, &mut span_cur)) {
                (Ok(s), Ok((off, len))) => {
                    prop_assert_eq!(s.as_bytes(), &raw[off as usize..off as usize + len as usize]);
                    prop_assert_eq!(owned_cur.len(), span_cur.len());
                }
                (Err(e1), Err(e2)) => prop_assert_eq!(e1.kind(), e2.kind()),
                (o, s) => prop_assert!(false, "owned/span decoders diverged: {o:?} vs {s:?}"),
            }
        }

        #[test]
        fn prop_varint_decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..16)) {
            let mut slice = &raw[..];
            let _ = get_uvarint(&mut slice);
        }

        #[test]
        fn prop_adler32_differs_on_flip(data in proptest::collection::vec(any::<u8>(), 1..256), idx in any::<prop::sample::Index>()) {
            let mut flipped = data.clone();
            let i = idx.index(flipped.len());
            flipped[i] ^= 0x01;
            prop_assert_ne!(adler32(&data), adler32(&flipped));
        }
    }
}
