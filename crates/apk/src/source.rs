//! Container byte sources: where raw SAPK/SDEX bytes live before decode.
//!
//! The zero-copy decoders ([`Dex::decode_bytes`](crate::Dex::decode_bytes),
//! [`Sapk::decode_bytes`](crate::Sapk::decode_bytes)) only need a [`Bytes`]
//! handle; this module abstracts over *how that handle is backed* so the
//! corpus pipeline can stream multi-gigabyte shard files straight out of
//! the page cache instead of copying every container into a per-app
//! `Vec<u8>`:
//!
//! * [`ContainerSource::in_memory`] — bytes already on the heap (the
//!   generator path, and the buffered fallback);
//! * [`ContainerSource::open_read`] — read a whole file into one shared
//!   heap buffer (portable fallback);
//! * [`ContainerSource::open_mmap`] — `mmap(2)` the file read-only and
//!   hand out [`Bytes`] views that alias the mapping. Slices taken from
//!   the source (per-entry container windows, dex sections inside them)
//!   all share one refcounted region; the kernel pages data in on demand
//!   and can evict it under pressure, so resident memory is bounded by
//!   the working set, not the corpus size.
//!
//! This is the same split dexrs draws between `InMemoryDexContainer` and
//! `FileDexContainer`. On non-Unix targets [`ContainerSource::open_mmap`]
//! silently degrades to the buffered read — callers can check
//! [`ContainerSource::is_mapped`] when the distinction matters (the
//! pipeline's `bytes_mapped` counters do).

use crate::sdex::VerifyPreset;
use bytes::Bytes;
use std::fs::File;
use std::io::{self, Read as _};
use std::path::Path;

/// A read-only `mmap(2)` of an entire file, unmapped on drop.
///
/// The mapping is private and read-only; the backing pages live in the
/// page cache, so two regions over the same file share physical memory.
#[cfg(unix)]
pub struct MmapRegion {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    // std already links libc on every Unix target, so binding the two
    // calls directly keeps the workspace dependency-free.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

#[cfg(unix)]
impl MmapRegion {
    /// Map `file` (its full current length) read-only.
    ///
    /// Zero-length files cannot be mapped on most kernels; they come back
    /// as an empty region with no mapping, which behaves identically.
    pub fn map(file: &File) -> io::Result<MmapRegion> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(MmapRegion {
                ptr: std::ptr::NonNull::dangling(),
                len: 0,
            });
        }
        // SAFETY: fd is valid for the duration of the call; we request a
        // fresh private read-only mapping and check for MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapRegion {
            ptr: std::ptr::NonNull::new(ptr as *mut u8)
                .expect("mmap returned null without MAP_FAILED"),
            len,
        })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(unix)]
impl AsRef<[u8]> for MmapRegion {
    fn as_ref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: the mapping is valid for `len` bytes until munmap in
        // Drop, and read-only, so no aliasing mutation can occur.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: ptr/len came from a successful mmap of this length.
            unsafe {
                sys::munmap(self.ptr.as_ptr().cast(), self.len);
            }
        }
    }
}

// SAFETY: the mapping is immutable after construction; concurrent reads
// from multiple threads are fine, and munmap happens exactly once in Drop.
#[cfg(unix)]
unsafe impl Send for MmapRegion {}
#[cfg(unix)]
unsafe impl Sync for MmapRegion {}

/// A refcounted, possibly memory-mapped container byte source.
///
/// Cloning is cheap (refcount bump); every [`Bytes`] view handed out
/// shares the backing storage, so the zero-copy decode path reads shard
/// bytes straight from the page cache.
#[derive(Debug, Clone)]
pub struct ContainerSource {
    bytes: Bytes,
    mapped: bool,
    /// How much decode-time verification entries read from this source
    /// deserve. Defaults to [`VerifyPreset::All`]; the shard layer
    /// upgrades trust only after its own container checksum verified.
    preset: VerifyPreset,
}

impl ContainerSource {
    /// Wrap bytes already in memory.
    pub fn in_memory(bytes: impl Into<Bytes>) -> ContainerSource {
        ContainerSource {
            bytes: bytes.into(),
            mapped: false,
            preset: VerifyPreset::All,
        }
    }

    /// Tag this source with a decode preset. The source itself never
    /// decodes anything — the tag rides along so readers slicing entries
    /// out of it ([`ContainerSource::slice`]) know how much re-validation
    /// those bytes still need.
    pub fn with_preset(mut self, preset: VerifyPreset) -> ContainerSource {
        self.preset = preset;
        self
    }

    /// The decode preset entries from this source should be parsed under.
    pub fn verify_preset(&self) -> VerifyPreset {
        self.preset
    }

    /// Read the whole file into one shared heap buffer (portable path).
    pub fn open_read(path: &Path) -> io::Result<ContainerSource> {
        let mut file = File::open(path)?;
        let mut buf = Vec::new();
        if let Ok(meta) = file.metadata() {
            buf.reserve(meta.len() as usize);
        }
        file.read_to_end(&mut buf)?;
        Ok(ContainerSource::in_memory(buf))
    }

    /// Memory-map the file read-only. On non-Unix targets this degrades
    /// to [`ContainerSource::open_read`].
    #[cfg(unix)]
    pub fn open_mmap(path: &Path) -> io::Result<ContainerSource> {
        let file = File::open(path)?;
        let region = MmapRegion::map(&file)?;
        Ok(ContainerSource {
            bytes: Bytes::from_owner(region),
            mapped: true,
            preset: VerifyPreset::All,
        })
    }

    /// Memory-map the file read-only. On non-Unix targets this degrades
    /// to [`ContainerSource::open_read`].
    #[cfg(not(unix))]
    pub fn open_mmap(path: &Path) -> io::Result<ContainerSource> {
        ContainerSource::open_read(path)
    }

    /// The full source as a shared view.
    pub fn bytes(&self) -> Bytes {
        self.bytes.clone()
    }

    /// A sub-view sharing the backing storage.
    ///
    /// # Panics
    /// Panics if the range falls outside the source, like `Bytes::slice`.
    pub fn slice(&self, offset: usize, len: usize) -> Bytes {
        self.bytes.slice(offset..offset + len)
    }

    /// Source length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether the backing storage is a live file mapping (false for heap
    /// buffers and the non-Unix fallback).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }
}

#[cfg(unix)]
impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_file(tag: &str, content: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("wla-source-{tag}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        path
    }

    #[test]
    fn mmap_and_read_agree() {
        let content: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("agree", &content);
        let mapped = ContainerSource::open_mmap(&path).unwrap();
        let read = ContainerSource::open_read(&path).unwrap();
        assert_eq!(&mapped.bytes()[..], &content[..]);
        assert_eq!(&read.bytes()[..], &content[..]);
        assert_eq!(mapped.len(), read.len());
        assert!(!read.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn slices_share_storage_and_outlive_the_source() {
        let content = b"0123456789abcdef".to_vec();
        let path = temp_file("slice", &content);
        let src = ContainerSource::open_mmap(&path).unwrap();
        let mid = src.slice(4, 8);
        let base = src.bytes().as_ref().as_ptr() as usize;
        if src.is_mapped() {
            // The slice aliases the mapping — zero bytes copied.
            assert_eq!(mid.as_ref().as_ptr() as usize, base + 4);
        }
        drop(src);
        // The refcounted region stays mapped while any view lives.
        assert_eq!(&mid[..], b"456789ab");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_as_empty() {
        let path = temp_file("empty", b"");
        let src = ContainerSource::open_mmap(&path).unwrap();
        assert!(src.is_empty());
        assert_eq!(src.bytes().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("wla-source-definitely-missing");
        assert!(ContainerSource::open_mmap(&path).is_err());
        assert!(ContainerSource::open_read(&path).is_err());
    }
}
