//! # wla-apk — synthetic Android package substrate
//!
//! The paper analyzes ~146.8K real APKs fetched from AndroZoo. An APK is a
//! ZIP archive whose interesting members are a binary `AndroidManifest.xml`
//! and one or more DEX bytecode files. Reproducing the study requires a
//! package format that the analysis pipeline must *parse from raw bytes*,
//! with all the failure modes that entails (the paper reports 242 broken
//! APKs it could not analyze).
//!
//! This crate defines two binary formats and implements both the writer and
//! the parser for each:
//!
//! * **SDEX** ([`sdex`]) — a compact DEX-analog bytecode container: a
//!   deduplicated string pool, a type (class) table with superclass links,
//!   a method table, and per-method code consisting of a small instruction
//!   set (`invoke-*`, `const-string`, `new-instance`, branches, returns).
//!   Everything the call-graph builder and decompiler need is recoverable
//!   from the bytes alone.
//! * **SAPK** ([`container`]) — an APK-analog outer container holding a
//!   serialized manifest section, an SDEX section, and an opaque resource
//!   section, protected by an Adler-32 checksum.
//!
//! Integrity is genuine: the [`corrupt`] module damages containers the way
//! broken AndroZoo APKs are damaged (truncation, bit flips, bad magic), and
//! the parsers are required to reject every such container with a structured
//! error instead of panicking — this is exercised heavily by property tests.
//!
//! ```
//! use wla_apk::{ClassFlags, Dex, DexBuilder, Instruction, InvokeKind, MethodDef, Reg};
//!
//! let mut b = DexBuilder::new();
//! let load_url = b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
//! let url = b.intern_string("https://example.com/");
//! let on_create = b.intern_method("com/demo/Main", "onCreate", "()V");
//! b.define_class(
//!     "com/demo/Main",
//!     Some("android/app/Activity"),
//!     ClassFlags { public: true, ..Default::default() },
//!     vec![MethodDef::new(
//!         on_create,
//!         true,
//!         false,
//!         vec![
//!             Instruction::ConstString { dst: Reg(0), string: url },
//!             Instruction::Invoke { kind: InvokeKind::Virtual, method: load_url, args: vec![Reg(0)] },
//!             Instruction::ReturnVoid,
//!         ],
//!     )],
//! ).unwrap();
//! let dex = b.build();
//!
//! // Round-trip through the wire format.
//! let bytes = dex.encode();
//! let back = Dex::decode(&bytes).unwrap();
//! assert_eq!(back.classes().len(), 1);
//! assert!(wla_apk::disasm::disassemble(&back).contains("invoke-virtual"));
//! ```

pub mod container;
pub mod corrupt;
pub mod disasm;
pub mod error;
pub mod names;
pub mod sdex;
pub mod source;
pub mod wire;

pub use container::{Sapk, SapkSection, SectionTag};
pub use error::ApkError;
pub use sdex::{
    ClassDef, ClassFlags, Dex, DexBuilder, Instruction, InvokeKind, MethodDef, MethodId, MethodRef,
    Reg, TypeId, VerifyPreset,
};
pub use source::ContainerSource;
#[cfg(unix)]
pub use source::MmapRegion;
