//! SAPK — the APK-analog outer container.
//!
//! A real APK is a ZIP; what the pipeline needs from it is (1) the binary
//! manifest, (2) the DEX blob(s), (3) opaque resources, and (4) a way to
//! fail loudly when the archive is damaged. SAPK provides exactly that: a
//! sectioned container with a fixed header, a section directory, and an
//! Adler-32 over the payload.
//!
//! ```text
//! +--------+---------+----------+---------+----------------------+---------+
//! | "SAPK" | version | checksum | n_sects | dir: (tag,off,len)*n | payload |
//! | 4 B    | u16 LE  | u32 LE   | u8      | 9 B each             | ...     |
//! +--------+---------+----------+---------+----------------------+---------+
//! ```
//!
//! Offsets in the directory are relative to the start of the payload area.

use crate::error::ApkError;
use crate::sdex::VerifyPreset;
use crate::wire::adler32;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes at the start of every SAPK container.
pub const SAPK_MAGIC: [u8; 4] = *b"SAPK";
/// Current SAPK format version.
pub const SAPK_VERSION: u16 = 1;

/// Kinds of section a SAPK container may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionTag {
    /// Serialized `wla-manifest` blob.
    Manifest,
    /// SDEX bytecode blob.
    Dex,
    /// Opaque resources (layouts, assets); the pipeline ignores the content
    /// but real corpora have them, so size accounting stays realistic.
    Resources,
}

impl SectionTag {
    fn to_byte(self) -> u8 {
        match self {
            SectionTag::Manifest => 1,
            SectionTag::Dex => 2,
            SectionTag::Resources => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ApkError> {
        Ok(match b {
            1 => SectionTag::Manifest,
            2 => SectionTag::Dex,
            3 => SectionTag::Resources,
            other => return Err(ApkError::BadSectionTag(other)),
        })
    }
}

/// One decoded section: tag plus owned payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SapkSection {
    /// Section kind.
    pub tag: SectionTag,
    /// Raw section bytes.
    pub data: Bytes,
}

/// A parsed SAPK container.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sapk {
    sections: Vec<SapkSection>,
}

impl Sapk {
    /// Empty container (builder start state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section. Sections keep insertion order; duplicate tags are
    /// allowed at this layer (multi-dex APKs exist), and accessors return
    /// the first match.
    pub fn push(&mut self, tag: SectionTag, data: impl Into<Bytes>) -> &mut Self {
        self.sections.push(SapkSection {
            tag,
            data: data.into(),
        });
        self
    }

    /// All sections in order.
    pub fn sections(&self) -> &[SapkSection] {
        &self.sections
    }

    /// First section with `tag`, if any.
    pub fn section(&self, tag: SectionTag) -> Option<&Bytes> {
        self.sections.iter().find(|s| s.tag == tag).map(|s| &s.data)
    }

    /// The manifest section, required for analysis.
    pub fn manifest_bytes(&self) -> Result<&Bytes, ApkError> {
        self.section(SectionTag::Manifest)
            .ok_or(ApkError::MissingSection("manifest"))
    }

    /// The dex section, required for analysis.
    pub fn dex_bytes(&self) -> Result<&Bytes, ApkError> {
        self.section(SectionTag::Dex)
            .ok_or(ApkError::MissingSection("dex"))
    }

    /// Serialize to the SAPK wire format.
    pub fn encode(&self) -> Bytes {
        assert!(
            self.sections.len() <= u8::MAX as usize,
            "SAPK supports at most 255 sections"
        );
        let mut payload = BytesMut::new();
        let mut dir = Vec::with_capacity(self.sections.len());
        for s in &self.sections {
            let off = payload.len() as u32;
            payload.put_slice(&s.data);
            dir.push((s.tag, off, s.data.len() as u32));
        }

        // Checksum covers the directory and the payload so a damaged
        // directory is also caught.
        let mut covered = BytesMut::new();
        covered.put_u8(self.sections.len() as u8);
        for &(tag, off, len) in &dir {
            covered.put_u8(tag.to_byte());
            covered.put_u32_le(off);
            covered.put_u32_le(len);
        }
        covered.put_slice(&payload);

        let mut out = BytesMut::with_capacity(covered.len() + 10);
        out.put_slice(&SAPK_MAGIC);
        out.put_u16_le(SAPK_VERSION);
        out.put_u32_le(adler32(&covered));
        out.put_slice(&covered);
        out.freeze()
    }

    /// Parse and validate a SAPK container from a borrowed slice.
    ///
    /// Sections are copied into fresh shared storage. Callers that already
    /// hold the container as [`Bytes`] — a shard window, an mmap view —
    /// should use [`Sapk::decode_bytes`], which slices sections out of the
    /// caller's buffer without copying.
    pub fn decode(raw: &[u8]) -> Result<Sapk, ApkError> {
        Sapk::decode_with_payload(raw, None, VerifyPreset::All)
    }

    /// Zero-copy [`Sapk::decode`]: sections are sub-views of `raw`, so the
    /// payload bytes are never copied. Validation is identical to
    /// [`Sapk::decode`] — the two are equivalence-pinned by proptest.
    pub fn decode_bytes(raw: Bytes) -> Result<Sapk, ApkError> {
        Sapk::decode_with_payload(&raw, Some(&raw), VerifyPreset::All)
    }

    /// Zero-copy decode under an explicit [`VerifyPreset`].
    ///
    /// Only [`VerifyPreset::None`] changes behaviour here — it skips the
    /// Adler-32 compare over the directory + payload. Section-directory
    /// bounds checks always run: section views are sliced out of the
    /// buffer, so a bad directory must fail structurally rather than
    /// panic, whatever the trust level.
    pub fn decode_bytes_with(raw: Bytes, preset: VerifyPreset) -> Result<Sapk, ApkError> {
        Sapk::decode_with_payload(&raw, Some(&raw), preset)
    }

    /// Shared decode body: parse `raw`, building sections either by
    /// copying out of the cursor (`shared == None`) or by slicing the
    /// shared buffer `raw` is a view of.
    fn decode_with_payload(
        raw: &[u8],
        shared: Option<&Bytes>,
        preset: VerifyPreset,
    ) -> Result<Sapk, ApkError> {
        let mut buf = raw;
        if buf.remaining() < 4 {
            return Err(ApkError::Truncated { context: "magic" });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != SAPK_MAGIC {
            return Err(ApkError::BadMagic {
                expected: "SAPK",
                found: magic,
            });
        }
        if buf.remaining() < 6 {
            return Err(ApkError::Truncated { context: "header" });
        }
        let version = buf.get_u16_le();
        if version != SAPK_VERSION {
            return Err(ApkError::UnsupportedVersion(version));
        }
        let stored = buf.get_u32_le();
        if preset.checks_checksum() {
            let computed = adler32(buf);
            if stored != computed {
                return Err(ApkError::ChecksumMismatch { stored, computed });
            }
        }

        if !buf.has_remaining() {
            return Err(ApkError::Truncated {
                context: "section count",
            });
        }
        let n = buf.get_u8() as usize;
        if buf.remaining() < n * 9 {
            return Err(ApkError::Truncated {
                context: "section directory",
            });
        }
        let mut dir = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = SectionTag::from_byte(buf.get_u8())?;
            let off = buf.get_u32_le();
            let len = buf.get_u32_le();
            dir.push((tag, off, len));
        }
        let payload = match shared {
            // `buf` is a suffix of `raw`, which is a view of the shared
            // buffer starting at the same address — the payload is the
            // trailing `buf.len()` bytes of that view.
            Some(bytes) => bytes.slice(bytes.len() - buf.len()..),
            None => Bytes::copy_from_slice(buf),
        };
        let total = payload.len() as u32;
        let mut sections = Vec::with_capacity(n);
        for (tag, off, len) in dir {
            let end = off.checked_add(len).ok_or(ApkError::SectionOutOfBounds {
                offset: off,
                len,
                total,
            })?;
            if end > total {
                return Err(ApkError::SectionOutOfBounds {
                    offset: off,
                    len,
                    total,
                });
            }
            sections.push(SapkSection {
                tag,
                data: payload.slice(off as usize..end as usize),
            });
        }
        Ok(Sapk { sections })
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        10 + 1 + self.sections.len() * 9 + self.sections.iter().map(|s| s.data.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sapk {
        let mut apk = Sapk::new();
        apk.push(SectionTag::Manifest, &b"manifest-bytes"[..]);
        apk.push(SectionTag::Dex, &b"dex-bytes-here"[..]);
        apk.push(SectionTag::Resources, vec![0u8; 64]);
        apk
    }

    #[test]
    fn roundtrip() {
        let apk = sample();
        let bytes = apk.encode();
        assert_eq!(bytes.len(), apk.encoded_len());
        let back = Sapk::decode(&bytes).unwrap();
        assert_eq!(apk, back);
    }

    #[test]
    fn accessors() {
        let apk = sample();
        assert_eq!(&apk.manifest_bytes().unwrap()[..], b"manifest-bytes");
        assert_eq!(&apk.dex_bytes().unwrap()[..], b"dex-bytes-here");
    }

    #[test]
    fn missing_sections_reported() {
        let apk = Sapk::new();
        assert_eq!(
            apk.manifest_bytes().unwrap_err(),
            ApkError::MissingSection("manifest")
        );
        assert_eq!(
            apk.dex_bytes().unwrap_err(),
            ApkError::MissingSection("dex")
        );
    }

    #[test]
    fn empty_container_roundtrips() {
        let apk = Sapk::new();
        let back = Sapk::decode(&apk.encode()).unwrap();
        assert!(back.sections().is_empty());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                Sapk::decode(&bytes[..cut]).is_err(),
                "decode accepted a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn bitflip_rejected_everywhere() {
        let bytes = sample().encode().to_vec();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Sapk::decode(&bad).is_err(),
                "decode accepted a bit flip at byte {i}"
            );
        }
    }

    #[test]
    fn out_of_bounds_section_rejected() {
        // Forge a directory pointing past the payload, with a valid checksum.
        let mut covered = Vec::new();
        covered.push(1u8); // one section
        covered.push(2u8); // Dex
        covered.extend_from_slice(&0u32.to_le_bytes()); // off
        covered.extend_from_slice(&100u32.to_le_bytes()); // len > payload
        covered.extend_from_slice(b"tiny");
        let mut raw = Vec::new();
        raw.extend_from_slice(&SAPK_MAGIC);
        raw.extend_from_slice(&SAPK_VERSION.to_le_bytes());
        raw.extend_from_slice(&adler32(&covered).to_le_bytes());
        raw.extend_from_slice(&covered);
        assert!(matches!(
            Sapk::decode(&raw),
            Err(ApkError::SectionOutOfBounds { .. })
        ));
    }

    #[test]
    fn decode_bytes_matches_decode_and_is_zero_copy() {
        let apk = sample();
        let blob = apk.encode();
        let owned = Sapk::decode(&blob).unwrap();
        let shared = Sapk::decode_bytes(blob.clone()).unwrap();
        assert_eq!(owned, shared);
        // Zero-copy: each decoded section aliases the original buffer.
        let base = blob.as_ref().as_ptr() as usize;
        let end = base + blob.len();
        for s in shared.sections() {
            if s.data.is_empty() {
                continue;
            }
            let p = s.data.as_ref().as_ptr() as usize;
            assert!(p >= base && p + s.data.len() <= end, "section copied");
        }
    }

    #[test]
    fn decode_bytes_rejects_what_decode_rejects() {
        let blob = sample().encode().to_vec();
        for cut in 0..blob.len() {
            let a = Sapk::decode(&blob[..cut]).unwrap_err();
            let b = Sapk::decode_bytes(Bytes::copy_from_slice(&blob[..cut])).unwrap_err();
            assert_eq!(a, b, "divergence at prefix {cut}");
        }
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x01;
            let a = Sapk::decode(&bad).unwrap_err();
            let b = Sapk::decode_bytes(Bytes::from(bad)).unwrap_err();
            assert_eq!(a, b, "divergence at flipped byte {i}");
        }
    }

    #[test]
    fn multidex_first_wins() {
        let mut apk = Sapk::new();
        apk.push(SectionTag::Dex, &b"first"[..]);
        apk.push(SectionTag::Dex, &b"second"[..]);
        let back = Sapk::decode(&apk.encode()).unwrap();
        assert_eq!(&back.dex_bytes().unwrap()[..], b"first");
        assert_eq!(back.sections().len(), 2);
    }
}
